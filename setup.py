"""Setuptools shim.

The ``wheel`` package is not available in the offline evaluation
environment, so PEP 517 editable installs (which build an editable wheel)
fail with ``invalid command 'bdist_wheel'``.  This ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on older pips) fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
