"""MIL-STD-1553B transactions (transfer formats) and their durations.

The standard defines three information-transfer formats used here:

* **BC → RT** ("receive" command): the BC sends a receive command word and
  the data words; the RT answers with its status word,
* **RT → BC** ("transmit" command): the BC sends a transmit command word;
  the RT answers with its status word followed by the data words,
* **RT → RT**: the BC sends a receive command to the destination RT and a
  transmit command to the source RT; the source RT answers with status +
  data, and the destination RT closes with its own status word.

A *message* of the avionics application maps to one or more transactions: a
transaction carries at most 32 data words, so longer messages are split.  In
the switched-Ethernet comparison the same application messages are carried in
Ethernet frames instead; the mapping lives in
:func:`transactions_for_message`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.errors import ConfigurationError
from repro.flows.messages import Message
from repro.milstd1553.words import (
    INTERMESSAGE_GAP,
    MAX_DATA_WORDS,
    RESPONSE_TIME,
    WORD_TIME,
    data_word_count,
)

__all__ = [
    "TransferFormat",
    "Transaction",
    "transactions_for_message",
    "transfer_duration",
    "message_duration",
]


class TransferFormat(enum.Enum):
    """The three 1553B information-transfer formats modelled."""

    BC_TO_RT = "bc-to-rt"
    RT_TO_BC = "rt-to-bc"
    RT_TO_RT = "rt-to-rt"


@lru_cache(maxsize=None)
def transfer_duration(transfer_format: TransferFormat,
                      data_words: int) -> float:
    """Bus occupation time of one transaction (seconds), gap included.

    The duration covers every word on the bus, the worst-case RT response
    time(s) and the trailing intermessage gap, i.e. the time the bus is
    unavailable to any other transaction.  There are at most
    ``3 x MAX_DATA_WORDS`` distinct (format, word-count) combinations, so
    the cache stays tiny while the schedule builder asks for millions of
    durations.
    """
    if transfer_format is TransferFormat.BC_TO_RT:
        # command + data words, RT response, status
        words = 1 + data_words + 1
        responses = 1
    elif transfer_format is TransferFormat.RT_TO_BC:
        # command, RT response, status + data words
        words = 1 + 1 + data_words
        responses = 1
    else:  # RT_TO_RT
        # two commands, source RT response, status + data, destination RT
        # response, status
        words = 2 + 1 + data_words + 1
        responses = 2
    return (words * WORD_TIME + responses * RESPONSE_TIME
            + INTERMESSAGE_GAP)


@lru_cache(maxsize=None)
def _message_duration_for_words(transfer_format: TransferFormat,
                                total_words: int) -> float:
    """Total bus time of a message of ``total_words`` data words.

    Accumulated left to right over the maximal-then-partial split, exactly
    like summing the durations of :func:`transactions_for_message`.
    """
    total = 0.0
    remaining = total_words
    while remaining > 0:
        words = min(remaining, MAX_DATA_WORDS)
        total += transfer_duration(transfer_format, words)
        remaining -= words
    return total


def message_duration(message: Message,
                     transfer_format: TransferFormat = TransferFormat.RT_TO_RT
                     ) -> float:
    """Total bus time needed to carry one instance of ``message`` (seconds).

    Equals ``sum(t.duration for t in transactions_for_message(message,
    transfer_format))`` without materialising the transactions; the value is
    cached per (format, word count).
    """
    return _message_duration_for_words(transfer_format,
                                       data_word_count(message.size))


@dataclass(frozen=True)
class Transaction:
    """One bus transaction carrying (part of) an application message.

    Attributes
    ----------
    message:
        The application message the transaction belongs to.
    transfer_format:
        BC→RT, RT→BC or RT→RT.
    data_words:
        Number of 16-bit data words carried (1..32).
    part_index / part_count:
        Position of this transaction when the message spans several.
    """

    message: Message
    transfer_format: TransferFormat
    data_words: int
    part_index: int = 0
    part_count: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.data_words <= MAX_DATA_WORDS:
            raise ConfigurationError(
                f"a transaction carries 1..{MAX_DATA_WORDS} data words, "
                f"got {self.data_words}")
        if not 0 <= self.part_index < self.part_count:
            raise ConfigurationError(
                f"invalid fragment indexing {self.part_index}/{self.part_count}")

    @property
    def name(self) -> str:
        """Message name, suffixed with the part index for split messages."""
        if self.part_count == 1:
            return self.message.name
        return f"{self.message.name}#{self.part_index}"

    @cached_property
    def duration(self) -> float:
        """Bus occupation time of the transaction (seconds), gap included.

        See :func:`transfer_duration`; the value only depends on the
        transfer format and the word count, both frozen, so it is computed
        once per transaction.
        """
        return transfer_duration(self.transfer_format, self.data_words)

    @property
    def is_last_part(self) -> bool:
        """True for the final transaction of a split message."""
        return self.part_index == self.part_count - 1


def transactions_for_message(
        message: Message,
        transfer_format: TransferFormat = TransferFormat.RT_TO_RT
        ) -> list[Transaction]:
    """The transactions needed to carry one instance of ``message``.

    Messages of more than 32 data words are split into maximal transactions
    plus a final partial one.  The default transfer format is RT→RT because
    the paper's case study interconnects subsystems (terminal to terminal);
    BC-sourced or BC-bound data can use the other formats.
    """
    total_words = data_word_count(message.size)
    part_count = (total_words + MAX_DATA_WORDS - 1) // MAX_DATA_WORDS
    transactions: list[Transaction] = []
    remaining = total_words
    for index in range(part_count):
        words = min(remaining, MAX_DATA_WORDS)
        transactions.append(Transaction(
            message=message, transfer_format=transfer_format,
            data_words=words, part_index=index, part_count=part_count))
        remaining -= words
    return transactions
