"""MIL-STD-1553B transactions (transfer formats) and their durations.

The standard defines three information-transfer formats used here:

* **BC → RT** ("receive" command): the BC sends a receive command word and
  the data words; the RT answers with its status word,
* **RT → BC** ("transmit" command): the BC sends a transmit command word;
  the RT answers with its status word followed by the data words,
* **RT → RT**: the BC sends a receive command to the destination RT and a
  transmit command to the source RT; the source RT answers with status +
  data, and the destination RT closes with its own status word.

A *message* of the avionics application maps to one or more transactions: a
transaction carries at most 32 data words, so longer messages are split.  In
the switched-Ethernet comparison the same application messages are carried in
Ethernet frames instead; the mapping lives in
:func:`transactions_for_message`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.flows.messages import Message
from repro.milstd1553.words import (
    INTERMESSAGE_GAP,
    MAX_DATA_WORDS,
    RESPONSE_TIME,
    WORD_TIME,
    data_word_count,
)

__all__ = ["TransferFormat", "Transaction", "transactions_for_message"]


class TransferFormat(enum.Enum):
    """The three 1553B information-transfer formats modelled."""

    BC_TO_RT = "bc-to-rt"
    RT_TO_BC = "rt-to-bc"
    RT_TO_RT = "rt-to-rt"


@dataclass(frozen=True)
class Transaction:
    """One bus transaction carrying (part of) an application message.

    Attributes
    ----------
    message:
        The application message the transaction belongs to.
    transfer_format:
        BC→RT, RT→BC or RT→RT.
    data_words:
        Number of 16-bit data words carried (1..32).
    part_index / part_count:
        Position of this transaction when the message spans several.
    """

    message: Message
    transfer_format: TransferFormat
    data_words: int
    part_index: int = 0
    part_count: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.data_words <= MAX_DATA_WORDS:
            raise ConfigurationError(
                f"a transaction carries 1..{MAX_DATA_WORDS} data words, "
                f"got {self.data_words}")
        if not 0 <= self.part_index < self.part_count:
            raise ConfigurationError(
                f"invalid fragment indexing {self.part_index}/{self.part_count}")

    @property
    def name(self) -> str:
        """Message name, suffixed with the part index for split messages."""
        if self.part_count == 1:
            return self.message.name
        return f"{self.message.name}#{self.part_index}"

    @property
    def duration(self) -> float:
        """Bus occupation time of the transaction (seconds), gap included.

        The duration covers every word on the bus, the worst-case RT
        response time(s) and the trailing intermessage gap, i.e. the time
        the bus is unavailable to any other transaction.
        """
        if self.transfer_format is TransferFormat.BC_TO_RT:
            # command + data words, RT response, status
            words = 1 + self.data_words + 1
            responses = 1
        elif self.transfer_format is TransferFormat.RT_TO_BC:
            # command, RT response, status + data words
            words = 1 + 1 + self.data_words
            responses = 1
        else:  # RT_TO_RT
            # two commands, source RT response, status + data, destination RT
            # response, status
            words = 2 + 1 + self.data_words + 1
            responses = 2
        return (words * WORD_TIME + responses * RESPONSE_TIME
                + INTERMESSAGE_GAP)

    @property
    def is_last_part(self) -> bool:
        """True for the final transaction of a split message."""
        return self.part_index == self.part_count - 1


def transactions_for_message(
        message: Message,
        transfer_format: TransferFormat = TransferFormat.RT_TO_RT
        ) -> list[Transaction]:
    """The transactions needed to carry one instance of ``message``.

    Messages of more than 32 data words are split into maximal transactions
    plus a final partial one.  The default transfer format is RT→RT because
    the paper's case study interconnects subsystems (terminal to terminal);
    BC-sourced or BC-bound data can use the other formats.
    """
    total_words = data_word_count(message.size)
    part_count = (total_words + MAX_DATA_WORDS - 1) // MAX_DATA_WORDS
    transactions: list[Transaction] = []
    remaining = total_words
    for index in range(part_count):
        words = min(remaining, MAX_DATA_WORDS)
        transactions.append(Transaction(
            message=message, transfer_format=transfer_format,
            data_words=words, part_index=index, part_count=part_count))
        remaining -= words
    return transactions
