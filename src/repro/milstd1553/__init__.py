"""MIL-STD-1553B data bus: the baseline the paper compares against.

MIL-STD-1553B is a 1 Mbps serial command/response bus with centralized
control: a **bus controller** (BC) polls the **remote terminals** (RT) and
every word on the bus is either commanded by or addressed to the BC.  The
paper's case study uses the classical cyclic executive structure:

* a **major frame** of 160 ms (the largest message period),
* split into eight **minor frames** of 20 ms (the smallest message period);
  at the start of each minor frame an interrupt fires and the BC issues the
  transactions scheduled for that minor frame,
* periodic messages are placed in the minor frames according to their
  period; sporadic messages are handled by polling the RTs once per minor
  frame and transferring any pending data.

This package provides:

* :mod:`~repro.milstd1553.words` — word/transaction timing per the standard
  (20 µs words, RT response time, intermessage gaps),
* :mod:`~repro.milstd1553.transaction` — the three transfer formats
  (BC→RT, RT→BC, RT→RT) and their bus occupation time,
* :mod:`~repro.milstd1553.schedule` — the major/minor frame schedule builder
  and its feasibility checks,
* :mod:`~repro.milstd1553.bus` — a discrete-event simulator of the bus
  (BC, RTs, polling, response-time collection),
* :mod:`~repro.milstd1553.analysis` — closed-form worst-case response-time
  analysis used for the 1553B column of the comparison experiments.
"""

from repro.milstd1553.words import (
    BUS_RATE,
    INTERMESSAGE_GAP,
    RESPONSE_TIME,
    WORD_TIME,
    data_word_count,
)
from repro.milstd1553.transaction import Transaction, TransferFormat
from repro.milstd1553.schedule import MajorFrameSchedule, MinorFrameSlot
from repro.milstd1553.bus import Milstd1553BusSimulator, BusSimulationResults
from repro.milstd1553.analysis import (
    Milstd1553Analysis,
    ResponseTimeBound,
)

__all__ = [
    "BUS_RATE",
    "WORD_TIME",
    "RESPONSE_TIME",
    "INTERMESSAGE_GAP",
    "data_word_count",
    "Transaction",
    "TransferFormat",
    "MajorFrameSchedule",
    "MinorFrameSlot",
    "Milstd1553BusSimulator",
    "BusSimulationResults",
    "Milstd1553Analysis",
    "ResponseTimeBound",
]
