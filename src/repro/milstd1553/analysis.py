"""Closed-form worst-case response-time analysis of the 1553B schedule.

The comparison experiments (DESIGN.md, experiment E4) need a 1553B column
next to the switched-Ethernet bounds.  The cyclic-executive structure makes
the worst case easy to characterise:

* a **periodic** message is produced synchronously with the bus schedule
  (its subsystem samples the data for the minor frame that carries it, the
  standard practice on 1553B cyclic executives), so its worst-case response
  time is the largest offset, within any minor frame that carries it, at
  which its transaction completes (all transactions that precede it in the
  frame, plus its own duration),
* a **sporadic** message sees its worst case when it is released just after
  the poll of its terminal in the current minor frame: it is then served by
  the poll of the *next* minor frame, i.e. after up to one full minor frame,
  plus everything that precedes its terminal's poll in that frame, plus its
  own transfer time — conservatively assuming every other sporadic message
  fires in the same frame and is served before it.

These are upper bounds under the paper's assumptions (at most one sporadic
instance per message per minor frame, feasible schedule); the simulator's
observed response times must stay below them, which the validation tests
check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message
from repro.milstd1553.schedule import POLL_DURATION, MajorFrameSchedule
from repro.milstd1553.transaction import transactions_for_message

__all__ = ["ResponseTimeBound", "Milstd1553Analysis"]


@dataclass(frozen=True)
class ResponseTimeBound:
    """Worst-case response time of one message on the 1553B bus."""

    message: Message
    #: The bound in seconds.
    bound: float
    #: Time spent waiting for the next scheduled occurrence / poll (seconds).
    waiting_time: float
    #: Time from the start of the serving minor frame to the completion of
    #: the message's last transaction (seconds).
    service_offset: float
    #: ``True`` when the bound is guaranteed by the cyclic schedule
    #: (periodic messages and deadline-constrained sporadic messages that
    #: get reserved minor-frame room).  Background sporadic traffic is
    #: served best-effort in the idle time of the frames, so its figure is
    #: indicative only and the simulator may exceed it under load.
    guaranteed: bool = True

    @property
    def name(self) -> str:
        """Message name."""
        return self.message.name

    @property
    def deadline(self) -> float | None:
        """Requested maximal response time, if any."""
        return self.message.deadline

    @property
    def meets_deadline(self) -> bool:
        """True when the bound does not exceed the deadline (or none is set)."""
        if self.message.deadline is None:
            return True
        return self.bound <= self.message.deadline


class Milstd1553Analysis:
    """Worst-case response-time analysis over a major frame schedule."""

    def __init__(self, schedule: MajorFrameSchedule) -> None:
        self.schedule = schedule
        self.message_set: MessageSet = schedule.message_set

    # -- helpers ----------------------------------------------------------------

    def _message_duration(self, message: Message) -> float:
        return sum(t.duration for t in transactions_for_message(
            message, self.schedule.transfer_format))

    def _worst_completion_offset_periodic(self, message: Message) -> float:
        """Worst offset, within a serving minor frame, of the message's completion."""
        worst = 0.0
        for slot in self.schedule.slots:
            offset = 0.0
            found = False
            for transaction in slot.transactions:
                offset += transaction.duration
                if transaction.message.name == message.name \
                        and transaction.is_last_part:
                    found = True
                    break
            if found:
                worst = max(worst, offset)
        if worst == 0.0:
            raise AnalysisError(
                f"periodic message {message.name!r} is not present in the "
                f"schedule")
        return worst

    def _worst_completion_offset_sporadic(self, message: Message) -> float:
        """Worst offset of the sporadic message's completion within a minor frame.

        Conservative accounting: the frame first carries its heaviest
        periodic load, then the polls of the terminals that precede this
        message's terminal (serving all their sporadic messages), then this
        terminal's poll, then every *other* sporadic message of the same
        terminal, and finally this message.
        """
        heaviest_periodic = max(
            (slot.periodic_duration() for slot in self.schedule.slots),
            default=0.0)
        offset = heaviest_periodic
        for station in self.schedule.polled_terminals():
            offset += POLL_DURATION
            station_sporadic = [m for m in self.message_set.sporadic()
                                if m.source == station]
            if station == message.source:
                for other in station_sporadic:
                    if other.name != message.name:
                        offset += self._message_duration(other)
                offset += self._message_duration(message)
                return offset
            offset += sum(self._message_duration(m) for m in station_sporadic)
        raise AnalysisError(
            f"sporadic message {message.name!r} has no polled terminal")

    # -- bounds ----------------------------------------------------------------

    def bound_for(self, message: Message) -> ResponseTimeBound:
        """Worst-case response time of one message."""
        guaranteed = True
        if message.is_periodic:
            # Production is synchronised with the serving minor frame, so no
            # waiting term: the response time is the completion offset.
            waiting = 0.0
            offset = self._worst_completion_offset_periodic(message)
        else:
            waiting = self.schedule.minor_frame
            offset = self._worst_completion_offset_sporadic(message)
            reserved = {m.name for m in self.schedule.reserved_sporadic()}
            guaranteed = message.name in reserved
        return ResponseTimeBound(message=message, bound=waiting + offset,
                                 waiting_time=waiting, service_offset=offset,
                                 guaranteed=guaranteed)

    def all_bounds(self) -> dict[str, ResponseTimeBound]:
        """Bounds of every message of the set, indexed by name."""
        return {message.name: self.bound_for(message)
                for message in self.message_set}

    def violations(self) -> list[ResponseTimeBound]:
        """Messages whose worst-case response time exceeds their deadline."""
        return [bound for bound in self.all_bounds().values()
                if not bound.meets_deadline]

    def worst_bound(self) -> float:
        """Largest response-time bound over the whole message set (seconds)."""
        bounds = self.all_bounds()
        if not bounds:
            raise AnalysisError("the message set is empty")
        return max(bound.bound for bound in bounds.values())
