"""Closed-form worst-case response-time analysis of the 1553B schedule.

The comparison experiments (DESIGN.md, experiment E4) need a 1553B column
next to the switched-Ethernet bounds.  The cyclic-executive structure makes
the worst case easy to characterise:

* a **periodic** message is produced synchronously with the bus schedule
  (its subsystem samples the data for the minor frame that carries it, the
  standard practice on 1553B cyclic executives), so its worst-case response
  time is the largest offset, within any minor frame that carries it, at
  which its transaction completes (all transactions that precede it in the
  frame, plus its own duration),
* a **sporadic** message sees its worst case when it is released just after
  the poll of its terminal in the current minor frame: it is then served by
  the poll of the *next* minor frame, i.e. after up to one full minor frame,
  plus everything that precedes its terminal's poll in that frame, plus its
  own transfer time — conservatively assuming every other sporadic message
  fires in the same frame and is served before it.

These are upper bounds under the paper's assumptions (at most one sporadic
instance per message per minor frame, feasible schedule); the simulator's
observed response times must stay below them, which the validation tests
check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message
from repro.milstd1553.schedule import POLL_DURATION, MajorFrameSchedule
from repro.milstd1553.transaction import message_duration

__all__ = ["ResponseTimeBound", "Milstd1553Analysis"]


@dataclass(frozen=True)
class ResponseTimeBound:
    """Worst-case response time of one message on the 1553B bus."""

    message: Message
    #: The bound in seconds.
    bound: float
    #: Time spent waiting for the next scheduled occurrence / poll (seconds).
    waiting_time: float
    #: Time from the start of the serving minor frame to the completion of
    #: the message's last transaction (seconds).
    service_offset: float
    #: ``True`` when the bound is guaranteed by the cyclic schedule
    #: (periodic messages and deadline-constrained sporadic messages that
    #: get reserved minor-frame room).  Background sporadic traffic is
    #: served best-effort in the idle time of the frames, so its figure is
    #: indicative only and the simulator may exceed it under load.
    guaranteed: bool = True

    @property
    def name(self) -> str:
        """Message name."""
        return self.message.name

    @property
    def deadline(self) -> float | None:
        """Requested maximal response time, if any."""
        return self.message.deadline

    @property
    def meets_deadline(self) -> bool:
        """True when the bound does not exceed the deadline (or none is set)."""
        if self.message.deadline is None:
            return True
        return self.bound <= self.message.deadline


class Milstd1553Analysis:
    """Worst-case response-time analysis over a major frame schedule."""

    def __init__(self, schedule: MajorFrameSchedule) -> None:
        self.schedule = schedule
        self.message_set: MessageSet = schedule.message_set
        #: Worst completion offset of every scheduled periodic message,
        #: built lazily in one pass over the transaction table.
        self._periodic_offsets: dict[str, float] | None = None
        #: Per-station offset of the end of the station's poll in the worst
        #: minor frame, plus the station's sporadic messages in poll order.
        #: Rebuilt when the message set mutates (keyed on its version), like
        #: the per-message reference scan that recomputed it every call.
        self._sporadic_context: tuple[dict[str, float],
                                      dict[str, list[Message]]] | None = None
        self._sporadic_version: int | None = None

    # -- helpers ----------------------------------------------------------------

    def _message_duration(self, message: Message) -> float:
        return message_duration(message, self.schedule.transfer_format)

    def _periodic_completion_offsets(self) -> dict[str, float]:
        """Worst completion offset of every periodic message, per name.

        One pass over the transaction table instead of one per message: for
        each minor frame the running completion offsets are the cumulative
        sum of the transaction durations (``np.cumsum`` accumulates left to
        right, matching the per-transaction scan), and a message's offset in
        the frame is the cumsum entry of the first last-part transaction
        that carries it.
        """
        if self._periodic_offsets is None:
            worst: dict[str, float] = {}
            for slot in self.schedule.slots:
                if not slot.transactions:
                    continue
                offsets = np.cumsum(
                    [t.duration for t in slot.transactions])
                seen: set[str] = set()
                for transaction, offset in zip(slot.transactions, offsets):
                    name = transaction.message.name
                    if transaction.is_last_part and name not in seen:
                        seen.add(name)
                        completed = float(offset)
                        if completed > worst.get(name, 0.0):
                            worst[name] = completed
            self._periodic_offsets = worst
        return self._periodic_offsets

    def _worst_completion_offset_periodic(self, message: Message) -> float:
        """Worst offset, within a serving minor frame, of the message's completion."""
        offset = self._periodic_completion_offsets().get(message.name, 0.0)
        if offset == 0.0:
            raise AnalysisError(
                f"periodic message {message.name!r} is not present in the "
                f"schedule")
        return offset

    def _poll_offsets(self) -> tuple[dict[str, float],
                                     dict[str, list[Message]]]:
        """(end-of-poll offset per station, sporadic messages per station).

        The offset of station ``s`` is the worst periodic load, plus the
        polls of every station up to and including ``s``, plus all sporadic
        messages of the stations polled before ``s`` — the prefix every
        sporadic bound of station ``s`` starts from.
        """
        version = self.message_set.version
        if self._sporadic_context is None \
                or self._sporadic_version != version:
            self._sporadic_version = version
            loads = self.schedule.periodic_loads()
            heaviest_periodic = float(loads.max()) if loads.size else 0.0
            sporadic = self.message_set.sporadic()
            by_station: dict[str, list[Message]] = {
                station: [] for station in self.schedule.polled_terminals()}
            for message in sporadic:
                by_station[message.source].append(message)
            offsets: dict[str, float] = {}
            offset = heaviest_periodic
            for station in self.schedule.polled_terminals():
                offset += POLL_DURATION
                offsets[station] = offset
                offset += sum(self._message_duration(m)
                              for m in by_station[station])
            self._sporadic_context = (offsets, by_station)
        return self._sporadic_context

    def _worst_completion_offset_sporadic(self, message: Message) -> float:
        """Worst offset of the sporadic message's completion within a minor frame.

        Conservative accounting: the frame first carries its heaviest
        periodic load, then the polls of the terminals that precede this
        message's terminal (serving all their sporadic messages), then this
        terminal's poll, then every *other* sporadic message of the same
        terminal, and finally this message.
        """
        offsets, by_station = self._poll_offsets()
        if message.source not in offsets:
            raise AnalysisError(
                f"sporadic message {message.name!r} has no polled terminal")
        offset = offsets[message.source]
        for other in by_station[message.source]:
            if other.name != message.name:
                offset += self._message_duration(other)
        offset += self._message_duration(message)
        return offset

    # -- bounds ----------------------------------------------------------------

    def bound_for(self, message: Message) -> ResponseTimeBound:
        """Worst-case response time of one message."""
        guaranteed = True
        if message.is_periodic:
            # Production is synchronised with the serving minor frame, so no
            # waiting term: the response time is the completion offset.
            waiting = 0.0
            offset = self._worst_completion_offset_periodic(message)
        else:
            waiting = self.schedule.minor_frame
            offset = self._worst_completion_offset_sporadic(message)
            reserved = {m.name for m in self.schedule.reserved_sporadic()}
            guaranteed = message.name in reserved
        return ResponseTimeBound(message=message, bound=waiting + offset,
                                 waiting_time=waiting, service_offset=offset,
                                 guaranteed=guaranteed)

    def all_bounds(self) -> dict[str, ResponseTimeBound]:
        """Bounds of every message of the set, indexed by name."""
        return {message.name: self.bound_for(message)
                for message in self.message_set}

    def violations(self) -> list[ResponseTimeBound]:
        """Messages whose worst-case response time exceeds their deadline."""
        return [bound for bound in self.all_bounds().values()
                if not bound.meets_deadline]

    def worst_bound(self) -> float:
        """Largest response-time bound over the whole message set (seconds)."""
        bounds = self.all_bounds()
        if not bounds:
            raise AnalysisError("the message set is empty")
        return max(bound.bound for bound in bounds.values())
