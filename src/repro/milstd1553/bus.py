"""Discrete-event simulation of the MIL-STD-1553B bus.

The simulator executes a :class:`~repro.milstd1553.schedule.MajorFrameSchedule`
on the shared 1 Mbps bus:

* at every minor frame boundary (every 20 ms) the bus controller starts
  issuing the transactions of that minor frame, back to back,
* after the periodic transactions it polls, in a fixed order, every remote
  terminal that may hold sporadic data; when the poll finds pending sporadic
  messages, the corresponding transfers are issued immediately,
* the bus is a single shared resource: a transaction occupies it for its full
  duration (words, response times and intermessage gap) and nothing else can
  happen meanwhile.

Response times are measured from the *release* of a message instance
(production of fresh data by the application) to the completion of its last
transaction on the bus:

* periodic instances are released at every multiple of their period
  (asynchronously from the minor frame that carries them, which is exactly
  why their response time can approach period + frame offset),
* sporadic instances are released by the greedy or randomised sources, at
  most one per minor frame per message, as the paper assumes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message
from repro.milstd1553.schedule import POLL_DURATION, MajorFrameSchedule
from repro.milstd1553.transaction import transactions_for_message
from repro.simulation.engine import Simulator
from repro.simulation.statistics import Counter, LatencyRecorder, SummaryStatistics
from repro.simulation.trace import TraceRecorder

__all__ = ["Milstd1553BusSimulator", "BusSimulationResults"]


@dataclass
class BusSimulationResults:
    """Statistics of one 1553B simulation run."""

    duration: float
    message_latencies: dict[str, LatencyRecorder] = field(default_factory=dict)
    minor_frame_overruns: int = 0
    bus_busy_time: float = 0.0
    polls_issued: int = 0
    instances_released: int = 0
    instances_delivered: int = 0

    def message_summary(self, name: str) -> SummaryStatistics:
        """Latency summary of one message stream."""
        return self.message_latencies[name].summary()

    def worst_latency(self, name: str) -> float:
        """Largest observed response time of one message (seconds)."""
        return self.message_latencies[name].maximum

    @property
    def bus_utilization(self) -> float:
        """Fraction of the run during which the bus carried traffic."""
        if self.duration <= 0:
            return float("nan")
        return self.bus_busy_time / self.duration


@dataclass
class _PendingSporadic:
    """A sporadic instance waiting at its remote terminal for a poll."""

    message: Message
    release_time: float


class Milstd1553BusSimulator:
    """Simulate the cyclic-executive operation of a 1553B bus.

    Parameters
    ----------
    message_set:
        The avionics messages (periodic and sporadic).
    schedule:
        Optional pre-built schedule; by default one is built from the message
        set with the paper's 20 ms / 160 ms structure.
    sporadic_scenario:
        ``"greedy"`` releases every sporadic message once per minor frame
        (its worst case); ``"random"`` releases each with probability 0.5
        per minor frame, at a random instant inside the frame.
    seed:
        Seed of the random generator used by the ``"random"`` scenario.
    trace_enabled:
        Record a transaction-level trace.
    """

    def __init__(self, message_set: MessageSet,
                 schedule: MajorFrameSchedule | None = None,
                 sporadic_scenario: str = "greedy", seed: int = 1,
                 trace_enabled: bool = False) -> None:
        if sporadic_scenario not in ("greedy", "random"):
            raise ConfigurationError(
                f"unknown sporadic scenario {sporadic_scenario!r}")
        self.message_set = message_set
        self.schedule = schedule or MajorFrameSchedule(message_set)
        self.sporadic_scenario = sporadic_scenario
        self.rng = np.random.default_rng(seed)
        self.trace = TraceRecorder(enabled=trace_enabled)
        self.simulator = Simulator()
        self._pending_sporadic: dict[str, deque[_PendingSporadic]] = {
            station: deque() for station in self.schedule.polled_terminals()}
        self._results: BusSimulationResults | None = None
        self._bus_free_at = 0.0
        self.transactions_issued = Counter("bus.transactions")

    # -- execution -------------------------------------------------------------

    def run(self, duration: float = units.ms(320)) -> BusSimulationResults:
        """Simulate ``duration`` seconds of bus operation (default 2 major frames)."""
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration!r}")
        results = BusSimulationResults(duration=duration)
        for message in self.message_set:
            results.message_latencies[message.name] = LatencyRecorder(
                message.name)
        self._results = results

        # Periodic data production is synchronised with the bus schedule (the
        # subsystem samples the data for the minor frame that will carry it),
        # so periodic instances are accounted for directly in the frame
        # handler; only the release count is precomputed here.
        for message in self.message_set.periodic():
            interval = self.schedule.interval_of(message.name)
            per_major = self.schedule.minor_frame_count // interval
            majors = duration / self.schedule.major_frame
            results.instances_released += int(round(per_major * majors))

        # Sporadic releases at the remote terminals are precomputed into
        # per-station queues (sorted by release time) rather than scheduled
        # as events, so the frame handler never misses a release that falls
        # exactly on a frame boundary because of floating-point ties.
        for message in self.message_set.sporadic():
            self._precompute_sporadic_releases(message, duration)
        for queue in self._pending_sporadic.values():
            queue_sorted = sorted(queue, key=lambda p: p.release_time)
            queue.clear()
            queue.extend(queue_sorted)

        # Minor frame interrupts.
        minor = self.schedule.minor_frame
        frame_count = int(round(duration / minor))
        for frame_index in range(frame_count):
            self.simulator.schedule_at(
                frame_index * minor, self._run_minor_frame,
                frame_index % self.schedule.minor_frame_count)

        self.simulator.run()
        return results

    @property
    def results(self) -> BusSimulationResults:
        """Results of the last run."""
        if self._results is None:
            raise ConfigurationError("call run() first")
        return self._results

    # -- releases ---------------------------------------------------------------

    def _precompute_sporadic_releases(self, message: Message,
                                      duration: float) -> None:
        """Precompute the sporadic release instants of one message.

        Releases are spaced by at least the message's minimal inter-arrival
        time (and never closer than one minor frame).  In the ``"greedy"``
        scenario every window produces an instance at its start (the worst
        case the analysis assumes); in the ``"random"`` scenario each window
        produces an instance with probability 0.5 at a random instant inside
        it.
        """
        spacing = max(self.schedule.minor_frame, message.period)
        window_count = int(duration / spacing + 1e-9) + 1
        queue = self._pending_sporadic[message.source]
        for window in range(window_count):
            window_start = window * spacing
            if self.sporadic_scenario == "greedy":
                release = window_start
            else:
                if self.rng.random() >= 0.5:
                    continue
                release = window_start + float(self.rng.uniform(0.0, spacing))
            if release >= duration:
                continue
            queue.append(_PendingSporadic(message=message,
                                          release_time=release))
            self._results.instances_released += 1

    # -- minor frame execution -----------------------------------------------

    def _run_minor_frame(self, slot_index: int) -> None:
        """Issue the transactions of one minor frame, then poll the terminals."""
        now = self.simulator.now
        results = self._results
        slot = self.schedule.slot(slot_index)
        # The bus may still be busy finishing the previous minor frame
        # (overrun); transactions of this frame start after it frees up.
        start = max(now, self._bus_free_at)
        cursor = start
        if self._bus_free_at > now + 1e-12:
            results.minor_frame_overruns += 1

        frame_end = now + self.schedule.minor_frame

        # 1. Periodic transactions of this minor frame (the transaction
        #    table); they are never deferred — feasibility of the schedule
        #    guarantees they fit.
        for transaction in slot.transactions:
            cursor += transaction.duration
            self.transactions_issued.increment()
            self.trace.record(cursor, "bus.transaction", "bus-controller",
                              message=transaction.name,
                              words=transaction.data_words)
            if transaction.is_last_part:
                # Periodic data is sampled at the start of the minor frame
                # that carries it (synchronous production), so the response
                # time is measured from the frame start.
                results.message_latencies[transaction.message.name].record(
                    cursor - now)
                results.instances_delivered += 1

        # 2. Poll every terminal that may hold sporadic data and serve the
        #    pending *deadline-constrained* (reserved) sporadic messages —
        #    the feasibility check guarantees they fit in the minor frame.
        major_frame = self.schedule.major_frame
        deferred: list[tuple[str, _PendingSporadic]] = []
        for station in self.schedule.polled_terminals():
            cursor += POLL_DURATION
            results.polls_issued += 1
            self.trace.record(cursor, "bus.poll", "bus-controller",
                              terminal=station)
            queue = self._pending_sporadic[station]
            ready = [p for p in queue if p.release_time <= cursor + 1e-9]
            for pending in sorted(
                    ready, key=lambda p: (p.message.deadline is None,
                                          p.message.deadline or 0.0)):
                reserved = (pending.message.deadline is not None
                            and pending.message.deadline <= major_frame)
                if not reserved:
                    deferred.append((station, pending))
                    queue.remove(pending)
                    continue
                queue.remove(pending)
                cursor = self._serve_sporadic(pending, cursor)

        # 3. Serve background (best-effort) sporadic messages in the idle
        #    time left in the minor frame; whatever does not fit stays
        #    pending for the next frame.
        for station, pending in deferred:
            duration = sum(t.duration for t in transactions_for_message(
                pending.message, self.schedule.transfer_format))
            if cursor + duration > frame_end:
                self._pending_sporadic[station].appendleft(pending)
                continue
            cursor = self._serve_sporadic(pending, cursor)

        results.bus_busy_time += cursor - start
        self._bus_free_at = cursor

    def _serve_sporadic(self, pending: _PendingSporadic,
                        cursor: float) -> float:
        """Issue the transactions of one pending sporadic instance."""
        results = self._results
        for transaction in transactions_for_message(
                pending.message, self.schedule.transfer_format):
            cursor += transaction.duration
            self.transactions_issued.increment()
            self.trace.record(cursor, "bus.transaction", "bus-controller",
                              message=transaction.name,
                              words=transaction.data_words)
            if transaction.is_last_part:
                results.message_latencies[pending.message.name].record(
                    cursor - pending.release_time)
                results.instances_delivered += 1
        return cursor
