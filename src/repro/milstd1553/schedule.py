"""Major/minor frame schedule construction for the 1553B bus controller.

The paper's case study uses the classical cyclic-executive organisation:

* the **major frame** is 160 ms — the biggest message period, so every
  periodic message is transferred at least once per major frame,
* the major frame is divided into **minor frames** of 20 ms — the smallest
  message period, so the most frequent messages are transferred every minor
  frame; an interrupt at the start of each minor frame triggers the bus
  controller's transaction list for that frame.

:class:`MajorFrameSchedule` builds such a schedule from a
:class:`~repro.flows.message_set.MessageSet`:

* every periodic message is placed in the minor frames matching its period
  (a message of period ``k`` minor frames appears in every ``k``-th minor
  frame); phases are chosen greedily to balance the minor-frame load,
* every remote terminal that emits sporadic messages is **polled** once per
  minor frame (a short RT→BC status/vector-word transaction), and worst-case
  room for one instance of each sporadic message per minor frame is accounted
  for in the feasibility check, matching the paper's assumption that every
  station generates at most one sporadic message of each type per minor
  frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.errors import InvalidScheduleError
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message
from repro.milstd1553.transaction import (
    Transaction,
    TransferFormat,
    message_duration,
    transactions_for_message,
)
from repro.milstd1553.words import INTERMESSAGE_GAP, RESPONSE_TIME, WORD_TIME

__all__ = ["MinorFrameSlot", "MajorFrameSchedule", "POLL_DURATION"]

#: Duration of one poll of a remote terminal (transmit command for the
#: service/vector word: command + RT response + status + 1 data word + gap).
POLL_DURATION = 3 * WORD_TIME + RESPONSE_TIME + INTERMESSAGE_GAP


@dataclass
class MinorFrameSlot:
    """The content of one minor frame of the major frame schedule."""

    #: Index of the minor frame within the major frame (0-based).
    index: int
    #: Periodic transactions issued in this minor frame, in emission order.
    transactions: list[Transaction] = field(default_factory=list)

    def periodic_duration(self) -> float:
        """Bus time used by the periodic transactions (seconds)."""
        return sum(t.duration for t in self.transactions)


class MajorFrameSchedule:
    """A complete bus-controller schedule (transaction table).

    Parameters
    ----------
    message_set:
        The avionics messages to schedule.  Periodic messages go into the
        transaction table; sporadic ones are served by polling.
    minor_frame:
        Minor frame duration (default 20 ms, the paper's value).
    major_frame:
        Major frame duration (default 160 ms, the paper's value); must be an
        integral multiple of the minor frame.
    transfer_format:
        1553B transfer format used for the data transactions.

    Raises
    ------
    InvalidScheduleError
        If the frame structure is inconsistent or a periodic message has a
        period smaller than the minor frame.
    """

    def __init__(self, message_set: MessageSet,
                 minor_frame: float = units.ms(20),
                 major_frame: float = units.ms(160),
                 transfer_format: TransferFormat = TransferFormat.RT_TO_RT
                 ) -> None:
        if minor_frame <= 0 or major_frame <= 0:
            raise InvalidScheduleError("frame durations must be positive")
        ratio = major_frame / minor_frame
        if abs(ratio - round(ratio)) > 1e-9:
            raise InvalidScheduleError(
                f"the major frame ({major_frame}s) must be an integral "
                f"multiple of the minor frame ({minor_frame}s)")
        self.message_set = message_set
        self.minor_frame = float(minor_frame)
        self.major_frame = float(major_frame)
        self.transfer_format = transfer_format
        self.minor_frame_count = int(round(ratio))
        self.slots = [MinorFrameSlot(index=i)
                      for i in range(self.minor_frame_count)]
        #: Minor-frame interval of each periodic message (in minor frames).
        self._intervals: dict[str, int] = {}
        #: Phase (first minor frame index) of each periodic message.
        self._phases: dict[str, int] = {}
        #: Per-minor-frame periodic load vector, maintained incrementally:
        #: ``_loads[i]`` always equals ``slots[i].periodic_duration()`` (the
        #: same left-to-right float accumulation over the appended
        #: transactions), so phase selection and the feasibility checks never
        #: re-sum transaction durations.
        self._loads = np.zeros(self.minor_frame_count)
        self._build()

    # -- construction -------------------------------------------------------

    def _interval_for(self, message: Message) -> int:
        """Number of minor frames between two transfers of ``message``.

        The interval never exceeds the message period (so the real period
        requirement is met) and is clamped to a divisor of the number of
        minor frames so the schedule repeats identically every major frame.
        """
        if message.period + 1e-12 < self.minor_frame:
            raise InvalidScheduleError(
                f"message {message.name!r} has a period of "
                f"{message.period}s, smaller than the minor frame "
                f"({self.minor_frame}s); the 1553B cyclic schedule cannot "
                f"serve it")
        interval = int(message.period / self.minor_frame + 1e-9)
        interval = max(1, min(interval, self.minor_frame_count))
        while self.minor_frame_count % interval != 0:
            interval -= 1
        return interval

    def _build(self) -> None:
        periodic = sorted(self.message_set.periodic(),
                          key=lambda m: (m.period, -m.size, m.name))
        for message in periodic:
            interval = self._interval_for(message)
            self._intervals[message.name] = interval
            phase = self._best_phase(message, interval)
            self._phases[message.name] = phase
            for transaction in transactions_for_message(
                    message, self.transfer_format):
                duration = transaction.duration
                for slot_index in range(phase, self.minor_frame_count,
                                        interval):
                    self.slots[slot_index].transactions.append(transaction)
                    self._loads[slot_index] += duration

    def _best_phase(self, message: Message, interval: int) -> int:
        """Choose the phase minimising the worst loaded minor frame.

        The candidate load of phase ``p`` is the maximum current load over
        the minor frames ``p, p + interval, ...`` plus the message's bus
        time.  ``_loads`` reshaped to ``(count / interval, interval)`` puts
        phase ``p``'s frames in column ``p``, so a column-wise max plus an
        argmin evaluates every candidate at once; ``np.argmin`` returns the
        first minimum, matching the greedy first-strictly-smaller scan.
        Float addition is monotone, so adding the message duration after the
        max (instead of to every frame) yields bit-identical candidates.
        """
        duration = message_duration(message, self.transfer_format)
        candidates = self._loads.reshape(-1, interval).max(axis=0) + duration
        return int(np.argmin(candidates))

    # -- sporadic accounting ------------------------------------------------

    def polled_terminals(self) -> list[str]:
        """Stations that emit sporadic messages and are polled every minor frame."""
        return sorted({m.source for m in self.message_set.sporadic()})

    def polling_duration(self) -> float:
        """Bus time spent polling every minor frame (seconds)."""
        return POLL_DURATION * len(self.polled_terminals())

    def reserved_sporadic(self) -> list[Message]:
        """Sporadic messages that get guaranteed room in every minor frame.

        Only sporadic messages with a hard deadline no larger than the major
        frame are reserved for: background traffic (deadline above the major
        frame, or no deadline at all) is served best-effort in the idle time
        of the minor frames, which is how operational 1553B systems handle
        low-priority asynchronous data.
        """
        return [m for m in self.message_set.sporadic()
                if m.deadline is not None and m.deadline <= self.major_frame]

    def worst_case_sporadic_duration(self) -> float:
        """Bus time needed if every reserved sporadic message fires in the same minor frame.

        The paper assumes at most one sporadic message of each type per
        station per minor frame, so the worst case is one instance of every
        reserved sporadic message (see :meth:`reserved_sporadic`).
        """
        total = 0.0
        for message in self.reserved_sporadic():
            total += message_duration(message, self.transfer_format)
        return total

    # -- inspection ----------------------------------------------------------

    def interval_of(self, message_name: str) -> int:
        """Minor-frame interval of a scheduled periodic message."""
        return self._intervals[message_name]

    def phase_of(self, message_name: str) -> int:
        """Phase (first minor frame) of a scheduled periodic message."""
        return self._phases[message_name]

    def slot(self, index: int) -> MinorFrameSlot:
        """The minor frame slot ``index`` (0-based)."""
        return self.slots[index]

    def periodic_loads(self) -> np.ndarray:
        """Per-minor-frame periodic bus time (seconds), as a vector.

        A copy of the load vector maintained during construction; entry
        ``i`` equals ``slots[i].periodic_duration()``.
        """
        return self._loads.copy()

    def minor_frame_durations(self) -> list[float]:
        """Worst-case busy time of every minor frame (seconds).

        Periodic transactions plus the per-minor-frame polling plus the
        worst-case sporadic transfers.
        """
        overhead = self.polling_duration() + self.worst_case_sporadic_duration()
        return [float(load) + overhead for load in self._loads]

    def utilizations(self) -> list[float]:
        """Worst-case utilisation of every minor frame (fraction of 20 ms)."""
        return [duration / self.minor_frame
                for duration in self.minor_frame_durations()]

    def is_feasible(self) -> bool:
        """True when every minor frame fits within its duration."""
        return all(duration <= self.minor_frame + 1e-12
                   for duration in self.minor_frame_durations())

    def validate(self) -> None:
        """Raise :class:`InvalidScheduleError` if a minor frame is over-committed."""
        for index, duration in enumerate(self.minor_frame_durations()):
            if duration > self.minor_frame + 1e-12:
                raise InvalidScheduleError(
                    f"minor frame {index} needs {duration * 1e3:.3f} ms of "
                    f"bus time but only {self.minor_frame * 1e3:.3f} ms are "
                    f"available")

    def summary(self) -> dict[str, float | int | bool]:
        """Headline figures used by the reports."""
        durations = self.minor_frame_durations()
        return {
            "minor_frames": self.minor_frame_count,
            "periodic_messages": len(self._intervals),
            "polled_terminals": len(self.polled_terminals()),
            "max_minor_frame_ms": max(durations) * 1e3,
            "mean_utilization": sum(self.utilizations()) / len(self.slots),
            "max_utilization": max(self.utilizations()),
            "feasible": self.is_feasible(),
        }
