"""MIL-STD-1553B word and gap timing.

Every word on a 1553B bus (command, status or data) occupies 20 µs at the
1 Mbps bus rate: a 3 bit-time synchronisation pattern, 16 data bits and one
parity bit.  Two further timing figures matter for transaction durations:

* the **RT response time** — the standard allows a remote terminal between
  4 µs and 12 µs (measured mid-parity to mid-sync) to start its status word
  after a command; the worst case of 12 µs is used by the analysis and the
  simulator default,
* the **intermessage gap** — the bus controller must leave at least 4 µs
  between consecutive transactions.

These constants and helpers convert the paper's message sizes (bits) into
1553B data-word counts and bus occupation times.
"""

from __future__ import annotations

import math

from repro import units
from repro.errors import ConfigurationError

__all__ = [
    "BUS_RATE",
    "WORD_TIME",
    "RESPONSE_TIME",
    "INTERMESSAGE_GAP",
    "MAX_DATA_WORDS",
    "data_word_count",
    "data_words_duration",
]

#: Bus rate: 1 Mbps.
BUS_RATE = units.mbps(1)
#: Duration of one word on the wire (20 bit-times at 1 Mbps).
WORD_TIME = units.BITS_PER_1553_WORD_ON_WIRE / BUS_RATE
#: Worst-case remote-terminal response time (12 µs).
RESPONSE_TIME = units.us(12)
#: Minimal intermessage gap the bus controller inserts (4 µs).
INTERMESSAGE_GAP = units.us(4)
#: A single 1553B transaction carries at most 32 data words.
MAX_DATA_WORDS = 32


def data_word_count(size_bits: float) -> int:
    """Number of 16-bit data words needed to carry ``size_bits`` of payload.

    Raises
    ------
    ConfigurationError
        If the size is not positive.  Messages larger than 32 words are
        allowed — they simply need several transactions (see
        :func:`repro.milstd1553.transaction.transactions_for_message`).
    """
    if size_bits <= 0:
        raise ConfigurationError(
            f"message size must be positive, got {size_bits!r}")
    return max(1, math.ceil(size_bits / units.BITS_PER_1553_WORD))


def data_words_duration(word_count: int) -> float:
    """Bus time (seconds) occupied by ``word_count`` data words."""
    if word_count < 0:
        raise ConfigurationError(
            f"word count must be non-negative, got {word_count!r}")
    return word_count * WORD_TIME
