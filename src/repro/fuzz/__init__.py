"""Randomized scenario fuzzing for the soundness invariants.

The analysis claims the paper rests on — every analytic bound dominates the
simulated worst case, stability flags agree with finite bounds, results are
byte-deterministic and survive store round-trips — were historically checked
on a handful of hand-written scenarios.  This package checks them on an
arbitrarily large randomized slice of the input space:

* :class:`ScenarioGenerator` / :class:`GeneratorConfig` — a fully seeded
  stream of valid random :class:`~repro.campaigns.scenario.Scenario` specs
  (same seed ⇒ bit-identical specs in any process),
* :class:`FuzzCampaign` / :class:`FuzzResult` — push generated scenarios
  through the existing analysis and simulation paths and check every
  invariant per cell; store-backed and resumable (``repro fuzz``),
* :func:`evaluate_scenario` / :func:`minimize_scenario` — one-shot
  evaluation and greedy shrinking of interesting scenarios,
* :mod:`repro.fuzz.corpus` — persist minimized violating or near-tight
  scenarios as committed JSON specs under ``tests/fuzz/corpus/`` that
  replay as ordinary tier-1 regression tests
  (:func:`load_entries` / :func:`verify_entry` / :func:`persist_interesting`).
"""

from repro.fuzz.campaign import (
    FuzzBoundRow,
    FuzzCampaign,
    FuzzCell,
    FuzzOutcome,
    FuzzPortRow,
    FuzzResult,
    evaluate_scenario,
)
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusEntry,
    CorpusUpdate,
    load_entries,
    persist_interesting,
    scenario_from_spec,
    scenario_to_spec,
    verify_entry,
)
from repro.fuzz.generator import (
    GeneratorConfig,
    ScenarioGenerator,
    derive_substream_seed,
)
from repro.fuzz.minimize import minimize_scenario

__all__ = [
    "GeneratorConfig",
    "ScenarioGenerator",
    "derive_substream_seed",
    "FuzzCell",
    "FuzzBoundRow",
    "FuzzOutcome",
    "FuzzPortRow",
    "FuzzResult",
    "FuzzCampaign",
    "evaluate_scenario",
    "minimize_scenario",
    "CorpusEntry",
    "CorpusUpdate",
    "DEFAULT_CORPUS_DIR",
    "load_entries",
    "persist_interesting",
    "scenario_from_spec",
    "scenario_to_spec",
    "verify_entry",
]
