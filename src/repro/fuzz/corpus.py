"""The committed regression corpus of interesting fuzzed scenarios.

Scenarios the fuzz campaign flags — an invariant violation (should never
happen) or a near-tight bound (the most informative soundness witnesses) —
are shrunk by :mod:`repro.fuzz.minimize` and persisted as JSON specs under
``tests/fuzz/corpus/``.  Each entry records the *complete* deterministic
measurement (campaign rows, wire-level bounds, simulated worsts, event
counts) of the minimized scenario, so the corpus replay test re-runs
analysis plus simulation from the spec alone and asserts the recorded
values still hold byte-identically — no network, store or generator access
required.

Entries are content-addressed: the filename embeds a fingerprint of the
minimized scenario's substance (workload, topology, link parameters,
policies, simulation config — *not* its display name), so re-running
``repro fuzz`` is idempotent and different generator indexes that shrink to
the same minimal scenario deduplicate naturally.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.errors import ConfigurationError
from repro.fuzz.campaign import (
    FuzzOutcome,
    FuzzResult,
    _outcome_to_payload,
    evaluate_scenario,
)
from repro.fuzz.minimize import minimize_scenario
from repro.store import canonical_json, fingerprint

__all__ = [
    "CorpusEntry",
    "CorpusUpdate",
    "DEFAULT_CORPUS_DIR",
    "content_digest",
    "load_entries",
    "persist_interesting",
    "scenario_from_spec",
    "scenario_to_spec",
    "verify_entry",
]

#: Version stamp of the on-disk entry format.
FORMAT_VERSION = 1

#: The committed corpus location (``tests/fuzz/corpus/`` at the repo root).
DEFAULT_CORPUS_DIR = (Path(__file__).resolve().parents[3]
                      / "tests" / "fuzz" / "corpus")


def scenario_to_spec(scenario: Scenario) -> dict:
    """A scenario as a plain-JSON spec (inverse of :func:`scenario_from_spec`)."""
    return {
        "name": scenario.name,
        "description": scenario.description,
        "workload": {
            "station_count": scenario.workload.station_count,
            "seed": scenario.workload.seed,
            "size_factor": scenario.workload.size_factor,
            "replication": scenario.workload.replication,
        },
        "topology": {
            "kind": scenario.topology.kind,
            "leaf_count": scenario.topology.leaf_count,
            "graph_family": scenario.topology.graph_family,
            "graph_switches": scenario.topology.graph_switches,
            "graph_seed": scenario.topology.graph_seed,
            "graph_extra_links": scenario.topology.graph_extra_links,
        },
        "capacity": scenario.capacity,
        "technology_delay": scenario.technology_delay,
        "policies": list(scenario.policies),
        "tags": list(scenario.tags),
    }


def scenario_from_spec(spec: dict) -> Scenario:
    """Rebuild a scenario from its plain-JSON spec (validates on build)."""
    return Scenario(
        name=str(spec["name"]),
        description=str(spec["description"]),
        workload=WorkloadSpec(
            station_count=int(spec["workload"]["station_count"]),
            seed=int(spec["workload"]["seed"]),
            size_factor=float(spec["workload"]["size_factor"]),
            replication=int(spec["workload"]["replication"])),
        topology=TopologySpec(
            kind=str(spec["topology"]["kind"]),
            leaf_count=int(spec["topology"]["leaf_count"]),
            graph_family=str(spec["topology"].get("graph_family",
                                                  "diamond")),
            graph_switches=int(spec["topology"].get("graph_switches", 4)),
            graph_seed=int(spec["topology"].get("graph_seed", 0)),
            graph_extra_links=int(spec["topology"].get("graph_extra_links",
                                                       2))),
        capacity=float(spec["capacity"]),
        technology_delay=float(spec["technology_delay"]),
        policies=tuple(spec["policies"]),
        tags=tuple(spec["tags"]))


def content_digest(scenario: Scenario, *, duration: float,
                   sim_seed: int,
                   engines: tuple[str, ...] = ("calculus",)) -> str:
    """Fingerprint of an entry's substance (display name excluded).

    The engine selection joins the digest only when it differs from the
    default, so every pre-engine entry keeps its filename while the same
    scenario validated under extra engines gets its own identity.
    """
    payload = {
        "workload": scenario.workload,
        "topology": scenario.topology,
        "capacity": scenario.capacity,
        "technology_delay": scenario.technology_delay,
        "policies": scenario.policies,
        "duration": duration,
        "sim_seed": sim_seed,
    }
    if tuple(engines) != ("calculus",):
        payload["engines"] = tuple(engines)
    return fingerprint(payload)


@dataclass(frozen=True)
class CorpusEntry:
    """One committed regression scenario plus its recorded measurement."""

    #: ``"violation"`` or ``"near-tight"``.
    reason: str
    #: Generator provenance: master seed and stream index of the original
    #: (pre-shrink) scenario.
    generator_seed: int
    generator_index: int
    scenario: Scenario
    #: Simulated horizon (seconds) and simulation seed of the replay.
    duration: float
    sim_seed: int
    #: The recorded outcome payload: ``measurement`` (campaign rows,
    #: bound-vs-sim rows, event counts), ``violations``, ``max_tightness``.
    recorded: dict
    #: Engines the entry's measurement validated (default: the floor).
    engines: tuple[str, ...] = ("calculus",)

    @property
    def digest(self) -> str:
        """Content fingerprint used for the entry's filename."""
        return content_digest(self.scenario, duration=self.duration,
                              sim_seed=self.sim_seed, engines=self.engines)

    @property
    def filename(self) -> str:
        """The canonical ``<reason>-<digest12>.json`` filename."""
        return f"{self.reason}-{self.digest[:12]}.json"


def _entry_to_payload(entry: CorpusEntry) -> dict:
    payload = {
        "format": FORMAT_VERSION,
        "reason": entry.reason,
        "origin": {"generator_seed": entry.generator_seed,
                   "index": entry.generator_index},
        "scenario": scenario_to_spec(entry.scenario),
        "simulation": {"duration": entry.duration,
                       "sim_seed": entry.sim_seed},
        "recorded": entry.recorded,
    }
    # Pre-engine entries stay byte-identical: the key only appears when
    # the entry actually validated more than the default floor engine.
    if entry.engines != ("calculus",):
        payload["engines"] = list(entry.engines)
    return payload


def _entry_from_payload(payload: dict) -> CorpusEntry:
    if payload.get("format") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported corpus entry format {payload.get('format')!r} "
            f"(this build reads format {FORMAT_VERSION})")
    return CorpusEntry(
        reason=str(payload["reason"]),
        generator_seed=int(payload["origin"]["generator_seed"]),
        generator_index=int(payload["origin"]["index"]),
        scenario=scenario_from_spec(payload["scenario"]),
        duration=float(payload["simulation"]["duration"]),
        sim_seed=int(payload["simulation"]["sim_seed"]),
        recorded=payload["recorded"],
        engines=tuple(payload.get("engines", ("calculus",))))


def _entry_text(entry: CorpusEntry) -> str:
    """The committed JSON text of an entry (stable key order, no jitter)."""
    return json.dumps(_entry_to_payload(entry), sort_keys=True,
                      indent=2) + "\n"


def load_entries(directory: str | Path | None = None) -> list[CorpusEntry]:
    """Every committed corpus entry, in filename order."""
    directory = Path(directory) if directory is not None \
        else DEFAULT_CORPUS_DIR
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries.append(_entry_from_payload(payload))
    return entries


def verify_entry(entry: CorpusEntry) -> list[str]:
    """Replay one entry and report every discrepancy (empty = still good).

    The scenario is re-evaluated through the live analysis + simulation
    paths and the fresh measurement is compared byte-for-byte (canonical
    JSON) against the recorded one; the recorded invariant verdicts must
    also be reproduced exactly.
    """
    outcome = evaluate_scenario(entry.scenario, duration=entry.duration,
                                sim_seed=entry.sim_seed,
                                engines=entry.engines)
    payload = _outcome_to_payload(outcome)
    problems: list[str] = []
    fresh = canonical_json(payload["measurement"])
    recorded = canonical_json(entry.recorded["measurement"])
    if fresh != recorded:
        problems.append(
            f"{entry.filename}: measurement drifted from the recorded one")
    if list(outcome.violations) != list(entry.recorded["violations"]):
        problems.append(
            f"{entry.filename}: invariant verdicts changed "
            f"(recorded {entry.recorded['violations']!r}, "
            f"got {list(outcome.violations)!r})")
    if canonical_json(outcome.max_tightness) != canonical_json(
            float(entry.recorded["max_tightness"])):
        problems.append(
            f"{entry.filename}: max tightness drifted "
            f"(recorded {entry.recorded['max_tightness']!r}, "
            f"got {outcome.max_tightness!r})")
    return problems


@dataclass
class CorpusUpdate:
    """What one :func:`persist_interesting` call did to the corpus."""

    directory: Path
    added: list[str]
    updated: list[str]
    unchanged: list[str]

    @property
    def total(self) -> int:
        """Number of entries touched or confirmed by the run."""
        return len(self.added) + len(self.updated) + len(self.unchanged)

    def describe(self) -> str:
        """One status line for the CLI."""
        return (f"corpus: {len(self.added)} added, {len(self.updated)} "
                f"updated, {len(self.unchanged)} unchanged under "
                f"{self.directory}")


def _reason_and_predicate(outcome: FuzzOutcome, threshold: float
                          ) -> tuple[str, Callable[[FuzzOutcome], bool]]:
    """The corpus reason of an interesting outcome and its shrink predicate.

    A multi-hop witness must stay multi-hop: collapsing a ``"graph"``
    scenario to the star would re-record an edge case of the single-point
    analysis instead of the routed-path one the cell actually exercised,
    so the predicate pins the topology kind while the shrinker simplifies
    the graph's family, seed and redundancy.
    """
    multi_hop = outcome.cell.scenario.topology.kind == "graph"

    def keeps_shape(candidate: FuzzOutcome) -> bool:
        return (not multi_hop
                or candidate.cell.scenario.topology.kind == "graph")

    if not outcome.holds:
        return "violation", (
            lambda candidate: keeps_shape(candidate)
            and not candidate.holds)
    return "near-tight", (
        lambda candidate: keeps_shape(candidate)
        and candidate.holds
        and math.isfinite(candidate.max_tightness)
        and candidate.max_tightness >= threshold)


def persist_interesting(result: FuzzResult, *, generator_seed: int,
                        directory: str | Path | None = None,
                        limit: int = 12) -> CorpusUpdate:
    """Minimize and persist the campaign's interesting cells.

    Violating cells are always persisted; near-tight cells fill the
    remaining budget of ``limit`` entries in decreasing-tightness order.
    Entries are deduplicated on their content digest, existing files are
    only rewritten when their bytes changed, and nothing outside
    ``directory`` is touched.
    """
    directory = Path(directory) if directory is not None \
        else DEFAULT_CORPUS_DIR
    interesting = result.interesting()
    violating = [outcome for outcome in interesting if not outcome.holds]
    near_tight = [outcome for outcome in interesting if outcome.holds]
    selected = violating + near_tight[:max(0, limit - len(violating))]

    update = CorpusUpdate(directory=directory, added=[], updated=[],
                          unchanged=[])
    seen: set[str] = set()
    for outcome in selected:
        reason, predicate = _reason_and_predicate(
            outcome, result.tightness_threshold)
        engines = outcome.engines
        minimized, _ = minimize_scenario(
            outcome.cell.scenario, predicate,
            duration=outcome.cell.duration, sim_seed=outcome.cell.sim_seed)
        digest = content_digest(minimized, duration=outcome.cell.duration,
                                sim_seed=outcome.cell.sim_seed,
                                engines=engines)
        if digest in seen:
            continue
        seen.add(digest)
        # Rename to the content-addressed corpus identity, then record the
        # measurement of the *renamed* scenario (row labels carry the
        # name, so the recorded payload must be computed after renaming).
        renamed = dataclasses.replace(
            minimized,
            name=f"corpus-{digest[:12]}",
            description=(f"minimized {reason} scenario from fuzz seed "
                         f"{generator_seed}, index "
                         f"{outcome.cell.index}"),
            tags=("fuzz", "corpus"))
        final = evaluate_scenario(renamed, duration=outcome.cell.duration,
                                  sim_seed=outcome.cell.sim_seed,
                                  engines=engines)
        payload = _outcome_to_payload(final)
        recorded = {"measurement": payload["measurement"],
                    "violations": payload["violations"],
                    "max_tightness": final.max_tightness}
        if engines != ("calculus",):
            # Tag the witness per engine: which backends it is near-tight
            # for (the ranking experiment and triage read this directly).
            recorded["near_tight_engines"] = list(
                final.near_tight_engines(result.tightness_threshold))
        entry = CorpusEntry(
            reason=reason,
            generator_seed=generator_seed,
            generator_index=outcome.cell.index,
            scenario=renamed,
            duration=outcome.cell.duration,
            sim_seed=outcome.cell.sim_seed,
            recorded=recorded,
            engines=engines)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / entry.filename
        text = _entry_text(entry)
        if not path.exists():
            path.write_text(text, encoding="utf-8")
            update.added.append(entry.filename)
        elif path.read_text(encoding="utf-8") != text:
            path.write_text(text, encoding="utf-8")
            update.updated.append(entry.filename)
        else:
            update.unchanged.append(entry.filename)
    return update
