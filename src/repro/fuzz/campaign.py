"""Soundness fuzzing: generated scenarios vs the invariants that must hold.

:class:`FuzzCampaign` pushes :class:`~repro.fuzz.generator.ScenarioGenerator`
scenarios through the *existing* evaluation paths — the analytic campaign
runner (:class:`~repro.campaigns.runner.CampaignRunner`) and the
discrete-event simulator behind :class:`~repro.simulation.campaign.
SimulationCampaign` — and checks, for every cell, the invariants the paper's
soundness claim rests on:

1. **soundness** — the wire-level analytic bound of every (policy, class)
   dominates the simulated worst case on the shared star (the multi-hop
   campaign bound dominates the single-point bound by construction, so the
   star is a valid floor for every legacy topology kind); ``"graph"``
   scenarios are simulated on their actual routed topology instead and
   checked against the per-path bounds of
   :class:`~repro.analysis.multihop.GraphPathAnalysis`, including the
   per-port backlog bounds vs the simulator's observed queue peaks,
2. **stability consistency** — a campaign row is ``stable`` iff its delay
   and backlog bounds are finite (and a stable delay bound is
   non-negative),
3. **byte-determinism** — evaluating the cell twice, once through the
   memoized campaign cache and once through a fresh naive runner plus a
   fresh simulator, yields byte-identical canonical-JSON measurements,
4. **store round-trip identity** — encoding the outcome to its result-store
   payload and decoding it back reproduces the identical payload.

Cells are value-level and deterministic, so campaigns fan out over worker
processes (``jobs=N``), persist per-cell results in the content-addressed
store (subsystem ``fuzz``) and resume byte-identically with ``--resume`` —
the same machinery the analytic and Monte-Carlo campaigns use.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro import units
from repro.analysis.engines import (DEFAULT_ENGINE, DEFAULT_ENGINES,
                                    get_engine, resolve_engines)
from repro.analysis.multihop import GraphPathAnalysis
from repro.analysis.validation import star_for_stations, wire_level_messages
from repro.campaigns.runner import CampaignRow, CampaignRunner
from repro.campaigns.scenario import Scenario
from repro.core.endtoend import EndToEndAnalysis
from repro.errors import ConfigurationError, UnstableSystemError
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.exec import ExecPolicy, ExecutionReport, ParallelExecutor
from repro.flows.priorities import PriorityClass
from repro.fuzz.generator import GeneratorConfig, ScenarioGenerator
from repro.reporting import (
    format_ms,
    render_markdown_table,
    render_table,
    write_csv,
    yes_no,
)
from repro.store import ResultStore, canonical_json
from repro.topology.network import Network

__all__ = [
    "FuzzCell",
    "FuzzBoundRow",
    "FuzzPortRow",
    "FuzzEngineRow",
    "FuzzOutcome",
    "FuzzResult",
    "FuzzCampaign",
    "evaluate_scenario",
]

#: Default simulated horizon per cell: one 1553B major frame.
DEFAULT_DURATION = units.ms(160)
#: Default simulation seed shared by every cell (the scenario spec is the
#: randomised axis; the release draw stays fixed and reproducible).
DEFAULT_SIM_SEED = 1
#: Default near-tight threshold: cells whose simulated worst reaches 90 %
#: of the analytic bound are corpus-worthy edge cases.
DEFAULT_TIGHTNESS_THRESHOLD = 0.9

#: Short policy labels reused from the campaign tables.
_POLICY_LABELS = {"fcfs": "FCFS", "strict-priority": "priority"}


@dataclass(frozen=True)
class FuzzCell:
    """One unit of fuzzing work: a generated scenario plus its sim config."""

    #: Position in the generator stream (part of the store key).
    index: int
    scenario: Scenario
    #: Seed of the simulator's random streams.
    sim_seed: int
    #: Simulated horizon in seconds.
    duration: float


@dataclass(frozen=True)
class FuzzBoundRow:
    """Wire-level analytic bound vs simulated worst for one (policy, class)."""

    policy: str
    priority: PriorityClass
    #: Wire-level single-point bound on the shared star (seconds);
    #: ``inf`` when the wire-level aggregate overloads the link.
    analytic_bound: float
    #: Worst latency observed by the simulator (seconds).
    worst_simulated: float
    #: Mean observed latency (seconds).
    mean_simulated: float
    #: Number of latency samples behind the observation.
    samples: int

    @property
    def bound_holds(self) -> bool:
        """True when the bound dominates the simulated worst case."""
        return self.worst_simulated <= self.analytic_bound + 1e-9

    @property
    def tightness(self) -> float:
        """Simulated worst over bound; ``nan`` without a finite bound."""
        if not math.isfinite(self.analytic_bound) or self.analytic_bound <= 0:
            return float("nan")
        return self.worst_simulated / self.analytic_bound


@dataclass(frozen=True)
class FuzzPortRow:
    """Analytic per-port backlog bound vs observed queue peak (graph cells).

    One row per ``(policy, directed port)`` of a ``"graph"`` scenario: the
    multi-hop analysis bounds the worst backlog of every transmitter, and
    the simulator reports the largest queue it actually built there.
    """

    policy: str
    #: Transmitting node of the directed port.
    node: str
    #: Neighbour the port transmits toward.
    toward: str
    #: Analytic backlog bound in bits (``inf`` when the port is unstable).
    backlog_bound: float
    #: Largest queue the simulator observed on the port, in bits.
    observed_bits: float

    @property
    def bound_holds(self) -> bool:
        """True when the backlog bound dominates the observed peak."""
        return self.observed_bits <= self.backlog_bound + 1e-9


@dataclass(frozen=True)
class FuzzEngineRow:
    """One alternative engine's bound vs the simulated floor.

    The ``calculus`` engine's verdicts are the :class:`FuzzBoundRow`
    rows (the harness' historical floor check, kept byte-identical);
    rows of this type cover the *other* registered engines when a
    campaign runs with ``--engine holistic|trajectory|all``.
    """

    engine: str
    policy: str
    priority: PriorityClass
    #: The engine's wire-level bound (seconds); ``inf`` when flagged
    #: unstable.
    bound: float
    #: Worst latency observed by the simulator (seconds).
    worst_simulated: float
    #: Number of latency samples behind the observation.
    samples: int

    @property
    def bound_holds(self) -> bool:
        """True when the engine's bound dominates the simulated worst."""
        return self.worst_simulated <= self.bound + 1e-9

    @property
    def tightness(self) -> float:
        """Simulated worst over bound; ``nan`` without a finite bound."""
        if not math.isfinite(self.bound) or self.bound <= 0:
            return float("nan")
        return self.worst_simulated / self.bound


@dataclass(frozen=True)
class FuzzOutcome:
    """Everything one fuzzed cell contributes to the campaign."""

    cell: FuzzCell
    #: The analytic campaign rows of the scenario (multi-hop bounds).
    campaign_rows: tuple[CampaignRow, ...]
    #: Wire-level bound vs simulation rows (classes with samples only).
    bound_rows: tuple[FuzzBoundRow, ...]
    #: Human-readable invariant violations; empty when all hold.
    violations: tuple[str, ...]
    events_processed: int
    frames_dropped: int
    elapsed: float
    #: True when served from the result store (``--resume``).
    resumed: bool = False
    #: Per-port backlog bound vs observation rows (``"graph"`` cells only).
    port_rows: tuple[FuzzPortRow, ...] = ()
    #: Bounds of the non-default engines (``--engine`` beyond calculus).
    engine_rows: tuple[FuzzEngineRow, ...] = ()

    @property
    def engines(self) -> tuple[str, ...]:
        """Every engine this cell validated (the floor engine first)."""
        names = [DEFAULT_ENGINE]
        for row in self.engine_rows:
            if row.engine not in names:
                names.append(row.engine)
        return tuple(names)

    def near_tight_engines(self, threshold: float) -> tuple[str, ...]:
        """Engines whose worst/bound ratio reaches ``threshold`` here."""
        names = []
        if math.isfinite(self.max_tightness) and \
                self.max_tightness >= threshold:
            names.append(DEFAULT_ENGINE)
        for row in self.engine_rows:
            if row.engine not in names and math.isfinite(row.tightness) \
                    and row.tightness >= threshold:
                names.append(row.engine)
        return tuple(names)

    @property
    def max_tightness(self) -> float:
        """Largest finite worst/bound ratio of the cell; ``nan`` if none."""
        ratios = [row.tightness for row in self.bound_rows
                  if math.isfinite(row.tightness)]
        return max(ratios) if ratios else float("nan")

    @property
    def holds(self) -> bool:
        """True when every invariant held for this cell."""
        return not self.violations


@dataclass
class FuzzResult:
    """The combined outcome of one fuzz campaign."""

    outcomes: list[FuzzOutcome] = field(default_factory=list)
    #: Cells at or above this tightness ratio count as *interesting*.
    tightness_threshold: float = DEFAULT_TIGHTNESS_THRESHOLD
    elapsed: float = 0.0
    #: What the fault-tolerant executor observed (retries, recoveries,
    #: structured failures); ``None`` only for hand-built results.
    exec_report: ExecutionReport | None = None

    ROW_HEADERS = ("scenario", "configuration", "policy", "class",
                   "bound", "worst sim", "tightness", "ok")

    @property
    def failures(self) -> list:
        """Cells that exhausted their retries (empty when all ran)."""
        return [] if self.exec_report is None else self.exec_report.failures

    @property
    def cells(self) -> int:
        """Number of fuzzed cells."""
        return len(self.outcomes)

    @property
    def resumed(self) -> int:
        """Number of cells served from the result store."""
        return sum(1 for outcome in self.outcomes if outcome.resumed)

    @property
    def events_processed(self) -> int:
        """Total simulation events across every cell."""
        return sum(outcome.events_processed for outcome in self.outcomes)

    @property
    def violations(self) -> list[tuple[FuzzOutcome, str]]:
        """Every invariant violation, paired with its cell outcome."""
        return [(outcome, message) for outcome in self.outcomes
                for message in outcome.violations]

    @property
    def violation_count(self) -> int:
        """Number of invariant violations across the campaign."""
        return len(self.violations)

    @property
    def all_invariants_hold(self) -> bool:
        """True when at least one cell ran and no invariant was violated."""
        return bool(self.outcomes) and all(outcome.holds
                                           for outcome in self.outcomes)

    @property
    def max_tightness(self) -> float:
        """Largest finite worst/bound ratio of the campaign.

        Returns the documented ``nan`` sentinel when no cell produced a
        finite ratio (e.g. every generated scenario was overloaded).
        """
        ratios = [outcome.max_tightness for outcome in self.outcomes
                  if math.isfinite(outcome.max_tightness)]
        return max(ratios) if ratios else float("nan")

    def interesting(self) -> list[FuzzOutcome]:
        """Violating or near-tight cells, most interesting first.

        Violations come first (generator order); near-tight cells follow by
        decreasing tightness, scenario name breaking ties — a deterministic
        order the corpus writer relies on.
        """
        violating = [outcome for outcome in self.outcomes
                     if not outcome.holds]
        near_tight = sorted(
            (outcome for outcome in self.outcomes
             if outcome.holds
             and math.isfinite(outcome.max_tightness)
             and outcome.max_tightness >= self.tightness_threshold),
            key=lambda outcome: (-outcome.max_tightness,
                                 outcome.cell.scenario.name))
        return violating + near_tight

    def tightest_rows(self, limit: int = 10
                      ) -> list[tuple[FuzzOutcome, FuzzBoundRow]]:
        """The ``limit`` tightest (cell, row) pairs, deterministic order."""
        pairs = [(outcome, row) for outcome in self.outcomes
                 for row in outcome.bound_rows
                 if math.isfinite(row.tightness)]
        pairs.sort(key=lambda pair: (-pair[1].tightness,
                                     pair[0].cell.scenario.name,
                                     pair[1].policy, pair[1].priority))
        return pairs[:limit]

    def row_cells(self, limit: int = 10) -> list[tuple]:
        """One formatted line per tightest row."""
        return [(outcome.cell.scenario.name,
                 outcome.cell.scenario.describe(),
                 _POLICY_LABELS[row.policy], row.priority.label,
                 format_ms(row.analytic_bound),
                 format_ms(row.worst_simulated),
                 f"{row.tightness:.3f}", yes_no(row.bound_holds))
                for outcome, row in self.tightest_rows(limit)]

    def to_table(self, limit: int = 10) -> str:
        """The tightest rows as an aligned ASCII table."""
        return render_table(self.ROW_HEADERS, self.row_cells(limit),
                            title="Tightest fuzzed cells")

    def to_markdown(self, limit: int = 10) -> str:
        """The tightest rows in GitHub-flavoured markdown."""
        return render_markdown_table(self.ROW_HEADERS, self.row_cells(limit),
                                     title="Tightest fuzzed cells")

    def write_csv(self, path: str | Path) -> None:
        """Dump the raw (unformatted) bound rows of every cell to ``path``.

        The rows depend only on the generator seed and the cell specs, so
        two runs of the same campaign write byte-identical files (wall
        -clock quantities are deliberately excluded).
        """
        stable_by_key = {
            (outcome.cell.index, row.policy, row.priority): row.stable
            for outcome in self.outcomes for row in outcome.campaign_rows}
        write_csv(path,
                  ["index", "scenario", "stations", "replication",
                   "size_factor", "topology", "capacity_bps", "policy",
                   "priority", "bound_s", "worst_simulated_s", "samples",
                   "tightness", "bound_holds", "stable", "violations"],
                  [(outcome.cell.index, outcome.cell.scenario.name,
                    outcome.cell.scenario.workload.station_count,
                    outcome.cell.scenario.workload.replication,
                    repr(outcome.cell.scenario.workload.size_factor),
                    outcome.cell.scenario.topology.kind,
                    repr(outcome.cell.scenario.capacity),
                    row.policy, row.priority.name,
                    repr(row.analytic_bound), repr(row.worst_simulated),
                    row.samples, repr(row.tightness), row.bound_holds,
                    stable_by_key.get(
                        (outcome.cell.index, row.policy, row.priority), ""),
                    len(outcome.violations))
                   for outcome in self.outcomes
                   for row in outcome.bound_rows])


class FuzzCampaign:
    """Generate ``count`` scenarios and check every invariant on each.

    Parameters
    ----------
    count:
        Number of scenarios to draw from the generator stream.
    seed:
        Master seed of the :class:`ScenarioGenerator` — the same
        ``(seed, count)`` pair always fuzzes the identical cells.
    config:
        Generator choice lists (defaults to :class:`GeneratorConfig`).
    sim_seed / duration:
        Simulation seed and horizon shared by every cell.
    jobs:
        Worker processes to spread the cells over (default 1, in-process);
        results are identical for any value.
    store / resume:
        Result-store handle and reuse flag, exactly like
        :class:`~repro.simulation.campaign.SimulationCampaign`: cells are
        always written, and only read back with ``resume=True``, so an
        interrupted ``repro fuzz`` picks up where it stopped with
        byte-identical results.
    tightness_threshold:
        Cells whose worst/bound ratio reaches this value are flagged
        *interesting* (corpus candidates) even when every invariant holds.
    engines:
        Bound engines to validate against the simulated floor (any
        :func:`repro.analysis.engines.resolve_engines` selection).  The
        default validates only the historical ``calculus`` floor; every
        additional engine contributes :class:`FuzzEngineRow` rows and an
        ``engine-soundness`` invariant per (policy, class).
    """

    def __init__(self, *, count: int, seed: int = 0,
                 config: GeneratorConfig | None = None,
                 sim_seed: int = DEFAULT_SIM_SEED,
                 duration: float = DEFAULT_DURATION,
                 jobs: int = 1,
                 store: ResultStore | None = None,
                 resume: bool = False,
                 tightness_threshold: float = DEFAULT_TIGHTNESS_THRESHOLD,
                 exec_policy: ExecPolicy | None = None,
                 faults: str | None = None,
                 engines: "str | Sequence[str] | None" = None) -> None:
        if count < 1:
            raise ConfigurationError(
                f"count must be at least 1, got {count!r}")
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration!r}")
        if jobs < 1:
            raise ConfigurationError(
                f"jobs must be at least 1, got {jobs!r}")
        if not 0 < tightness_threshold:
            raise ConfigurationError(
                f"tightness threshold must be positive, "
                f"got {tightness_threshold!r}")
        self.generator = ScenarioGenerator(seed, config)
        self.count = int(count)
        self.sim_seed = int(sim_seed)
        self.duration = float(duration)
        self.jobs = int(jobs)
        self.store = store
        self.resume = bool(resume)
        self.tightness_threshold = float(tightness_threshold)
        self.exec_policy = exec_policy
        self.faults = faults
        self.engines = resolve_engines(engines)

    @property
    def seed(self) -> int:
        """Master seed of the generator stream."""
        return self.generator.seed

    def cells(self) -> list[FuzzCell]:
        """The campaign's cells, in generator-stream order."""
        return [FuzzCell(index=index,
                         scenario=self.generator.scenario(index),
                         sim_seed=self.sim_seed,
                         duration=self.duration)
                for index in range(self.count)]

    def run(self) -> FuzzResult:
        """Fuzz every cell and collect the invariant verdicts.

        Cells that exhaust their retries become structured
        :class:`~repro.exec.CellFailure` records on
        ``result.exec_report`` instead of killing the campaign; re-run
        with ``--resume`` to fill the holes from the store.
        """
        started = time.perf_counter()
        cells = self.cells()
        store_root = None if self.store is None else str(self.store.root)
        executor = ParallelExecutor(jobs=self.jobs,
                                    policy=self.exec_policy,
                                    fault_spec=self.faults, label="cell")
        report = executor.map(
            _evaluate_cell, cells,
            initializer=_init_worker,
            initargs=(store_root, self.resume, self.engines),
            serial_setup=lambda: _init_worker(store_root, self.resume,
                                              self.engines,
                                              store=self.store),
            labels=[cell.scenario.name for cell in cells])
        result = FuzzResult(outcomes=report.ordered_results(),
                            tightness_threshold=self.tightness_threshold)
        result.exec_report = report
        result.elapsed = time.perf_counter() - started
        return result


def evaluate_scenario(scenario: Scenario, *,
                      duration: float = DEFAULT_DURATION,
                      sim_seed: int = DEFAULT_SIM_SEED,
                      engines: "str | Sequence[str] | None" = None
                      ) -> FuzzOutcome:
    """Evaluate one scenario in-process, store-free.

    This is the entry point the shrinker and the corpus replay tests use:
    no result store is consulted, so a replay exercises the live code and
    nothing else.  With the default ``engines`` the outcome is
    byte-identical to the pre-engine harness; additional engines add
    :class:`FuzzEngineRow` rows and their soundness verdicts.
    """
    return _compute_cell(FuzzCell(index=0, scenario=scenario,
                                  sim_seed=int(sim_seed),
                                  duration=float(duration)),
                         engines=resolve_engines(engines))


# ---------------------------------------------------------------------------
# Per-cell evaluation (runs inside worker processes; jobs=1 runs in-process)
# ---------------------------------------------------------------------------

#: Per-process result store handle (``None`` disables persistence).
_WORKER_STORE: ResultStore | None = None
#: Whether stored cells may be reused (the ``--resume`` mode).
_WORKER_RESUME: bool = False
#: Per-process memoized campaign runner, shared across the worker's cells.
_MEMO_RUNNER: CampaignRunner | None = None
#: Engines validated per cell (the campaign's resolved ``--engine``).
_WORKER_ENGINES: tuple[str, ...] = DEFAULT_ENGINES


def _init_worker(store_root: str | None = None, resume: bool = False,
                 engines: tuple[str, ...] = DEFAULT_ENGINES, *,
                 store: ResultStore | None = None) -> None:
    """Process-pool initializer: stash the store handle, reset the cache."""
    global _WORKER_STORE, _WORKER_RESUME, _MEMO_RUNNER, _WORKER_ENGINES
    if store is None and store_root is not None:
        store = ResultStore(store_root)
    _WORKER_STORE = store
    _WORKER_RESUME = bool(resume)
    _MEMO_RUNNER = None
    _WORKER_ENGINES = tuple(engines)


def _memoized_runner() -> CampaignRunner:
    """The worker's shared memoized campaign runner (built lazily)."""
    global _MEMO_RUNNER
    if _MEMO_RUNNER is None:
        _MEMO_RUNNER = CampaignRunner(memoize=True)
    return _MEMO_RUNNER


def _evaluate_cell(cell: FuzzCell) -> FuzzOutcome:
    """One cell via the store (or directly when the store is disabled)."""
    engines = _WORKER_ENGINES
    if _WORKER_STORE is None:
        return _compute_cell(cell, engines=engines)
    # The bare cell stays the store key of default runs (pre-engine cells
    # remain addressable); multi-engine runs get their own identity.
    key = cell if engines == DEFAULT_ENGINES else \
        {"cell": cell, "engines": list(engines)}
    outcome, _ = _WORKER_STORE.cached(
        "fuzz-cell", key,
        lambda: _compute_cell(cell, engines=engines),
        subsystem="fuzz",
        encode=_outcome_to_payload,
        decode=lambda payload: _outcome_from_payload(cell, payload),
        reuse=_WORKER_RESUME)
    return outcome


def _star_for_stations(stations: Sequence[str], capacity: float,
                       technology_delay: float) -> Network:
    """A star over arbitrary station names (replicas use ``-rk`` suffixes,
    which the canonical builders do not know about)."""
    return star_for_stations(stations, capacity, technology_delay)


def _measure(cell: FuzzCell, runner: CampaignRunner
             ) -> tuple[tuple[CampaignRow, ...], tuple[FuzzBoundRow, ...],
                        tuple[FuzzPortRow, ...], int, int]:
    """One full evaluation of a cell through the given campaign runner.

    Returns ``(campaign_rows, bound_rows, port_rows, events_processed,
    frames_dropped)``; everything is deterministic given the cell spec.
    Legacy cells simulate on the shared star and compare against the
    single-point wire-level bound; ``"graph"`` cells simulate on their
    routed topology and compare against the per-path and per-port bounds
    of :class:`GraphPathAnalysis`.
    """
    scenario = cell.scenario
    campaign_rows = tuple(runner.run([scenario]).results[0].rows)

    message_set = scenario.workload.build()
    messages = message_set.messages  # materialises replicas if any
    graph_spec = None
    if scenario.topology.kind == "graph":
        graph_spec = scenario.topology.build_graph(
            scenario.workload.total_stations, scenario.capacity,
            scenario.technology_delay)
        network = graph_spec.to_network()
    else:
        network = _star_for_stations(message_set.stations(),
                                     scenario.capacity,
                                     scenario.technology_delay)
    wire_messages = wire_level_messages(message_set)

    bound_rows: list[FuzzBoundRow] = []
    port_rows: list[FuzzPortRow] = []
    events = dropped = 0
    for policy in scenario.policies:
        port_bounds: dict[tuple[str, str], float] = {}
        if graph_spec is not None:
            outcome = GraphPathAnalysis(graph_spec, policy=policy).analyze(
                wire_messages)
            bounds = {cls: bound.delay
                      for cls, bound in outcome.worst_per_class().items()}
            port_bounds = {(port.node, port.toward): port.backlog_bits
                           for port in outcome.ports}
        else:
            try:
                analytic = EndToEndAnalysis(network, policy=policy).analyze(
                    wire_messages)
                bounds = {
                    cls: bound.total_delay
                    for cls, bound in analytic.worst_per_class().items()}
            except UnstableSystemError:
                # Overloaded on-wire aggregate: every bound is infinite and
                # the soundness invariant holds trivially; the simulation
                # still runs so the cell exercises the saturated data path.
                bounds = {}
        simulator = EthernetNetworkSimulator(
            network, messages, policy=policy,
            scenario="synchronized", seed=cell.sim_seed)
        results = simulator.run(duration=cell.duration)
        events += simulator.simulator.events_processed
        dropped += results.frames_dropped
        for cls in sorted(PriorityClass):
            summary = results.class_summary(cls)
            if summary.count == 0:
                continue
            bound_rows.append(FuzzBoundRow(
                policy=policy,
                priority=cls,
                analytic_bound=bounds.get(cls, math.inf),
                worst_simulated=summary.maximum,
                mean_simulated=summary.mean,
                samples=summary.count))
        for (node, toward), bound_bits in sorted(port_bounds.items()):
            observed = results.max_queue_bits.get(f"{node}->{toward}", 0.0)
            port_rows.append(FuzzPortRow(
                policy=policy, node=node, toward=toward,
                backlog_bound=bound_bits, observed_bits=observed))
    return campaign_rows, tuple(bound_rows), tuple(port_rows), events, dropped


def _engine_rows(cell: FuzzCell, bound_rows: Iterable[FuzzBoundRow],
                 engines: tuple[str, ...]) -> tuple[FuzzEngineRow, ...]:
    """Bounds of every non-default engine against the cell's sim floor.

    The ``calculus`` engine *is* the floor of ``bound_rows`` (verified
    byte-identical by the cross-validation suite), so only the other
    requested engines are evaluated here — on exactly the network the
    simulator ran.
    """
    extra = [name for name in engines if name != DEFAULT_ENGINE]
    if not extra:
        return ()
    scenario = cell.scenario
    message_set = scenario.workload.build()
    wire_messages = wire_level_messages(message_set)
    graph_spec = None
    if scenario.topology.kind == "graph":
        graph_spec = scenario.topology.build_graph(
            scenario.workload.total_stations, scenario.capacity,
            scenario.technology_delay)
        network = graph_spec.to_network()
    else:
        network = star_for_stations(message_set.stations(),
                                    scenario.capacity,
                                    scenario.technology_delay)
    rows: list[FuzzEngineRow] = []
    floor = list(bound_rows)
    for name in extra:
        engine = get_engine(name)
        for policy in scenario.policies:
            bounds = engine.network_class_bounds(
                wire_messages, policy, network=network,
                graph_spec=graph_spec)
            for row in floor:
                if row.policy != policy:
                    continue
                rows.append(FuzzEngineRow(
                    engine=name,
                    policy=policy,
                    priority=row.priority,
                    bound=bounds.get(row.priority, math.inf),
                    worst_simulated=row.worst_simulated,
                    samples=row.samples))
    return tuple(rows)


def _invariant_violations(campaign_rows: Iterable[CampaignRow],
                          bound_rows: Iterable[FuzzBoundRow],
                          port_rows: Iterable[FuzzPortRow] = (),
                          engine_rows: Iterable[FuzzEngineRow] = ()
                          ) -> list[str]:
    """The static invariant violations of one measurement (usually none)."""
    violations: list[str] = []
    for row in campaign_rows:
        finite = math.isfinite(row.bound)
        if row.stable != finite:
            violations.append(
                f"stability: {row.policy}/{row.priority.name} "
                f"stable={row.stable} but bound={row.bound!r}")
        if row.stable != math.isfinite(row.backlog_bits):
            violations.append(
                f"stability: {row.policy}/{row.priority.name} "
                f"stable={row.stable} but backlog={row.backlog_bits!r}")
        if row.stable and row.bound < 0:
            violations.append(
                f"stability: {row.policy}/{row.priority.name} "
                f"negative bound {row.bound!r}")
    for row in bound_rows:
        if not row.bound_holds:
            violations.append(
                f"soundness: {row.policy}/{row.priority.name} simulated "
                f"worst {row.worst_simulated!r} exceeds analytic bound "
                f"{row.analytic_bound!r}")
    for port in port_rows:
        if not port.bound_holds:
            violations.append(
                f"backlog: {port.policy} port {port.node}->{port.toward} "
                f"observed {port.observed_bits!r} bits exceeds bound "
                f"{port.backlog_bound!r}")
    for row in engine_rows:
        if not row.bound_holds:
            violations.append(
                f"engine-soundness: {row.engine} {row.policy}/"
                f"{row.priority.name} simulated worst "
                f"{row.worst_simulated!r} exceeds engine bound "
                f"{row.bound!r}")
    return violations


def _compute_cell(cell: FuzzCell,
                  engines: tuple[str, ...] = DEFAULT_ENGINES) -> FuzzOutcome:
    """Evaluate one cell twice and check every invariant."""
    started = time.perf_counter()
    first = _measure(cell, _memoized_runner())
    # Second evaluation from scratch: a fresh naive runner (no shared
    # cache, no arithmetic replication shortcuts) and a fresh simulator.
    # Byte-equality of the two measurements checks determinism *and* the
    # memoized-equals-naive contract in one comparison.
    second = _measure(cell, CampaignRunner(memoize=False))
    engine_rows = _engine_rows(cell, first[1], engines)
    violations = _invariant_violations(first[0], first[1], first[2],
                                       engine_rows)
    first_json = canonical_json(_measurement_payload(*first))
    second_json = canonical_json(_measurement_payload(*second))
    if first_json != second_json:
        violations.append(
            "determinism: memoized and fresh naive evaluations disagree "
            "(measurement payloads are not byte-identical)")
    campaign_rows, bound_rows, port_rows, events, dropped = first
    outcome = FuzzOutcome(
        cell=cell,
        campaign_rows=campaign_rows,
        bound_rows=bound_rows,
        port_rows=port_rows,
        engine_rows=engine_rows,
        violations=tuple(violations),
        events_processed=events,
        frames_dropped=dropped,
        elapsed=time.perf_counter() - started)
    payload = _outcome_to_payload(outcome)
    round_tripped = _outcome_to_payload(_outcome_from_payload(cell, payload))
    if canonical_json(round_tripped) != canonical_json(payload):
        outcome = FuzzOutcome(
            cell=cell,
            campaign_rows=campaign_rows,
            bound_rows=bound_rows,
            port_rows=port_rows,
            engine_rows=engine_rows,
            violations=tuple(violations) + (
                "round-trip: store payload is not identical after "
                "encode/decode",),
            events_processed=events,
            frames_dropped=dropped,
            elapsed=outcome.elapsed)
    return outcome


# ---------------------------------------------------------------------------
# Result-store (de)serialisation
# ---------------------------------------------------------------------------

def _campaign_row_payload(row: CampaignRow) -> dict:
    return {"scenario": row.scenario,
            "policy": row.policy,
            "priority": row.priority.name,
            "message_count": row.message_count,
            "deadline": row.deadline,
            "bound": row.bound,
            "backlog_bits": row.backlog_bits,
            "stable": row.stable,
            "hops": row.hops}


def _campaign_row_from_payload(payload: dict) -> CampaignRow:
    return CampaignRow(scenario=payload["scenario"],
                       policy=payload["policy"],
                       priority=PriorityClass[payload["priority"]],
                       message_count=int(payload["message_count"]),
                       deadline=payload["deadline"],
                       bound=float(payload["bound"]),
                       backlog_bits=float(payload["backlog_bits"]),
                       stable=bool(payload["stable"]),
                       hops=int(payload["hops"]))


def _bound_row_payload(row: FuzzBoundRow) -> dict:
    return {"policy": row.policy,
            "priority": row.priority.name,
            "bound": row.analytic_bound,
            "worst": row.worst_simulated,
            "mean": row.mean_simulated,
            "samples": row.samples}


def _bound_row_from_payload(payload: dict) -> FuzzBoundRow:
    return FuzzBoundRow(policy=payload["policy"],
                        priority=PriorityClass[payload["priority"]],
                        analytic_bound=float(payload["bound"]),
                        worst_simulated=float(payload["worst"]),
                        mean_simulated=float(payload["mean"]),
                        samples=int(payload["samples"]))


def _port_row_payload(row: FuzzPortRow) -> dict:
    return {"policy": row.policy,
            "node": row.node,
            "toward": row.toward,
            "bound_bits": row.backlog_bound,
            "observed_bits": row.observed_bits}


def _port_row_from_payload(payload: dict) -> FuzzPortRow:
    return FuzzPortRow(policy=payload["policy"],
                       node=payload["node"],
                       toward=payload["toward"],
                       backlog_bound=float(payload["bound_bits"]),
                       observed_bits=float(payload["observed_bits"]))


def _engine_row_payload(row: FuzzEngineRow) -> dict:
    return {"engine": row.engine,
            "policy": row.policy,
            "priority": row.priority.name,
            "bound": row.bound,
            "worst": row.worst_simulated,
            "samples": row.samples}


def _engine_row_from_payload(payload: dict) -> FuzzEngineRow:
    return FuzzEngineRow(engine=payload["engine"],
                         policy=payload["policy"],
                         priority=PriorityClass[payload["priority"]],
                         bound=float(payload["bound"]),
                         worst_simulated=float(payload["worst"]),
                         samples=int(payload["samples"]))


def _measurement_payload(campaign_rows: Iterable[CampaignRow],
                         bound_rows: Iterable[FuzzBoundRow],
                         port_rows: Iterable[FuzzPortRow],
                         events: int, dropped: int,
                         engine_rows: Iterable[FuzzEngineRow] = ()) -> dict:
    """The deterministic part of a cell's outcome as a JSON payload.

    This is both the store payload's ``measurement`` entry and the object
    whose canonical JSON the byte-determinism invariant compares.  The
    ``engines`` key appears only when non-default engines ran, keeping
    default payloads (and the committed corpus) byte-identical to the
    pre-engine format.
    """
    payload = {"campaign": [_campaign_row_payload(row)
                            for row in campaign_rows],
               "rows": [_bound_row_payload(row) for row in bound_rows],
               "ports": [_port_row_payload(row) for row in port_rows],
               "events": int(events),
               "frames_dropped": int(dropped)}
    engine_rows = list(engine_rows)
    if engine_rows:
        payload["engines"] = [_engine_row_payload(row)
                              for row in engine_rows]
    return payload


def _outcome_to_payload(outcome: FuzzOutcome) -> dict:
    """One cell outcome as a JSON payload for the result store."""
    return {"measurement": _measurement_payload(
                outcome.campaign_rows, outcome.bound_rows,
                outcome.port_rows,
                outcome.events_processed, outcome.frames_dropped,
                outcome.engine_rows),
            "violations": list(outcome.violations),
            "elapsed": outcome.elapsed}


def _outcome_from_payload(cell: FuzzCell, payload: dict) -> FuzzOutcome:
    """Rebuild a stored cell outcome (marked ``resumed``)."""
    measurement = payload["measurement"]
    return FuzzOutcome(
        cell=cell,
        campaign_rows=tuple(_campaign_row_from_payload(row)
                            for row in measurement["campaign"]),
        bound_rows=tuple(_bound_row_from_payload(row)
                         for row in measurement["rows"]),
        port_rows=tuple(_port_row_from_payload(row)
                        for row in measurement.get("ports", [])),
        engine_rows=tuple(_engine_row_from_payload(row)
                          for row in measurement.get("engines", [])),
        violations=tuple(payload["violations"]),
        events_processed=int(measurement["events"]),
        frames_dropped=int(measurement["frames_dropped"]),
        elapsed=float(payload["elapsed"]),
        resumed=True)
