"""Seeded random generation of campaign scenarios.

:class:`ScenarioGenerator` turns a master seed into an unbounded stream of
valid :class:`~repro.campaigns.scenario.Scenario` specs: random station
counts, workload seeds, burst size factors, replication levels, topology
kinds, link capacities, relaying delays and policy mixes.  Two properties
make the stream usable as a fuzzing front end:

* **bit-identical determinism** — scenario ``i`` of seed ``s`` is derived
  from an independent ``random.Random`` sub-stream seeded with
  ``SHA-256("repro-fuzz:s:i")``, so the same ``(seed, index)`` pair yields
  the identical spec (same fields, same fingerprint) in any process on any
  machine, regardless of ``PYTHONHASHSEED`` or generation order,
* **validity by construction** — every field is drawn from a
  :class:`GeneratorConfig` choice list that the scenario/workload/topology
  validators accept, so generated specs never fail ``__post_init__``.

The choice lists deliberately include overload configurations (low
capacity, large size factors, heavy replication): the fuzz campaign must
exercise the unstable/unbounded paths of the analysis, not only the
feasible corner the paper's case study lives in.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace

from repro import units
from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.errors import ConfigurationError

__all__ = ["GeneratorConfig", "ScenarioGenerator", "derive_substream_seed"]


def derive_substream_seed(seed: int, index: int) -> int:
    """The sub-stream seed of scenario ``index`` under master ``seed``.

    A SHA-256 digest (not Python's ``hash``) keys the sub-stream, so the
    derivation is stable across processes, platforms and interpreter
    versions — the property the cross-process determinism tests pin down.
    """
    digest = hashlib.sha256(f"repro-fuzz:{seed}:{index}".encode("ascii"))
    return int.from_bytes(digest.digest()[:8], "big")


@dataclass(frozen=True)
class GeneratorConfig:
    """The choice lists one random scenario is drawn from.

    Repeating an entry weights it: e.g. ``replications`` favours the
    un-replicated workload but still produces the scalability ladder's
    heavy populations.  Every float is a short dyadic/decimal literal so
    the drawn values survive JSON round-trips byte-identically.
    """

    #: Base station counts of the synthetic case study (≥ 4 required).
    station_counts: tuple[int, ...] = (4, 5, 6, 8, 10, 12, 16, 20)
    #: Workload-generator seeds to draw from.
    workload_seeds: tuple[int, ...] = tuple(range(32))
    #: Message-size (token-bucket depth) factors.
    size_factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.0, 1.25, 1.5,
                                       2.0, 3.0)
    #: Station-replication factors (weighted toward 1).
    replications: tuple[int, ...] = (1, 1, 1, 1, 2, 2, 3)
    #: Topology kinds (weighted toward the paper's star).  Adding
    #: ``"graph"`` draws multi-hop topologies from the graph choice lists
    #: below; the default excludes it so legacy streams stay byte-stable.
    topology_kinds: tuple[str, ...] = ("single-switch-star",
                                       "single-switch-star",
                                       "dual-switch", "tree")
    #: Leaf-switch counts for ``tree`` topologies.
    leaf_counts: tuple[int, ...] = (2, 3, 4)
    #: Multi-hop families drawn for ``"graph"`` topologies.
    graph_families: tuple[str, ...] = ("diamond", "ring", "star", "random")
    #: Switch counts of the ring/random families (ring needs >= 3).
    graph_switch_counts: tuple[int, ...] = (3, 4, 5, 6)
    #: Seeds of the random family's link generator.
    graph_seeds: tuple[int, ...] = tuple(range(16))
    #: Redundant links added to the random family's spanning tree.
    graph_extra_links: tuple[int, ...] = (0, 1, 2, 3)
    #: Link capacities in Mbps; 5 Mbps overloads many workloads on
    #: purpose (the unstable/unbounded invariant paths must be fuzzed).
    capacities_mbps: tuple[float, ...] = (5.0, 10.0, 10.0, 10.0, 100.0)
    #: Switch relaying-delay bounds in microseconds.
    technology_delays_us: tuple[float, ...] = (0.0, 16.0, 16.0, 50.0)
    #: Policy mixes (weighted toward evaluating both policies).
    policy_mixes: tuple[tuple[str, ...], ...] = (
        ("fcfs", "strict-priority"),
        ("fcfs", "strict-priority"),
        ("fcfs",),
        ("strict-priority",))

    def __post_init__(self) -> None:
        for name in ("station_counts", "workload_seeds", "size_factors",
                     "replications", "topology_kinds", "leaf_counts",
                     "graph_families", "graph_switch_counts", "graph_seeds",
                     "graph_extra_links", "capacities_mbps",
                     "technology_delays_us", "policy_mixes"):
            if not getattr(self, name):
                raise ConfigurationError(
                    f"generator config needs at least one choice "
                    f"for {name!r}")

    @classmethod
    def multi_hop(cls) -> GeneratorConfig:
        """A config whose every draw is a multi-hop ``"graph"`` topology.

        Replication is pinned to 1 because graph scenarios route every
        station individually (see :class:`~repro.campaigns.scenario.
        Scenario`); everything else keeps the default choice lists.
        """
        return cls(topology_kinds=("graph",), replications=(1,))


class ScenarioGenerator:
    """Derive deterministic random scenarios from a master seed.

    Parameters
    ----------
    seed:
        Master seed of the stream (non-negative).
    config:
        The choice lists; defaults to :class:`GeneratorConfig`.
    """

    def __init__(self, seed: int = 0,
                 config: GeneratorConfig | None = None) -> None:
        if seed < 0:
            raise ConfigurationError(
                f"generator seed must be non-negative, got {seed!r}")
        self.seed = int(seed)
        self.config = config if config is not None else GeneratorConfig()

    def scenario(self, index: int) -> Scenario:
        """The ``index``-th scenario of the stream (index ≥ 0)."""
        if index < 0:
            raise ConfigurationError(
                f"scenario index must be non-negative, got {index!r}")
        rng = random.Random(derive_substream_seed(self.seed, index))
        config = self.config
        workload = WorkloadSpec(
            station_count=rng.choice(config.station_counts),
            seed=rng.choice(config.workload_seeds),
            size_factor=rng.choice(config.size_factors),
            replication=rng.choice(config.replications))
        kind = rng.choice(config.topology_kinds)
        if kind == "graph":
            # Graph draws replace the tree's leaf-count draw; the graph
            # choice lists are consumed only on this branch, so streams
            # over graph-free kind lists are unchanged byte for byte.
            topology = TopologySpec(
                kind="graph",
                graph_family=rng.choice(config.graph_families),
                graph_switches=rng.choice(config.graph_switch_counts),
                graph_seed=rng.choice(config.graph_seeds),
                graph_extra_links=rng.choice(config.graph_extra_links))
            if workload.replication != 1:
                # Graph scenarios route each station individually.
                workload = replace(workload, replication=1)
        else:
            topology = TopologySpec(
                kind=kind,
                leaf_count=rng.choice(config.leaf_counts))
        capacity_mbps = rng.choice(config.capacities_mbps)
        technology_delay_us = rng.choice(config.technology_delays_us)
        policies = rng.choice(config.policy_mixes)
        scenario = Scenario(
            name=f"fuzz-{self.seed}-{index:05d}",
            description=(f"generated scenario {index} of seed {self.seed}"),
            workload=workload,
            topology=topology,
            capacity=units.mbps(capacity_mbps),
            technology_delay=units.us(technology_delay_us),
            policies=policies,
            tags=("fuzz", f"fuzz-seed-{self.seed}"))
        return scenario

    def generate(self, count: int) -> list[Scenario]:
        """The first ``count`` scenarios of the stream."""
        if count < 1:
            raise ConfigurationError(
                f"count must be at least 1, got {count!r}")
        return [self.scenario(index) for index in range(count)]
