"""Greedy scenario shrinking for corpus entries.

When the fuzz campaign flags a cell — an invariant violation, or a
near-tight bound worth pinning as a regression test — the raw generated
scenario is rarely the smallest one exhibiting the behaviour.
:func:`minimize_scenario` applies the classic greedy shrink loop: propose
structurally simpler variants (drop replication, reset the size factor,
halve the station count, collapse the topology to the paper's star, keep a
single policy), re-evaluate each through the same
:func:`~repro.fuzz.campaign.evaluate_scenario` path, and accept a variant
only while the caller's predicate still holds.  The loop is deterministic
(candidates are tried in a fixed order) and bounded, so the corpus writer
always produces the same minimized spec for the same input scenario.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from repro.campaigns.scenario import Scenario, TopologySpec
from repro.fuzz.campaign import (
    DEFAULT_DURATION,
    DEFAULT_SIM_SEED,
    FuzzOutcome,
    evaluate_scenario,
)

__all__ = ["minimize_scenario"]

#: Hard cap on accepted shrink steps (each step strictly simplifies one
#: field, so real runs terminate long before the cap).
_MAX_STEPS = 32


def _simpler_variants(scenario: Scenario) -> Iterator[Scenario]:
    """Structurally simpler variants of ``scenario``, most drastic first."""
    workload = scenario.workload
    if workload.replication > 1:
        yield dataclasses.replace(
            scenario, workload=dataclasses.replace(workload, replication=1))
    if workload.size_factor != 1.0:
        yield dataclasses.replace(
            scenario, workload=dataclasses.replace(workload,
                                                   size_factor=1.0))
    if scenario.topology.kind != "single-switch-star":
        yield dataclasses.replace(scenario, topology=TopologySpec())
    topology = scenario.topology
    if topology.kind == "graph":
        # Graph-specific shrinks, tried only when the full collapse to the
        # star fails (i.e. the behaviour genuinely needs the graph).
        if topology.graph_family != "diamond":
            yield dataclasses.replace(
                scenario,
                topology=dataclasses.replace(topology,
                                             graph_family="diamond"))
        if topology.graph_extra_links > 0:
            yield dataclasses.replace(
                scenario,
                topology=dataclasses.replace(topology, graph_extra_links=0))
        if topology.graph_switches > 3:
            yield dataclasses.replace(
                scenario,
                topology=dataclasses.replace(topology, graph_switches=3))
        if topology.graph_seed != 0:
            yield dataclasses.replace(
                scenario,
                topology=dataclasses.replace(topology, graph_seed=0))
    if workload.station_count > 4:
        halved = max(4, workload.station_count // 2)
        yield dataclasses.replace(
            scenario,
            workload=dataclasses.replace(workload, station_count=halved))
    if len(scenario.policies) > 1:
        for policy in scenario.policies:
            yield dataclasses.replace(scenario, policies=(policy,))


def minimize_scenario(scenario: Scenario,
                      predicate: Callable[[FuzzOutcome], bool],
                      *, duration: float = DEFAULT_DURATION,
                      sim_seed: int = DEFAULT_SIM_SEED
                      ) -> tuple[Scenario, FuzzOutcome]:
    """Greedily shrink ``scenario`` while ``predicate(outcome)`` holds.

    Returns the smallest variant found together with its evaluation.  The
    input scenario itself must satisfy the predicate — the function
    evaluates it first and raises ``ValueError`` otherwise, which protects
    the corpus from entries that do not reproduce their reason.
    """
    outcome = evaluate_scenario(scenario, duration=duration,
                                sim_seed=sim_seed)
    if not predicate(outcome):
        raise ValueError(
            f"scenario {scenario.name!r} does not satisfy the predicate "
            f"being minimized for")
    for _ in range(_MAX_STEPS):
        for variant in _simpler_variants(scenario):
            candidate = evaluate_scenario(variant, duration=duration,
                                          sim_seed=sim_seed)
            if predicate(candidate):
                scenario, outcome = variant, candidate
                break
        else:
            break  # no simpler variant keeps the behaviour: fixpoint
    return scenario, outcome
