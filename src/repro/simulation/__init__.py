"""Discrete-event simulation kernel.

This package is the substrate shared by the switched-Ethernet simulator
(:mod:`repro.ethernet`) and the MIL-STD-1553B bus simulator
(:mod:`repro.milstd1553`).  It provides:

* :class:`~repro.simulation.engine.Simulator` — the event loop: a virtual
  clock, a pending-event heap and deterministic FIFO tie-breaking for events
  scheduled at the same instant,
* :class:`~repro.simulation.events.Event` — a cancellable scheduled callback,
* :mod:`~repro.simulation.statistics` — latency recorders, counters and
  time-weighted statistics used to summarise simulation runs,
* :mod:`~repro.simulation.randomness` — independent, reproducible random
  streams derived from a single experiment seed,
* :mod:`~repro.simulation.trace` — structured event tracing for debugging
  and for exporting per-frame timelines,
* :mod:`~repro.simulation.campaign` — Monte-Carlo simulation campaigns
  (seeds × scenarios × policies × size factors) validating the analytic
  bounds statistically (``repro simulate``).
"""

from repro.simulation.engine import Simulator
from repro.simulation.events import Event, EventQueue
from repro.simulation.randomness import RandomStreams
from repro.simulation.statistics import (
    Counter,
    LatencyRecorder,
    SummaryStatistics,
    TimeWeightedAverage,
)
from repro.simulation.trace import TraceEntry, TraceRecorder

# The campaign layer sits on top of the Ethernet models and the analytic
# bounds, which themselves import the kernel modules above — import it
# lazily (PEP 562) so `repro.core` can import the kernel without pulling
# the whole analysis stack back in (circular otherwise).
_CAMPAIGN_EXPORTS = ("SimulationCell", "CellOutcome", "MonteCarloRow",
                     "MonteCarloResult", "SimulationCampaign")


def __getattr__(name: str):
    """Lazily resolve the campaign-layer exports (PEP 562)."""
    if name in _CAMPAIGN_EXPORTS:
        from repro.simulation import campaign
        return getattr(campaign, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "RandomStreams",
    "Counter",
    "LatencyRecorder",
    "SummaryStatistics",
    "TimeWeightedAverage",
    "TraceEntry",
    "TraceRecorder",
    "SimulationCell",
    "CellOutcome",
    "MonteCarloRow",
    "MonteCarloResult",
    "SimulationCampaign",
]
