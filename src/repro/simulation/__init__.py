"""Discrete-event simulation kernel.

This package is the substrate shared by the switched-Ethernet simulator
(:mod:`repro.ethernet`) and the MIL-STD-1553B bus simulator
(:mod:`repro.milstd1553`).  It provides:

* :class:`~repro.simulation.engine.Simulator` — the event loop: a virtual
  clock, a pending-event heap and deterministic FIFO tie-breaking for events
  scheduled at the same instant,
* :class:`~repro.simulation.events.Event` — a cancellable scheduled callback,
* :mod:`~repro.simulation.statistics` — latency recorders, counters and
  time-weighted statistics used to summarise simulation runs,
* :mod:`~repro.simulation.randomness` — independent, reproducible random
  streams derived from a single experiment seed,
* :mod:`~repro.simulation.trace` — structured event tracing for debugging
  and for exporting per-frame timelines.
"""

from repro.simulation.engine import Simulator
from repro.simulation.events import Event, EventQueue
from repro.simulation.randomness import RandomStreams
from repro.simulation.statistics import (
    Counter,
    LatencyRecorder,
    SummaryStatistics,
    TimeWeightedAverage,
)
from repro.simulation.trace import TraceEntry, TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "RandomStreams",
    "Counter",
    "LatencyRecorder",
    "SummaryStatistics",
    "TimeWeightedAverage",
    "TraceEntry",
    "TraceRecorder",
]
