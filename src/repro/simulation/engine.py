"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the pending-event queue.  Model
components (stations, switches, the 1553B bus controller...) hold a reference
to the simulator and schedule callbacks on it; they never advance time
themselves.

The engine is deliberately minimal and synchronous — no coroutines, no
threads — which keeps runs deterministic and easy to debug.  A simulation of
a few seconds of a 10 Mbps avionics network (tens of thousands of frames)
completes in well under a second of wall-clock time.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SchedulingInPastError
from repro.simulation.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.  Defaults to 0.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "late")
    >>> _ = sim.schedule(0.5, fired.append, "early")
    >>> sim.run()
    >>> fired
    ['early', 'late']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been invoked so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Raises
        ------
        SchedulingInPastError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule an event {abs(delay)} s in the past")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``.

        Raises
        ------
        SchedulingInPastError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule at {time} s, clock is already at "
                f"{self._now} s")
        return self._queue.push(time, callback, args)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.

        Returns ``True`` if an event was processed, ``False`` if the queue
        was empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is then advanced exactly to ``until`` so
            time-weighted statistics can be closed consistently.
        max_events:
            If given, stop after processing this many events (a safety net
            against accidental infinite self-rescheduling).
        """
        self._running = True
        processed = 0
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._running = False
