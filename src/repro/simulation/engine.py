"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the pending-event queue.  Model
components (stations, switches, the 1553B bus controller...) hold a reference
to the simulator and schedule callbacks on it; they never advance time
themselves.

The engine is deliberately minimal and synchronous — no coroutines, no
threads — which keeps runs deterministic and easy to debug.  The
:meth:`Simulator.run` loop is inlined over the raw event heap (no
per-event ``peek``/``pop``/``step``/``fire`` method hops), which together
with the slim ``(time, sequence, event)`` heap entries makes the
event-driven side fast enough for Monte-Carlo campaigns: a few seconds of
a 10 Mbps avionics network (hundreds of thousands of frames) complete in
well under a second of wall-clock time.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SchedulingInPastError
from repro.simulation.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.  Defaults to 0.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "late")
    >>> _ = sim.schedule(0.5, fired.append, "early")
    >>> sim.run()
    >>> fired
    ['early', 'late']
    >>> sim.now
    1.5
    """

    __slots__ = ("_now", "_queue", "_events_processed", "_running")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been invoked so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Raises
        ------
        SchedulingInPastError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule an event {abs(delay)} s in the past")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``.

        Raises
        ------
        SchedulingInPastError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule at {time} s, clock is already at "
                f"{self._now} s")
        return self._queue.push(time, callback, args)

    def post(self, delay: float, callback: Callable[[Any], None],
             arg: Any) -> None:
        """Hot-path :meth:`schedule` for trusted single-argument callbacks.

        No :class:`Event` handle is allocated or returned, so the entry
        cannot be cancelled; the caller guarantees ``delay >= 0``.  Firing
        order is identical to :meth:`schedule` (same sequence counter).
        """
        # Inlined EventQueue.push_fast — one call layer per event matters.
        queue = self._queue
        heappush(queue._heap,
                 (self._now + delay, next(queue._sequence), callback, arg))

    def post_at(self, time: float, callback: Callable[[Any], None],
                arg: Any) -> None:
        """Hot-path :meth:`schedule_at`; the caller guarantees ``time >= now``."""
        queue = self._queue
        heappush(queue._heap,
                 (time, next(queue._sequence), callback, arg))

    def dispatch_immediate(self, callback: Callable[[Any], None],
                           arg: Any) -> None:
        """Process a zero-delay event inline, without a heap round-trip.

        Semantically this is ``schedule(0, callback, arg)`` fused with its
        own firing: the callback runs now, at the current clock, and counts
        as a processed event.  Model code may only use it when the fused
        ordering is provably equivalent to the heap ordering (see the
        zero-propagation delivery fusion in
        :class:`repro.ethernet.link.LinkTransmitter`, pinned down by the
        golden-equivalence tests).
        """
        self._events_processed += 1
        callback(arg)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.

        Returns ``True`` if an event was processed, ``False`` if the queue
        was empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is then advanced exactly to ``until`` so
            time-weighted statistics can be closed consistently.
        max_events:
            If given, stop after processing this many events (a safety net
            against accidental infinite self-rescheduling).
        """
        self._running = True
        processed = 0
        # The loop is deliberately inlined over the raw heap: one C-level
        # heappop per event, no intermediate peek/step/fire calls.  Entries
        # are (time, sequence, event) triples or (time, sequence, callback,
        # arg) fast-path quadruples (see EventQueue).
        heap = self._queue._heap
        pop = heappop
        try:
            if until is None and max_events is None:
                # Run-to-exhaustion fast loop (the common simulation mode):
                # no bound checks, pop immediately, events_processed kept in
                # a local and flushed additively (fused dispatches increment
                # the attribute directly, so += keeps both contributions).
                local_processed = 0
                try:
                    while self._running and heap:
                        head = pop(heap)
                        if len(head) == 4:
                            self._now = head[0]
                            local_processed += 1
                            head[2](head[3])
                            continue
                        event = head[2]
                        if event.cancelled:
                            continue
                        self._now = head[0]
                        local_processed += 1
                        event.callback(*event.args)
                finally:
                    self._events_processed += local_processed
                return
            while self._running and heap:
                head = heap[0]
                if len(head) == 4:
                    time = head[0]
                    if until is not None and time > until:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    pop(heap)
                    self._now = time
                    self._events_processed += 1
                    processed += 1
                    head[2](head[3])
                    continue
                event = head[2]
                if event.cancelled:
                    pop(heap)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                pop(heap)
                self._now = time
                self._events_processed += 1
                processed += 1
                event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._running = False
