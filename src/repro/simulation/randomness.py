"""Reproducible random streams for simulation experiments.

Every experiment in the benchmark harness is seeded, and different model
components (per-station release jitter, sporadic inter-arrival draws, payload
size draws...) must not share a generator, otherwise adding a component would
perturb the draws of every other component and silently change results.

:class:`RandomStreams` derives an independent :class:`numpy.random.Generator`
per named purpose from a single experiment seed, using
:class:`numpy.random.SeedSequence` spawning, so that:

* the same experiment seed always reproduces the same run,
* adding a new named stream never changes the draws of existing streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of named, independent random generators.

    Parameters
    ----------
    seed:
        The experiment master seed.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> jitter = streams.stream("release-jitter")
    >>> sizes = streams.stream("payload-sizes")
    >>> jitter is streams.stream("release-jitter")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed the streams were derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator dedicated to ``name``, creating it if needed.

        The generator for a given ``(seed, name)`` pair is always seeded the
        same way, regardless of how many other streams exist or in which
        order they were requested.
        """
        if name not in self._streams:
            # Derive a child seed deterministically from the name so the
            # stream does not depend on creation order.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32)
            child = np.random.SeedSequence(
                entropy=self._seed, spawn_key=tuple(int(x) for x in digest))
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def names(self) -> list[str]:
        """Names of the streams created so far (sorted)."""
        return sorted(self._streams)
