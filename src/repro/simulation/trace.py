"""Structured event tracing.

A :class:`TraceRecorder` collects :class:`TraceEntry` records emitted by the
simulators (frame enqueued, frame transmitted, bus command issued...).  It is
disabled by default in the benchmark harness (tracing every frame of a long
run is expensive) but is heavily used by the integration tests, which assert
ordering properties directly on the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEntry", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEntry:
    """One traced event.

    Attributes
    ----------
    time:
        Simulation time of the event, in seconds.
    category:
        A short machine-friendly event type, e.g. ``"frame.enqueue"``,
        ``"frame.tx_start"``, ``"bus.command"``.
    source:
        Name of the component that emitted the entry.
    details:
        Free-form key/value payload (frame id, flow name, queue length...).
    """

    time: float
    category: str
    source: str
    details: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects trace entries, optionally filtered by category prefix.

    Parameters
    ----------
    enabled:
        When ``False`` every :meth:`record` call is a no-op; this lets model
        code trace unconditionally without paying the cost in benchmarks.
    categories:
        Optional whitelist of category prefixes; entries whose category does
        not start with one of the prefixes are dropped.
    """

    def __init__(self, enabled: bool = True,
                 categories: list[str] | None = None) -> None:
        self.enabled = enabled
        self._categories = tuple(categories) if categories else None
        self._entries: list[TraceEntry] = []

    def record(self, time: float, category: str, source: str,
               **details: Any) -> None:
        """Append a trace entry (if enabled and category allowed)."""
        if not self.enabled:
            return
        if self._categories is not None and not category.startswith(
                self._categories):
            return
        self._entries.append(
            TraceEntry(time=time, category=category, source=source,
                       details=dict(details)))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> list[TraceEntry]:
        """A copy of every recorded entry, in emission order."""
        return list(self._entries)

    def filter(self, category_prefix: str) -> list[TraceEntry]:
        """Entries whose category starts with ``category_prefix``."""
        return [entry for entry in self._entries
                if entry.category.startswith(category_prefix)]

    def clear(self) -> None:
        """Discard every recorded entry."""
        self._entries.clear()
