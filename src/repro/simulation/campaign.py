"""Monte-Carlo simulation campaigns: seeds × scenarios × policies × scales.

The bound-vs-simulation exhibits used to rest on a *single* seed of a
*single* scenario.  :class:`SimulationCampaign` turns them into a
statistical statement: it sweeps a grid of simulation cells — random
seeds × release scenarios (synchronized / staggered / random) ×
multiplexing policies × workload size factors — runs the full
discrete-event simulation for every cell, and aggregates, per
(size factor, scenario, policy, priority class):

* the worst latency observed across every seed,
* the analytic worst-case delay bound for the same configuration,
* whether the bound dominates every observation (``bound_holds``) and how
  tight it is (``tightness`` = worst observed / bound).

Cells are value-level (frozen, picklable) specs, so wide campaigns fan
out over worker processes exactly like the analytic campaign runner
(``jobs=N``, the machinery of :class:`repro.campaigns.runner.CampaignRunner`);
each worker lazily builds and caches the per-size-factor workload and
topology.  Every cell is fully deterministic given its seed, so the
aggregated rows are identical regardless of ``jobs``.

The grid is exposed on the CLI as ``repro simulate`` and feeds the
``monte-carlo`` report experiment (REPORT.md's all-bounds-hold badge).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro import units
from repro.analysis.engines import DEFAULT_ENGINES, get_engine, resolve_engines
from repro.analysis.multihop import GraphPathAnalysis
from repro.analysis.validation import star_for_message_set, wire_level_messages
from repro.campaigns.scenario import TopologySpec
from repro.core.endtoend import EndToEndAnalysis
from repro.errors import ConfigurationError
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.exec import ExecPolicy, ExecutionReport, ParallelExecutor
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass
from repro.reporting import (
    format_ms,
    render_markdown_table,
    render_table,
    write_csv,
    yes_no,
)
from repro.store import ResultStore
from repro.topology.graph import GraphTopologySpec, graph_spec_from_network
from repro.workloads import RealCaseParameters, generate_real_case

__all__ = [
    "SimulationCell",
    "CellOutcome",
    "MonteCarloRow",
    "MonteCarloEngineRow",
    "MonteCarloResult",
    "SimulationCampaign",
    "SCENARIOS",
    "POLICIES",
]

#: Every release scenario the simulator understands.
SCENARIOS = ("synchronized", "staggered", "random")
#: Every multiplexing policy the simulator understands.
POLICIES = ("fcfs", "strict-priority")

#: Short policy labels reused from the analytic campaign tables.
_POLICY_LABELS = {"fcfs": "FCFS", "strict-priority": "priority"}


def _format_tightness(ratio: float) -> str:
    """A tightness cell: ``-`` for the ``nan`` sentinel, else 3 decimals."""
    return "-" if math.isnan(ratio) else f"{ratio:.3f}"


@dataclass(frozen=True)
class SimulationCell:
    """One cell of the Monte-Carlo grid (a single simulation run)."""

    #: Master seed of the run's random streams.
    seed: int
    #: Release scenario: ``synchronized`` / ``staggered`` / ``random``.
    scenario: str
    #: Multiplexing policy: ``fcfs`` / ``strict-priority``.
    policy: str
    #: Workload scale: multiplies the base station count.
    size_factor: int


@dataclass(frozen=True)
class CellOutcome:
    """Everything one simulated cell contributes to the aggregation."""

    cell: SimulationCell
    #: Worst observed latency per priority class (seconds).
    worst_per_class: dict[PriorityClass, float]
    #: Mean observed latency per priority class (seconds).
    mean_per_class: dict[PriorityClass, float]
    #: Number of latency samples per priority class.
    samples_per_class: dict[PriorityClass, int]
    instances_sent: int
    instances_delivered: int
    frames_dropped: int
    events_processed: int
    elapsed: float
    #: True when this cell was served from the result store (``--resume``);
    #: ``elapsed``/``events_processed`` then describe the original run.
    resumed: bool = False


@dataclass(frozen=True)
class MonteCarloRow:
    """Aggregate over every seed of one (scale, scenario, policy, class)."""

    size_factor: int
    scenario: str
    policy: str
    priority: PriorityClass
    #: Number of seeds aggregated into this row.
    seeds: int
    #: Analytic worst-case delay bound for this configuration (seconds).
    analytic_bound: float
    #: Worst latency observed across every seed (seconds).
    worst_simulated: float
    #: Mean of the per-seed mean latencies (seconds).
    mean_simulated: float
    #: Total latency samples across every seed.
    samples: int

    @property
    def bound_holds(self) -> bool:
        """True when the bound dominates every observation of the row."""
        return self.worst_simulated <= self.analytic_bound + 1e-9

    @property
    def tightness(self) -> float:
        """Worst observation divided by the bound (1.0 = tight).

        ``nan`` whenever the ratio is meaningless: a non-positive or
        infinite bound (an unstable configuration has nothing to be tight
        against) or a ``nan`` observation (no samples).  An infinite bound
        must *not* yield ``0.0`` — that would read as "infinitely slack"
        in aggregates that a ``nan`` correctly opts out of.
        """
        if not math.isfinite(self.analytic_bound) or self.analytic_bound <= 0:
            return float("nan")
        if math.isnan(self.worst_simulated):
            return float("nan")
        return self.worst_simulated / self.analytic_bound


@dataclass(frozen=True)
class MonteCarloEngineRow:
    """One bound engine's validation against the simulated worst case.

    Produced only for non-default engine selections
    (``repro simulate --engine ...``); every selected engine — the
    calculus reference included — is checked against the same worst
    observation the canonical :class:`MonteCarloRow` aggregates.
    """

    size_factor: int
    scenario: str
    policy: str
    priority: PriorityClass
    engine: str
    #: The engine's end-to-end delay bound (seconds).
    bound: float
    #: Worst latency observed across every seed (seconds).
    worst_simulated: float
    #: Total latency samples behind the observation.
    samples: int

    @property
    def bound_holds(self) -> bool:
        """True when the engine's bound dominates every observation."""
        return self.worst_simulated <= self.bound + 1e-9

    @property
    def tightness(self) -> float:
        """Worst observation divided by the engine bound (``nan`` sentinel
        for unstable/infinite bounds, as on :class:`MonteCarloRow`)."""
        if not math.isfinite(self.bound) or self.bound <= 0:
            return float("nan")
        if math.isnan(self.worst_simulated):
            return float("nan")
        return self.worst_simulated / self.bound


@dataclass
class MonteCarloResult:
    """The combined outcome of a Monte-Carlo simulation campaign."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    rows: list[MonteCarloRow] = field(default_factory=list)
    #: Cross-engine validation rows; empty under the default selection.
    engine_rows: list[MonteCarloEngineRow] = field(default_factory=list)
    elapsed: float = 0.0
    #: What the fault-tolerant executor observed (retries, recoveries,
    #: structured failures); ``None`` only for hand-built results.
    exec_report: ExecutionReport | None = None

    ROW_HEADERS = ("scale", "scenario", "policy", "class", "seeds",
                   "bound", "worst sim", "tightness", "holds")
    ENGINE_ROW_HEADERS = ("scale", "scenario", "policy", "class", "engine",
                          "bound", "worst sim", "tightness", "holds")

    @property
    def failures(self) -> list:
        """Cells that exhausted their retries (empty when all ran)."""
        return [] if self.exec_report is None else self.exec_report.failures

    @property
    def all_bounds_hold(self) -> bool:
        """True when every aggregated row respects its analytic bound."""
        return bool(self.rows) and all(row.bound_holds for row in self.rows)

    @property
    def all_engine_bounds_hold(self) -> bool:
        """True when every cross-engine row is sound (vacuously true for
        default runs, which produce no engine rows)."""
        return all(row.bound_holds for row in self.engine_rows)

    @property
    def cells(self) -> int:
        """Number of simulated cells."""
        return len(self.outcomes)

    @property
    def events_processed(self) -> int:
        """Total events processed across every cell."""
        return sum(outcome.events_processed for outcome in self.outcomes)

    @property
    def frames_dropped(self) -> int:
        """Total frames dropped across every cell (0 for shaped traffic)."""
        return sum(outcome.frames_dropped for outcome in self.outcomes)

    @property
    def resumed(self) -> int:
        """Number of cells served from the result store."""
        return sum(1 for outcome in self.outcomes if outcome.resumed)

    @property
    def max_tightness(self) -> float:
        """Largest finite worst-observed / bound ratio across the rows.

        Returns the documented ``nan`` sentinel when no row has a finite
        ratio (an all-unstable or sample-free grid) — callers must test
        with ``math.isnan`` rather than compare against a magic number.
        """
        ratios = [row.tightness for row in self.rows
                  if math.isfinite(row.tightness)]
        return max(ratios) if ratios else float("nan")

    def row_cells(self) -> list[tuple]:
        """One formatted line per aggregated row."""
        return [(f"x{row.size_factor}", row.scenario,
                 _POLICY_LABELS[row.policy], row.priority.label, row.seeds,
                 format_ms(row.analytic_bound),
                 format_ms(row.worst_simulated),
                 _format_tightness(row.tightness), yes_no(row.bound_holds))
                for row in self.rows]

    def engine_row_cells(self) -> list[tuple]:
        """One formatted line per cross-engine validation row."""
        return [(f"x{row.size_factor}", row.scenario,
                 _POLICY_LABELS[row.policy], row.priority.label, row.engine,
                 format_ms(row.bound), format_ms(row.worst_simulated),
                 _format_tightness(row.tightness), yes_no(row.bound_holds))
                for row in self.engine_rows]

    def to_table(self) -> str:
        """The aggregated rows as aligned ASCII tables (runs with a
        non-default engine selection append the cross-engine table)."""
        table = render_table(self.ROW_HEADERS, self.row_cells(),
                             title="Monte-Carlo bound validation")
        if self.engine_rows:
            table += "\n" + render_table(
                self.ENGINE_ROW_HEADERS, self.engine_row_cells(),
                title="Cross-engine bound validation")
        return table

    def to_markdown(self) -> str:
        """The same tables in GitHub-flavoured markdown."""
        table = render_markdown_table(self.ROW_HEADERS, self.row_cells(),
                                      title="Monte-Carlo bound validation")
        if self.engine_rows:
            table += "\n" + render_markdown_table(
                self.ENGINE_ROW_HEADERS, self.engine_row_cells(),
                title="Cross-engine bound validation")
        return table

    def write_csv(self, path: str | Path) -> None:
        """Dump the raw (unformatted) aggregated rows to ``path``."""
        write_csv(path,
                  ["size_factor", "scenario", "policy", "priority", "seeds",
                   "bound_s", "worst_simulated_s", "mean_simulated_s",
                   "samples", "tightness", "bound_holds"],
                  [(row.size_factor, row.scenario, row.policy,
                    row.priority.name, row.seeds, repr(row.analytic_bound),
                    repr(row.worst_simulated), repr(row.mean_simulated),
                    row.samples, repr(row.tightness), row.bound_holds)
                   for row in self.rows])


class SimulationCampaign:
    """Run the Monte-Carlo grid and aggregate it against the bounds.

    Parameters
    ----------
    station_count:
        Base station count of the synthetic workload; every cell's
        workload is ``station_count × size_factor`` stations.
    workload_seed:
        Seed of the synthetic workload generator (*not* the simulation
        seed — every cell reuses the same message set).
    message_set:
        Explicit workload to simulate instead of the synthetic one (e.g. a
        CSV-loaded set).  Only ``size_factors == (1,)`` is supported then,
        because foreign sets cannot be regenerated at other scales.
    seeds:
        The simulation seeds of the grid.
    scenarios / policies / size_factors:
        The remaining grid axes.
    duration:
        Simulated horizon per cell, seconds (320 ms = two 1553B major
        frames, the validation default).
    capacity / technology_delay:
        Link rate and switch relaying-delay bound shared by the analytic
        and simulated sides.
    jobs:
        Number of worker processes to spread the cells over (default 1:
        evaluate in-process).  Results are identical for any value.
    store:
        An optional :class:`~repro.store.ResultStore`.  Every simulated
        cell is written to it (fingerprinted by the cell spec, the
        workload and the ``simulation`` code-version token); cells are
        only read back with ``resume=True``.
    resume:
        Reuse cells already present in the store — ``repro simulate
        --resume``: after an interruption only the unfinished cells are
        simulated, and the aggregated rows (and CSV) are byte-identical
        to an uninterrupted run because every cell is deterministic.
    topology:
        ``None`` (default) keeps the legacy single-switch star derived
        from the message set — cell fingerprints are unchanged, so old
        stores stay valid.  A campaign
        :class:`~repro.campaigns.scenario.TopologySpec` (any kind) or an
        explicit :class:`~repro.topology.graph.GraphTopologySpec` runs
        the grid on that multi-hop network instead, with the analytic
        side switched to
        :class:`~repro.analysis.multihop.GraphPathAnalysis` on the same
        spec.  An explicit graph spec fixes the station names, so it
        only supports ``size_factors=(1,)``.
    engines:
        Bound-engine selection (``repro simulate --engine ...``), as
        accepted by :func:`repro.analysis.engines.resolve_engines`.
        The canonical rows always validate the calculus bound; a
        non-default selection additionally validates every selected
        engine's bound against the same simulated worst case
        (``result.engine_rows``).  Cell simulation — and therefore the
        store fingerprints — is engine-independent, so old stores stay
        warm for any selection.
    """

    def __init__(self, *, station_count: int = 16, workload_seed: int = 7,
                 message_set: MessageSet | None = None,
                 seeds: Sequence[int] = (1, 2, 3, 4, 5),
                 scenarios: Sequence[str] = SCENARIOS,
                 policies: Sequence[str] = POLICIES,
                 size_factors: Sequence[int] = (1,),
                 duration: float = units.ms(320),
                 capacity: float = units.mbps(10),
                 technology_delay: float = units.us(16),
                 jobs: int = 1,
                 store: ResultStore | None = None,
                 resume: bool = False,
                 exec_policy: ExecPolicy | None = None,
                 faults: str | None = None,
                 topology: TopologySpec | GraphTopologySpec | None = None,
                 engines: "str | Sequence[str] | None" = None) -> None:
        if not scenarios:
            raise ConfigurationError("at least one scenario is required")
        for scenario in scenarios:
            if scenario not in SCENARIOS:
                raise ConfigurationError(
                    f"unknown scenario {scenario!r}; known: {SCENARIOS}")
        if not policies:
            raise ConfigurationError("at least one policy is required")
        for policy in policies:
            if policy not in POLICIES:
                raise ConfigurationError(
                    f"unknown policy {policy!r}; known: {POLICIES}")
        if not seeds:
            raise ConfigurationError("at least one seed is required")
        if not size_factors:
            raise ConfigurationError("at least one size factor is required")
        if any(factor < 1 for factor in size_factors):
            raise ConfigurationError("size factors must be positive")
        if message_set is not None and tuple(size_factors) != (1,):
            raise ConfigurationError(
                "an explicit message set only supports size_factors=(1,)")
        if isinstance(topology, GraphTopologySpec) and \
                tuple(size_factors) != (1,):
            raise ConfigurationError(
                "an explicit graph topology only supports size_factors=(1,)")
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration!r}")
        if jobs < 1:
            raise ConfigurationError(f"jobs must be at least 1, got {jobs!r}")
        self.station_count = int(station_count)
        self.workload_seed = int(workload_seed)
        self.message_set = message_set
        self.seeds = tuple(int(seed) for seed in seeds)
        self.scenarios = tuple(scenarios)
        self.policies = tuple(policies)
        self.size_factors = tuple(int(factor) for factor in size_factors)
        self.duration = float(duration)
        self.capacity = float(capacity)
        self.technology_delay = float(technology_delay)
        self.jobs = int(jobs)
        self.store = store
        self.resume = bool(resume)
        self.exec_policy = exec_policy
        self.faults = faults
        self.topology = topology
        self.engines = resolve_engines(engines)

    # -- grid ----------------------------------------------------------------

    def cells(self) -> list[SimulationCell]:
        """The full grid, in deterministic (factor, scenario, policy, seed)
        order."""
        return [SimulationCell(seed=seed, scenario=scenario, policy=policy,
                               size_factor=factor)
                for factor in self.size_factors
                for scenario in self.scenarios
                for policy in self.policies
                for seed in self.seeds]

    def _context(self) -> dict:
        """The picklable workload/topology context shipped to workers."""
        context = {
            "station_count": self.station_count,
            "workload_seed": self.workload_seed,
            "messages": (None if self.message_set is None
                         else list(self.message_set.messages)),
            "duration": self.duration,
            "capacity": self.capacity,
            "technology_delay": self.technology_delay,
        }
        if self.topology is not None:
            # Only present for multi-hop runs, so the fingerprints (and
            # stored results) of legacy star campaigns are untouched.
            context["topology"] = self.topology
        return context

    # -- execution -----------------------------------------------------------

    def run(self) -> MonteCarloResult:
        """Simulate every cell, then aggregate against the analytic bounds.

        Cells that exhaust their retries become structured
        :class:`~repro.exec.CellFailure` records on
        ``result.exec_report``; the aggregation simply spans the cells
        that completed (a partial grid still aggregates — re-run with
        ``--resume`` to fill the holes from the store).
        """
        started = time.perf_counter()
        cells = self.cells()
        store_root = None if self.store is None else str(self.store.root)
        executor = ParallelExecutor(jobs=self.jobs,
                                    policy=self.exec_policy,
                                    fault_spec=self.faults, label="cell")
        report = executor.map(
            _evaluate_cell, cells,
            initializer=_init_worker,
            initargs=(self._context(), store_root, self.resume),
            serial_setup=lambda: _init_worker(
                self._context(), store_root, self.resume, store=self.store),
            labels=[_cell_label(cell) for cell in cells])
        result = MonteCarloResult(outcomes=report.ordered_results())
        result.exec_report = report
        result.rows = self._aggregate(result.outcomes)
        result.engine_rows = self._aggregate_engines(result.rows)
        result.elapsed = time.perf_counter() - started
        return result

    # -- aggregation ---------------------------------------------------------

    def _bounds_for(self, factor: int) -> dict[str, dict[PriorityClass, float]]:
        """Analytic per-class bounds for one size factor, per policy."""
        context = self._context()
        message_set = _workload(context, factor)
        analysis_messages = wire_level_messages(message_set)
        bounds: dict[str, dict[PriorityClass, float]] = {}
        graph_spec = _graph_spec(context, factor)
        if graph_spec is not None:
            for policy in self.policies:
                analytic = GraphPathAnalysis(
                    graph_spec, policy=policy).analyze(analysis_messages)
                bounds[policy] = {
                    cls: bound.delay
                    for cls, bound in analytic.worst_per_class().items()}
            return bounds
        network = star_for_message_set(message_set, capacity=self.capacity,
                                       technology_delay=self.technology_delay)
        for policy in self.policies:
            analysis = EndToEndAnalysis(network, policy=policy)
            analytic = analysis.analyze(analysis_messages)
            bounds[policy] = {
                cls: bound.total_delay
                for cls, bound in analytic.worst_per_class().items()}
        return bounds

    def _aggregate(self, outcomes: Iterable[CellOutcome]
                   ) -> list[MonteCarloRow]:
        """Fold the per-cell outcomes into per-configuration rows."""
        grouped: dict[tuple, list[CellOutcome]] = {}
        for outcome in outcomes:
            cell = outcome.cell
            key = (cell.size_factor, cell.scenario, cell.policy)
            grouped.setdefault(key, []).append(outcome)
        bounds_per_factor = {factor: self._bounds_for(factor)
                             for factor in self.size_factors}
        rows: list[MonteCarloRow] = []
        for factor in self.size_factors:
            for scenario in self.scenarios:
                for policy in self.policies:
                    group = grouped.get((factor, scenario, policy), [])
                    if not group:
                        continue
                    bounds = bounds_per_factor[factor][policy]
                    for cls in sorted(bounds):
                        samples = sum(
                            outcome.samples_per_class.get(cls, 0)
                            for outcome in group)
                        if samples == 0:
                            continue
                        worst = max(
                            outcome.worst_per_class[cls]
                            for outcome in group
                            if cls in outcome.worst_per_class)
                        means = [outcome.mean_per_class[cls]
                                 for outcome in group
                                 if cls in outcome.mean_per_class]
                        rows.append(MonteCarloRow(
                            size_factor=factor,
                            scenario=scenario,
                            policy=policy,
                            priority=cls,
                            seeds=len(group),
                            analytic_bound=bounds[cls],
                            worst_simulated=worst,
                            mean_simulated=sum(means) / len(means),
                            samples=samples))
        return rows

    def _engine_bounds_for(self, factor: int
                           ) -> dict[str, dict[str, dict]]:
        """``{engine: {policy: {class: bound}}}`` for one size factor."""
        context = self._context()
        message_set = _workload(context, factor)
        analysis_messages = wire_level_messages(message_set)
        graph_spec = _graph_spec(context, factor)
        if graph_spec is not None:
            network = graph_spec.to_network()
        else:
            network = star_for_message_set(
                message_set, capacity=self.capacity,
                technology_delay=self.technology_delay)
        bounds: dict[str, dict[str, dict]] = {}
        for name in self.engines:
            engine = get_engine(name)
            bounds[name] = {
                policy: engine.network_class_bounds(
                    analysis_messages, policy, network=network,
                    graph_spec=graph_spec)
                for policy in self.policies}
        return bounds

    def _aggregate_engines(self, rows: Iterable[MonteCarloRow]
                           ) -> list[MonteCarloEngineRow]:
        """Validate every selected engine against the aggregated worsts.

        Empty under the default selection: the canonical rows already
        validate the calculus bound, so default runs stay byte-identical
        to the pre-engine output.
        """
        if self.engines == DEFAULT_ENGINES:
            return []
        bounds_per_factor = {factor: self._engine_bounds_for(factor)
                             for factor in self.size_factors}
        engine_rows: list[MonteCarloEngineRow] = []
        for row in rows:
            per_engine = bounds_per_factor[row.size_factor]
            for name in self.engines:
                bound = per_engine[name][row.policy].get(
                    row.priority, math.inf)
                engine_rows.append(MonteCarloEngineRow(
                    size_factor=row.size_factor,
                    scenario=row.scenario,
                    policy=row.policy,
                    priority=row.priority,
                    engine=name,
                    bound=bound,
                    worst_simulated=row.worst_simulated,
                    samples=row.samples))
        return engine_rows


# ---------------------------------------------------------------------------
# Worker-process plumbing (shared by jobs=1, which runs it in-process)
# ---------------------------------------------------------------------------

#: Per-process campaign context set by :func:`_init_worker`.
_WORKER_CONTEXT: dict | None = None
#: Per-process cache: size factor -> (message_set, network).
_WORKER_WORKLOADS: dict[int, tuple] = {}
#: Per-process result store handle (``None`` disables persistence).
_WORKER_STORE: ResultStore | None = None
#: Whether stored cells may be reused (the ``--resume`` mode).
_WORKER_RESUME: bool = False


def _cell_label(cell: SimulationCell) -> str:
    """Compact human label of one grid cell for failure tables."""
    return (f"x{cell.size_factor}/{cell.scenario}/{cell.policy}"
            f"/seed{cell.seed}")


def _graph_spec(context: dict, factor: int) -> GraphTopologySpec | None:
    """The multi-hop topology of a cell, or ``None`` for the legacy star."""
    topology = context.get("topology")
    if topology is None:
        return None
    if isinstance(topology, GraphTopologySpec):
        return topology
    stations = context["station_count"] * factor
    if topology.kind == "graph":
        return topology.build_graph(
            stations, capacity=context["capacity"],
            technology_delay=context["technology_delay"])
    return graph_spec_from_network(topology.build(
        stations, capacity=context["capacity"],
        technology_delay=context["technology_delay"]))


def _workload(context: dict, factor: int) -> MessageSet:
    """The (possibly scaled) message set of one size factor."""
    if context["messages"] is not None:
        message_set = MessageSet(name="simulate-workload")
        for message in context["messages"]:
            message_set.add(message)
        return message_set
    return generate_real_case(
        RealCaseParameters(
            station_count=context["station_count"] * factor),
        seed=context["workload_seed"])


def _init_worker(context: dict, store_root: str | None = None,
                 resume: bool = False, *,
                 store: ResultStore | None = None) -> None:
    """Process-pool initializer: stash the campaign context and store.

    The in-process path passes its live ``store`` handle so hit/miss
    statistics accumulate on the campaign's own store; workers rebuild a
    handle from ``store_root``.
    """
    global _WORKER_CONTEXT, _WORKER_STORE, _WORKER_RESUME
    _WORKER_CONTEXT = context
    if store is None and store_root is not None:
        store = ResultStore(store_root)
    _WORKER_STORE = store
    _WORKER_RESUME = bool(resume)
    _WORKER_WORKLOADS.clear()


def _cell_key(context: dict, cell: SimulationCell) -> dict:
    """The value-level spec fingerprinted for one simulation cell."""
    key = {"cell": cell,
           "station_count": context["station_count"],
           "workload_seed": context["workload_seed"],
           "messages": context["messages"],
           "duration": context["duration"],
           "capacity": context["capacity"],
           "technology_delay": context["technology_delay"]}
    if "topology" in context:
        # Absent for star runs, keeping their legacy fingerprints stable.
        key["topology"] = context["topology"]
    return key


def _outcome_to_payload(outcome: CellOutcome) -> dict:
    """One cell outcome as a JSON payload for the result store."""
    return {
        "worst": {cls.name: value
                  for cls, value in outcome.worst_per_class.items()},
        "mean": {cls.name: value
                 for cls, value in outcome.mean_per_class.items()},
        "samples": {cls.name: count
                    for cls, count in outcome.samples_per_class.items()},
        "instances_sent": outcome.instances_sent,
        "instances_delivered": outcome.instances_delivered,
        "frames_dropped": outcome.frames_dropped,
        "events_processed": outcome.events_processed,
        "elapsed": outcome.elapsed,
    }


def _outcome_from_payload(cell: SimulationCell,
                          payload: dict) -> CellOutcome:
    """Rebuild a stored cell outcome (marked ``resumed``)."""
    return CellOutcome(
        cell=cell,
        worst_per_class={PriorityClass[name]: float(value)
                         for name, value in payload["worst"].items()},
        mean_per_class={PriorityClass[name]: float(value)
                        for name, value in payload["mean"].items()},
        samples_per_class={PriorityClass[name]: int(count)
                           for name, count in payload["samples"].items()},
        instances_sent=int(payload["instances_sent"]),
        instances_delivered=int(payload["instances_delivered"]),
        frames_dropped=int(payload["frames_dropped"]),
        events_processed=int(payload["events_processed"]),
        elapsed=float(payload["elapsed"]),
        resumed=True)


def _evaluate_cell(cell: SimulationCell) -> CellOutcome:
    """One cell via the store (runs inside a worker process/in-process)."""
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before initialization"
    if _WORKER_STORE is None:
        return _simulate_cell(context, cell)
    outcome, _ = _WORKER_STORE.cached(
        "simulation-cell", _cell_key(context, cell),
        lambda: _simulate_cell(context, cell),
        subsystem="simulation",
        encode=_outcome_to_payload,
        decode=lambda payload: _outcome_from_payload(cell, payload),
        reuse=_WORKER_RESUME)
    return outcome


def _simulate_cell(context: dict, cell: SimulationCell) -> CellOutcome:
    """Actually run one cell's discrete-event simulation."""
    cached = _WORKER_WORKLOADS.get(cell.size_factor)
    if cached is None:
        message_set = _workload(context, cell.size_factor)
        graph_spec = _graph_spec(context, cell.size_factor)
        if graph_spec is not None:
            network = graph_spec.to_network()
        else:
            network = star_for_message_set(
                message_set, capacity=context["capacity"],
                technology_delay=context["technology_delay"])
        cached = (message_set, network)
        _WORKER_WORKLOADS[cell.size_factor] = cached
    message_set, network = cached
    started = time.perf_counter()
    simulator = EthernetNetworkSimulator(
        network, message_set.messages, policy=cell.policy,
        scenario=cell.scenario, seed=cell.seed)
    results = simulator.run(duration=context["duration"])
    elapsed = time.perf_counter() - started
    worst: dict[PriorityClass, float] = {}
    mean: dict[PriorityClass, float] = {}
    samples: dict[PriorityClass, int] = {}
    for cls, recorder in results.class_latencies.items():
        if recorder.count == 0:
            continue
        summary = recorder.summary()
        worst[cls] = summary.maximum
        mean[cls] = summary.mean
        samples[cls] = summary.count
    return CellOutcome(
        cell=cell,
        worst_per_class=worst,
        mean_per_class=mean,
        samples_per_class=samples,
        instances_sent=results.instances_sent,
        instances_delivered=results.instances_delivered,
        frames_dropped=results.frames_dropped,
        events_processed=simulator.simulator.events_processed,
        elapsed=elapsed)
