"""Events and the pending-event queue of the simulation kernel.

The kernel is callback based: an :class:`Event` couples a firing time with a
callable and its arguments.  Events are totally ordered by ``(time,
sequence)`` where ``sequence`` is a monotonically increasing insertion
counter, so two events scheduled for the same instant fire in the order they
were scheduled.  This makes simulations fully deterministic, which the test
suite and the bound-vs-simulation experiments rely on.

Performance notes (this is the hottest structure of the simulator):

* :class:`Event` is a plain ``__slots__`` class, not a dataclass — no
  instance ``__dict__``, cheap construction, cheap attribute access.
* The heap holds ``(time, sequence, event)`` triples, so every heap
  comparison is a C-level tuple comparison that is decided by the
  ``(time, sequence)`` prefix (sequence numbers are unique, the event
  object itself is never compared).  The previous ``@dataclass(order=True)``
  design invoked a generated Python ``__lt__`` for every sift step —
  over a million interpreter-level calls on a 320 ms run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    sequence:
        Insertion counter used to break ties deterministically.
    callback:
        The callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    cancelled:
        Set to ``True`` by :meth:`cancel`; cancelled events are skipped by
        the engine without invoking their callback.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[..., None], args: tuple[Any, ...] = (),
                 cancelled: bool = False) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.sequence) == (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, sequence={self.sequence}"
                f"{state})")

    def cancel(self) -> None:
        """Mark the event as cancelled.

        Cancellation is lazy: the event stays in the heap but the engine
        discards it when it reaches the head of the queue.
        """
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the engine calls this; tests may too)."""
        self.callback(*self.args)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    The queue exposes only what the engine needs: push, pop-next-live,
    peek-time and length.  Cancelled events are purged lazily on pop.

    Two entry shapes share the heap (the ``(time, sequence)`` prefix makes
    them totally ordered either way):

    * ``(time, sequence, event)`` triples for :meth:`push` — the general
      path, returning a cancellable :class:`Event` handle;
    * ``(time, sequence, callback, arg)`` quadruples for
      :meth:`push_fast` — the handle-free fast shape (such entries cannot
      be cancelled).  :meth:`Simulator.post`/:meth:`Simulator.post_at`
      wrap it for the model layer, and the single hottest model site
      (:meth:`repro.ethernet.link.LinkTransmitter._start_next`) inlines
      the same entry shape; keep the three in sync.

    The engine's inlined run loop reaches into :attr:`_heap` directly and
    discriminates the two shapes by length.
    """

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        #: C-level insertion counter (``next()`` beats a load/add/store).
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap
                   if len(entry) == 4 or not entry[2].cancelled)

    def __bool__(self) -> bool:
        return any(len(entry) == 4 or not entry[2].cancelled
                   for entry in self._heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...] = ()) -> Event:
        """Create an event at ``time`` and insert it into the queue."""
        sequence = next(self._sequence)
        event = Event(time, sequence, callback, args)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def push_fast(self, time: float, callback: Callable[[Any], None],
                  arg: Any) -> None:
        """Insert a single-argument callback without an :class:`Event` handle.

        The entry fires exactly like a pushed event (same deterministic
        ``(time, sequence)`` ordering) but cannot be cancelled — model hot
        paths that never cancel use this to skip one allocation per event.
        """
        heapq.heappush(self._heap,
                       (time, next(self._sequence), callback, arg))

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event.

        Fast-path entries are wrapped in an :class:`Event` on the way out,
        so callers see one type.  Returns ``None`` when only cancelled
        events (or nothing) remain.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:
                return Event(entry[0], entry[1], entry[2], (entry[3],))
            event = entry[2]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event without popping it."""
        heap = self._heap
        while heap and len(heap[0]) == 3 and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]
