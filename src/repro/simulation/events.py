"""Events and the pending-event queue of the simulation kernel.

The kernel is callback based: an :class:`Event` couples a firing time with a
callable and its arguments.  Events are totally ordered by ``(time,
sequence)`` where ``sequence`` is a monotonically increasing insertion
counter, so two events scheduled for the same instant fire in the order they
were scheduled.  This makes simulations fully deterministic, which the test
suite and the bound-vs-simulation experiments rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    sequence:
        Insertion counter used to break ties deterministically.
    callback:
        The callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    cancelled:
        Set to ``True`` by :meth:`cancel`; cancelled events are skipped by
        the engine without invoking their callback.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled.

        Cancellation is lazy: the event stays in the heap but the engine
        discards it when it reaches the head of the queue.
        """
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the engine calls this; tests may too)."""
        self.callback(*self.args)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    The queue exposes only what the engine needs: push, pop-next-live,
    peek-time and length.  Cancelled events are purged lazily on pop.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...] = ()) -> Event:
        """Create an event at ``time`` and insert it into the queue."""
        event = Event(time=time, sequence=next(self._counter),
                      callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when only cancelled events (or nothing) remain.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
