"""Statistics collectors used to summarise simulation runs.

Three collectors cover the needs of the evaluation harness:

* :class:`LatencyRecorder` accumulates per-sample latencies (one sample per
  delivered message) and reports min / max / mean / percentiles and jitter,
* :class:`Counter` counts discrete occurrences (frames sent, frames dropped,
  buffer overflows...),
* :class:`TimeWeightedAverage` integrates a piecewise-constant signal over
  time (queue length, link busy state) and reports its time average and
  maximum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "SummaryStatistics",
    "LatencyRecorder",
    "Counter",
    "TimeWeightedAverage",
]


@dataclass(frozen=True)
class SummaryStatistics:
    """Immutable summary of a sample set."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    p50: float
    p95: float
    p99: float

    @property
    def jitter(self) -> float:
        """Peak-to-peak jitter: max − min of the samples."""
        return self.maximum - self.minimum

    @staticmethod
    def empty() -> "SummaryStatistics":
        """Summary of an empty sample set (all fields NaN, count 0)."""
        nan = float("nan")
        return SummaryStatistics(0, nan, nan, nan, nan, nan, nan, nan)


class LatencyRecorder:
    """Accumulates latency samples and produces a :class:`SummaryStatistics`.

    Parameters
    ----------
    name:
        A label used in reports (e.g. the flow or priority-class name).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []

    def record(self, latency: float) -> None:
        """Add one latency sample (seconds)."""
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency!r}")
        self._samples.append(float(latency))

    def extend(self, latencies: Iterable[float]) -> None:
        """Add many latency samples at once."""
        for value in latencies:
            self.record(value)

    @property
    def count(self) -> int:
        """Number of samples recorded so far."""
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        """A copy of the recorded samples, in insertion order."""
        return list(self._samples)

    @property
    def maximum(self) -> float:
        """Largest sample, or NaN if empty."""
        return max(self._samples) if self._samples else float("nan")

    @property
    def minimum(self) -> float:
        """Smallest sample, or NaN if empty."""
        return min(self._samples) if self._samples else float("nan")

    def summary(self) -> SummaryStatistics:
        """Compute the full summary of the samples recorded so far."""
        if not self._samples:
            return SummaryStatistics.empty()
        data = np.asarray(self._samples, dtype=float)
        return SummaryStatistics(
            count=int(data.size),
            minimum=float(data.min()),
            maximum=float(data.max()),
            mean=float(data.mean()),
            std=float(data.std()),
            p50=float(np.percentile(data, 50)),
            p95=float(np.percentile(data, 95)),
            p99=float(np.percentile(data, 99)),
        )


class Counter:
    """A named integer counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        """Increase the counter by ``amount`` (default 1)."""
        self._value += amount

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def reset(self) -> None:
        """Reset the counter to zero."""
        self._value = 0


class TimeWeightedAverage:
    """Time-weighted statistics of a piecewise-constant signal.

    Typical use: queue occupancy in bits.  Call :meth:`update` every time the
    signal changes; call :meth:`close` (or pass ``until`` to :meth:`average`)
    to account for the final holding interval.
    """

    def __init__(self, initial_value: float = 0.0,
                 start_time: float = 0.0) -> None:
        self._current = float(initial_value)
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._integral = 0.0
        self._maximum = float(initial_value)

    @property
    def current(self) -> float:
        """Current value of the signal."""
        return self._current

    @property
    def maximum(self) -> float:
        """Largest value the signal has taken."""
        return self._maximum

    def update(self, time: float, value: float) -> None:
        """Record that the signal takes ``value`` from ``time`` onwards."""
        if time < self._last_time:
            raise ValueError(
                f"time must not go backwards: {time} < {self._last_time}")
        self._integral += self._current * (time - self._last_time)
        self._last_time = time
        self._current = float(value)
        self._maximum = max(self._maximum, self._current)

    def average(self, until: float | None = None) -> float:
        """Time-average of the signal from the start until ``until``.

        ``until`` defaults to the time of the last update.  Returns NaN when
        the observation window has zero length.
        """
        end = self._last_time if until is None else until
        if end < self._last_time:
            raise ValueError("'until' precedes the last recorded update")
        integral = self._integral + self._current * (end - self._last_time)
        duration = end - self._start_time
        if duration <= 0:
            return float("nan")
        return integral / duration

    def close(self, time: float) -> None:
        """Extend the last holding interval to ``time`` without changing value."""
        self.update(time, self._current)


def safe_max(values: Iterable[float], default: float = 0.0) -> float:
    """``max`` that returns ``default`` for an empty iterable.

    Used by the bound computations where ``max_{j in higher classes} b_j``
    must be 0 when no lower-priority traffic exists.
    """
    best = None
    for value in values:
        if best is None or value > best:
            best = value
    if best is None:
        return default
    if math.isnan(best):
        return default
    return best
