"""Statistics collectors used to summarise simulation runs.

Three collectors cover the needs of the evaluation harness:

* :class:`LatencyRecorder` accumulates per-sample latencies (one sample per
  delivered message) and reports min / max / mean / percentiles and jitter,
* :class:`Counter` counts discrete occurrences (frames sent, frames dropped,
  buffer overflows...),
* :class:`TimeWeightedAverage` integrates a piecewise-constant signal over
  time (queue length, link busy state) and reports its time average and
  maximum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "SummaryStatistics",
    "LatencyRecorder",
    "Counter",
    "TimeWeightedAverage",
]


@dataclass(frozen=True)
class SummaryStatistics:
    """Immutable summary of a sample set."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float
    p50: float
    p95: float
    p99: float

    @property
    def jitter(self) -> float:
        """Peak-to-peak jitter: max − min of the samples."""
        return self.maximum - self.minimum

    @staticmethod
    def empty() -> "SummaryStatistics":
        """Summary of an empty sample set (all fields NaN, count 0)."""
        nan = float("nan")
        return SummaryStatistics(0, nan, nan, nan, nan, nan, nan, nan)


class LatencyRecorder:
    """Accumulates latency samples and produces a :class:`SummaryStatistics`.

    Samples live in a preallocated ``float64`` buffer grown geometrically
    (amortised O(1) per sample, no per-sample Python float boxing kept
    around), so a Monte-Carlo campaign recording millions of latencies
    stays cheap and :meth:`summary` reduces the buffer in one numpy pass
    instead of converting a Python list first.

    Parameters
    ----------
    name:
        A label used in reports (e.g. the flow or priority-class name).
    """

    __slots__ = ("name", "_buffer", "_count")

    #: Initial buffer capacity (doubles on overflow).
    _INITIAL_CAPACITY = 256

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buffer = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._count = 0

    def record(self, latency: float) -> None:
        """Add one latency sample (seconds)."""
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency!r}")
        count = self._count
        buffer = self._buffer
        if count == buffer.shape[0]:
            buffer = self._grow(2 * count)
        buffer[count] = latency
        self._count = count + 1

    def extend(self, latencies: Iterable[float]) -> None:
        """Add many latency samples at once."""
        values = np.asarray(list(latencies), dtype=np.float64)
        if values.size == 0:
            return
        if np.any(values < 0):
            worst = float(values.min())
            raise ValueError(f"latency must be non-negative, got {worst!r}")
        count = self._count
        needed = count + values.size
        if needed > self._buffer.shape[0]:
            self._grow(max(needed, 2 * self._buffer.shape[0]))
        self._buffer[count:needed] = values
        self._count = needed

    def _grow(self, capacity: int) -> np.ndarray:
        """Reallocate the sample buffer to at least ``capacity`` slots."""
        buffer = np.empty(capacity, dtype=np.float64)
        buffer[:self._count] = self._buffer[:self._count]
        self._buffer = buffer
        return buffer

    @property
    def count(self) -> int:
        """Number of samples recorded so far."""
        return self._count

    @property
    def samples(self) -> list[float]:
        """A copy of the recorded samples, in insertion order."""
        return self._buffer[:self._count].tolist()

    @property
    def maximum(self) -> float:
        """Largest sample, or NaN if empty."""
        if self._count == 0:
            return float("nan")
        return float(self._buffer[:self._count].max())

    @property
    def minimum(self) -> float:
        """Smallest sample, or NaN if empty."""
        if self._count == 0:
            return float("nan")
        return float(self._buffer[:self._count].min())

    def summary(self) -> SummaryStatistics:
        """Compute the full summary of the samples recorded so far."""
        if self._count == 0:
            return SummaryStatistics.empty()
        data = self._buffer[:self._count]
        p50, p95, p99 = np.percentile(data, (50, 95, 99))
        return SummaryStatistics(
            count=int(data.size),
            minimum=float(data.min()),
            maximum=float(data.max()),
            mean=float(data.mean()),
            std=float(data.std()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
        )


class Counter:
    """A named integer counter.

    Hot model paths bump ``_value`` directly instead of calling
    :meth:`increment` — the call overhead is measurable at hundreds of
    thousands of events per second.
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        """Increase the counter by ``amount`` (default 1)."""
        self._value += amount

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def reset(self) -> None:
        """Reset the counter to zero."""
        self._value = 0


class TimeWeightedAverage:
    """Time-weighted statistics of a piecewise-constant signal.

    Typical use: queue occupancy in bits.  Call :meth:`update` every time the
    signal changes; call :meth:`close` (or pass ``until`` to :meth:`average`)
    to account for the final holding interval.
    """

    def __init__(self, initial_value: float = 0.0,
                 start_time: float = 0.0) -> None:
        self._current = float(initial_value)
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._integral = 0.0
        self._maximum = float(initial_value)

    @property
    def current(self) -> float:
        """Current value of the signal."""
        return self._current

    @property
    def maximum(self) -> float:
        """Largest value the signal has taken."""
        return self._maximum

    def update(self, time: float, value: float) -> None:
        """Record that the signal takes ``value`` from ``time`` onwards."""
        if time < self._last_time:
            raise ValueError(
                f"time must not go backwards: {time} < {self._last_time}")
        self._integral += self._current * (time - self._last_time)
        self._last_time = time
        self._current = float(value)
        self._maximum = max(self._maximum, self._current)

    def average(self, until: float | None = None) -> float:
        """Time-average of the signal from the start until ``until``.

        ``until`` defaults to the time of the last update.  Returns NaN when
        the observation window has zero length.
        """
        end = self._last_time if until is None else until
        if end < self._last_time:
            raise ValueError("'until' precedes the last recorded update")
        integral = self._integral + self._current * (end - self._last_time)
        duration = end - self._start_time
        if duration <= 0:
            return float("nan")
        return integral / duration

    def close(self, time: float) -> None:
        """Extend the last holding interval to ``time`` without changing value."""
        self.update(time, self._current)


def safe_max(values: Iterable[float], default: float = 0.0) -> float:
    """``max`` that returns ``default`` for an empty iterable.

    Used by the bound computations where ``max_{j in higher classes} b_j``
    must be 0 when no lower-priority traffic exists.
    """
    best = None
    for value in values:
        if best is None or value > best:
            best = value
    if best is None:
        return default
    if math.isnan(best):
        return default
    return best
