"""Unit conventions and conversion helpers.

The whole library uses a single, explicit convention:

* **time** is expressed in **seconds** (floats),
* **data sizes** are expressed in **bits** (floats or ints),
* **rates** are expressed in **bits per second**.

The paper mixes milliseconds (deadlines, periods, frame durations), Mbps
(link rates) and 16-bit data words (1553B payloads); these helpers convert
those publication-friendly units into the internal convention and back, so
that no magic constant is scattered through the code base.

Example
-------
>>> from repro import units
>>> units.mbps(10)
10000000.0
>>> units.ms(20)
0.02
>>> units.to_ms(0.0031)
3.1
>>> units.words1553(32)
512
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

#: Number of seconds in a microsecond.
MICROSECOND = 1e-6
#: Number of seconds in a millisecond.
MILLISECOND = 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / MICROSECOND


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECOND


# ---------------------------------------------------------------------------
# Data sizes
# ---------------------------------------------------------------------------

#: Number of bits in a byte (octet).
BITS_PER_BYTE = 8
#: Number of bits in a MIL-STD-1553B data word (16 data bits; the 4-bit sync
#: and parity overhead is accounted for separately by the bus model).
BITS_PER_1553_WORD = 16
#: Number of bits actually transmitted on the 1553B bus per word: 3 bit-times
#: of sync, 16 data bits and 1 parity bit, i.e. 20 µs at 1 Mbps.
BITS_PER_1553_WORD_ON_WIRE = 20


def bytes_(value: float) -> float:
    """Convert bytes to bits.

    The trailing underscore avoids shadowing the :class:`bytes` built-in.
    """
    return value * BITS_PER_BYTE


def kib(value: float) -> float:
    """Convert kibibytes (1024 bytes) to bits."""
    return value * 1024 * BITS_PER_BYTE


def to_bytes(bits: float) -> float:
    """Convert bits to bytes."""
    return bits / BITS_PER_BYTE


def words1553(count: int) -> int:
    """Convert a number of 1553B data words (16 bits each) to bits."""
    return count * BITS_PER_1553_WORD


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return value * 1e9


def to_mbps(bits_per_second: float) -> float:
    """Convert bits per second to megabits per second."""
    return bits_per_second / 1e6


# ---------------------------------------------------------------------------
# Transmission helpers
# ---------------------------------------------------------------------------


def transmission_time(size_bits: float, rate_bps: float) -> float:
    """Time, in seconds, needed to serialize ``size_bits`` at ``rate_bps``.

    Raises
    ------
    ValueError
        If the rate is not strictly positive or the size is negative.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    if size_bits < 0:
        raise ValueError(f"size must be non-negative, got {size_bits!r}")
    return size_bits / rate_bps
