"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class at an application boundary while the
library itself raises the most specific type available.

The hierarchy mirrors the package structure:

* configuration problems (bad message sets, bad topologies) raise
  :class:`ConfigurationError` subclasses,
* analytical problems (unstable multiplexers, undefined bounds) raise
  :class:`AnalysisError` subclasses,
* simulation problems (buffer overflow when drops are forbidden, event
  scheduling in the past) raise :class:`SimulationError` subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Configuration problems
# ---------------------------------------------------------------------------


class ConfigurationError(ReproError):
    """A model element was configured with inconsistent or invalid values."""


class InvalidMessageError(ConfigurationError):
    """A message definition violates its own invariants.

    Examples: non-positive period, zero-length payload, a deadline that is
    negative, or a sporadic message without a minimal inter-arrival time.
    """


class InvalidFlowError(ConfigurationError):
    """A flow references unknown endpoints or has an empty route."""


class InvalidTopologyError(ConfigurationError):
    """The network topology is malformed (unknown node, duplicate link...)."""


class RoutingError(InvalidTopologyError):
    """No route could be found between two endpoints of a flow."""


class InvalidScheduleError(ConfigurationError):
    """A MIL-STD-1553B schedule violates the frame structure.

    Raised for instance when a minor frame is over-committed (its
    transactions do not fit in the minor frame duration) or when a message
    period is not an integral multiple of the minor frame.
    """


class InvalidWorkloadError(ConfigurationError):
    """A workload specification is internally inconsistent."""


class UnknownScenarioError(ConfigurationError):
    """A campaign references a scenario name absent from the registry."""


class DuplicateScenarioError(ConfigurationError):
    """A scenario name is registered twice without ``replace=True``."""


class UnknownExperimentError(ConfigurationError):
    """A report references an experiment name absent from the registry."""


class DuplicateExperimentError(ConfigurationError):
    """An experiment name is registered twice without ``replace=True``."""


class UnknownEngineError(ConfigurationError):
    """A caller references a bound-engine name absent from the registry."""


class DuplicateEngineError(ConfigurationError):
    """A bound-engine name is registered twice without ``replace=True``."""


# ---------------------------------------------------------------------------
# Analytical problems
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """An analytical computation could not produce a meaningful result."""


class UnstableSystemError(AnalysisError):
    """The long-term arrival rate exceeds the service capacity.

    Network-calculus delay bounds are only finite when the aggregate
    token-bucket rate offered to a server is strictly smaller than the
    service rate available to it.  When that condition fails the bound is
    infinite and the library raises this exception instead of silently
    returning ``float('inf')`` (callers that want the permissive behaviour
    can pass ``strict=False`` where supported).
    """

    def __init__(self, message: str, *, offered_rate: float | None = None,
                 capacity: float | None = None) -> None:
        super().__init__(message)
        #: Aggregate offered long-term rate in bits per second, if known.
        self.offered_rate = offered_rate
        #: Service capacity in bits per second, if known.
        self.capacity = capacity


class EmptyAggregateError(AnalysisError):
    """A bound was requested for an empty set of flows."""


class CurveDomainError(AnalysisError):
    """A curve was evaluated outside its domain (negative time, etc.)."""


# ---------------------------------------------------------------------------
# Simulation problems
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""


class BufferOverflowError(SimulationError):
    """A queue exceeded its capacity while drops were forbidden."""


class SimulationNotRunError(SimulationError):
    """Results were requested from a simulation that has not been run."""


# ---------------------------------------------------------------------------
# Execution problems
# ---------------------------------------------------------------------------


class ExecutionFailedError(ReproError):
    """Cells failed in a context that cannot tolerate partial results.

    The fault-tolerant executor normally reports failed cells as
    structured records and lets the run complete; a consumer that needs
    *every* cell (the report pipeline stitching the full artifact tree)
    raises this instead, carrying the failure records for the CLI's
    summary table.
    """

    def __init__(self, message: str, failures: list | None = None) -> None:
        super().__init__(message)
        #: The :class:`repro.exec.CellFailure` records behind the error.
        self.failures = list(failures or [])
