"""Aligned ASCII tables, GitHub-flavoured markdown tables and CSV export."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence

__all__ = ["render_table", "render_markdown_table", "render_csv",
           "write_csv"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render rows as an aligned, pipe-separated ASCII table.

    Every cell is converted with ``str``; columns are right-padded to the
    widest cell.  The result ends with a newline so it can be printed or
    written to a file directly.
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def format_row(values: Sequence[str]) -> str:
        return " | ".join(value.ljust(width)
                          for value, width in zip(values, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in cells)
    return "\n".join(lines) + "\n"


def render_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]],
                          title: str | None = None) -> str:
    """Render rows as a GitHub-flavoured markdown table.

    Same cell conventions as :func:`render_table`; the optional title
    becomes a ``###`` heading.  The result ends with a newline.
    """
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    lines.extend("| " + " | ".join(row) + " |" for row in cells)
    return "\n".join(lines) + "\n"


def render_csv(headers: Sequence[str],
               rows: Sequence[Sequence[Any]]) -> str:
    """The exact text :func:`write_csv` puts on disk (``\\r\\n`` rows).

    Exposed separately so consumers that cache or diff rendered artifacts
    (the report pipeline's result store) handle CSV like every other
    rendered string.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: str | Path, headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> None:
    """Write the same content as :func:`render_table` to a CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(render_csv(headers, rows))
