"""Plain-text, markdown, CSV and SVG rendering of experiment results.

The benchmark harness is console based (no plotting dependency), so every
table and figure of the paper is rendered as:

* an aligned ASCII table (:func:`render_table`),
* a GitHub-flavoured markdown table (:func:`render_markdown_table`) for
  reports and campaign output,
* a horizontal text bar chart (:func:`render_bar_chart`) or its standalone
  SVG twin (:func:`render_svg_bar_chart`) for figure-like exhibits such as
  Figure 1,
* or exported to CSV (:func:`write_csv`) for external plotting.

The formatting helpers (:func:`format_ms`, :func:`format_bound`,
:func:`format_bytes`, :func:`format_rate`, :func:`yes_no`) keep units and
the unbounded/overload convention consistent across every renderer; the
report pipeline (:mod:`repro.reports`) builds its committed artifacts
exclusively from these primitives so the output is deterministic.
"""

from repro.reporting.tables import (
    render_csv,
    render_markdown_table,
    render_table,
    write_csv,
)
from repro.reporting.figures import render_bar_chart, render_svg_bar_chart
from repro.reporting.formatting import (
    format_bound,
    format_bytes,
    format_ms,
    format_rate,
    yes_no,
)

__all__ = [
    "render_table",
    "render_markdown_table",
    "render_csv",
    "write_csv",
    "render_bar_chart",
    "render_svg_bar_chart",
    "format_ms",
    "format_bound",
    "format_bytes",
    "format_rate",
    "yes_no",
]
