"""Plain-text rendering of experiment results.

The benchmark harness is console based (no plotting dependency), so every
table and figure of the paper is rendered as:

* an aligned ASCII table (:func:`render_table`),
* a GitHub-flavoured markdown table (:func:`render_markdown_table`) for
  reports and campaign output,
* a horizontal text bar chart (:func:`render_bar_chart`) for figure-like
  exhibits such as Figure 1,
* or exported to CSV (:func:`write_csv`) for external plotting.
"""

from repro.reporting.tables import (
    render_markdown_table,
    render_table,
    write_csv,
)
from repro.reporting.figures import render_bar_chart
from repro.reporting.formatting import format_ms, format_rate, yes_no

__all__ = [
    "render_table",
    "render_markdown_table",
    "write_csv",
    "render_bar_chart",
    "format_ms",
    "format_rate",
    "yes_no",
]
