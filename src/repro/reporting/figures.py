"""Text bar charts for figure-like exhibits (Figure 1)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_bar_chart"]


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     unit: str = "", width: int = 50,
                     title: str | None = None,
                     markers: dict[int, float] | None = None) -> str:
    """Render horizontal bars scaled to the largest value.

    Parameters
    ----------
    labels / values:
        One bar per (label, value) pair.
    unit:
        Unit appended to the numeric value (e.g. ``"ms"``).
    width:
        Width, in characters, of the longest bar.
    title:
        Optional chart title.
    markers:
        Optional ``{row index: value}`` markers (e.g. the class deadline)
        rendered as a ``|`` at the corresponding position of that row.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return "(empty chart)\n"
    markers = markers or {}
    peak = max(list(values) + list(markers.values()))
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for index, (label, value) in enumerate(zip(labels, values)):
        bar_length = int(round(width * value / peak))
        bar = "#" * bar_length
        if index in markers:
            marker_position = int(round(width * markers[index] / peak))
            padded = list(bar.ljust(max(marker_position + 1, len(bar))))
            padded[marker_position] = "|"
            bar = "".join(padded)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g} {unit}".rstrip())
    return "\n".join(lines) + "\n"
