"""Text and SVG bar charts for figure-like exhibits (Figure 1).

Both renderers share the same data model — one bar per (label, value) pair
with optional per-row marker lines (e.g. the class deadline) — and both
tolerate infinite values, which the campaign layer uses to report
overloaded classes: an infinite bar is drawn clipped at full scale and
annotated ``unbounded`` instead of crashing the chart.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_bar_chart", "render_svg_bar_chart"]


def _chart_scale(values: Sequence[float],
                 markers: dict[int, float]) -> float:
    """The value drawn at full width: the largest finite value or marker."""
    finite = [v for v in list(values) + list(markers.values())
              if not math.isinf(v)]
    peak = max(finite, default=0.0)
    return peak if peak > 0 else 1.0


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     unit: str = "", width: int = 50,
                     title: str | None = None,
                     markers: dict[int, float] | None = None) -> str:
    """Render horizontal bars scaled to the largest value.

    Parameters
    ----------
    labels / values:
        One bar per (label, value) pair.  An infinite value (an overloaded
        class) draws a full-width bar annotated ``unbounded``.
    unit:
        Unit appended to the numeric value (e.g. ``"ms"``).
    width:
        Width, in characters, of the longest bar.
    title:
        Optional chart title.
    markers:
        Optional ``{row index: value}`` markers (e.g. the class deadline)
        rendered as a ``|`` at the corresponding position of that row.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        return "(empty chart)\n"
    markers = markers or {}
    peak = _chart_scale(values, markers)
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for index, (label, value) in enumerate(zip(labels, values)):
        if math.isinf(value):
            bar_length, annotation = width, "unbounded"
        else:
            bar_length, annotation = (int(round(width * value / peak)),
                                      f"{value:g} {unit}")
        bar = "#" * bar_length
        if index in markers and not math.isinf(markers[index]):
            marker_position = int(round(width * markers[index] / peak))
            padded = list(bar.ljust(max(marker_position + 1, len(bar))))
            padded[marker_position] = "|"
            bar = "".join(padded)
        lines.append(f"{label.ljust(label_width)}  {bar} {annotation}".rstrip())
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------

#: Fixed geometry of the SVG chart (deterministic output is the point).
_BAR_HEIGHT = 18
_BAR_GAP = 8
_LABEL_WIDTH = 190
_VALUE_WIDTH = 110
_CHART_WIDTH = 420
_TOP = 34


def _svg_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_svg_bar_chart(labels: Sequence[str], values: Sequence[float],
                         unit: str = "", title: str | None = None,
                         markers: dict[int, float] | None = None) -> str:
    """Render the same horizontal bar chart as standalone SVG markup.

    The output is deterministic (fixed geometry, fixed decimal formatting,
    no timestamps) so generated figures can be committed and byte-compared
    by the drift check.  Infinite values are drawn clipped at full scale in
    a hatched style and annotated ``unbounded``; markers are vertical lines
    (the class deadline in Figure 1).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    markers = markers or {}
    peak = _chart_scale(values, markers)
    rows = len(labels)
    height = _TOP + rows * (_BAR_HEIGHT + _BAR_GAP) + 10
    width = _LABEL_WIDTH + _CHART_WIDTH + _VALUE_WIDTH
    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="12">',
        '<style>text{fill:#24292f}.bar{fill:#4878d0}'
        '.bar-unbounded{fill:#d65f5f}.marker{stroke:#d62728;'
        'stroke-width:2}.frame{fill:none;stroke:#d0d7de}</style>',
    ]
    if title:
        lines.append(f'<text x="{_LABEL_WIDTH}" y="18" font-size="14" '
                     f'font-weight="bold">{_svg_escape(title)}</text>')
    if not labels:
        lines.append(f'<text x="{_LABEL_WIDTH}" y="{_TOP + 14}">'
                     f'(empty chart)</text>')
    for index, (label, value) in enumerate(zip(labels, values)):
        y = _TOP + index * (_BAR_HEIGHT + _BAR_GAP)
        text_y = y + _BAR_HEIGHT - 5
        unbounded = math.isinf(value)
        bar = _CHART_WIDTH if unbounded \
            else int(round(_CHART_WIDTH * value / peak))
        css = "bar-unbounded" if unbounded else "bar"
        annotation = "unbounded" if unbounded else f"{value:g} {unit}".strip()
        lines.append(f'<text x="0" y="{text_y}">{_svg_escape(label)}</text>')
        lines.append(f'<rect class="{css}" x="{_LABEL_WIDTH}" y="{y}" '
                     f'width="{bar}" height="{_BAR_HEIGHT}"/>')
        if index in markers and not math.isinf(markers[index]):
            x = _LABEL_WIDTH + int(round(_CHART_WIDTH * markers[index] / peak))
            lines.append(f'<line class="marker" x1="{x}" y1="{y - 2}" '
                         f'x2="{x}" y2="{y + _BAR_HEIGHT + 2}"/>')
        lines.append(f'<text x="{_LABEL_WIDTH + _CHART_WIDTH + 8}" '
                     f'y="{text_y}">{_svg_escape(annotation)}</text>')
    lines.append(f'<rect class="frame" x="{_LABEL_WIDTH}" y="{_TOP - 6}" '
                 f'width="{_CHART_WIDTH}" '
                 f'height="{height - _TOP - 4}"/>')
    lines.append("</svg>")
    return "\n".join(lines) + "\n"
