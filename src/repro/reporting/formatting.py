"""Small formatting helpers shared by the tables and figures."""

from __future__ import annotations

import math

from repro import units

__all__ = ["format_ms", "format_bound", "format_bytes", "format_rate",
           "yes_no"]


def format_ms(seconds: float | None, digits: int = 3) -> str:
    """Format a duration in milliseconds, e.g. ``'3.000 ms'``.

    ``None`` and NaN render as ``'-'`` (no constraint / no sample).
    """
    if seconds is None or (isinstance(seconds, float) and math.isnan(seconds)):
        return "-"
    return f"{units.to_ms(seconds):.{digits}f} ms"


def format_bound(seconds: float | None, digits: int = 3) -> str:
    """Format a delay bound: like :func:`format_ms`, but infinite bounds
    render as ``'unbounded'`` (the campaign convention for overload)."""
    if isinstance(seconds, float) and math.isinf(seconds):
        return "unbounded"
    return format_ms(seconds, digits)


def format_bytes(bits: float | None) -> str:
    """Format a bit quantity in whole bytes, e.g. ``'1106 B'``.

    ``None`` / NaN render as ``'-'``; an infinite backlog (overloaded
    aggregate) renders as ``'unbounded'``.
    """
    if bits is None or (isinstance(bits, float) and math.isnan(bits)):
        return "-"
    if isinstance(bits, float) and math.isinf(bits):
        return "unbounded"
    return f"{units.to_bytes(bits):.0f} B"


def format_rate(bits_per_second: float) -> str:
    """Format a rate with an adaptive unit (kbps / Mbps)."""
    if bits_per_second >= 1e6:
        return f"{bits_per_second / 1e6:.2f} Mbps"
    if bits_per_second >= 1e3:
        return f"{bits_per_second / 1e3:.1f} kbps"
    return f"{bits_per_second:.0f} bps"


def yes_no(value: bool) -> str:
    """Render a boolean as ``'yes'`` / ``'NO'`` (violations stand out)."""
    return "yes" if value else "NO"
