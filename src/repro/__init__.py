"""Real-time communication over switched Ethernet for military applications.

A reproduction of Mifdaoui, Frances & Fraboul (CoNEXT 2005): worst-case
delay analysis of token-bucket shaped avionics traffic over Full-Duplex
Switched Ethernet with FCFS or 802.1p strict-priority multiplexing, compared
against the MIL-STD-1553B bus it is meant to replace.

Top-level convenience imports cover the most common entry points; the
sub-packages are documented in DESIGN.md:

>>> from repro import generate_real_case, PaperCaseStudy
>>> study = PaperCaseStudy(generate_real_case())
>>> study.priority_meets_all_constraints()
True

Batched what-if analysis goes through the campaign layer (README.md shows
the matching ``repro campaign`` CLI):

>>> from repro import CampaignRunner, builtin_scenarios
>>> result = CampaignRunner().run(builtin_scenarios())
>>> len(result.rows()) >= 8
True

The reproduction report — every registered experiment rendered into the
committed ``artifacts/`` tree, drift-checked by CI — is the report layer
(``repro report`` on the command line):

>>> from repro import ReportPipeline, all_experiments
>>> len(all_experiments()) >= 10
True
"""

from repro import units
from repro.analysis.paper_model import PaperCaseStudy, figure1_rows
from repro.campaigns import (
    CampaignResult,
    CampaignRunner,
    Scenario,
    WorkloadSpec,
    builtin_scenarios,
)
from repro.core.multiplexer import (
    FcfsMultiplexerAnalysis,
    StrictPriorityMultiplexerAnalysis,
)
from repro.core.endtoend import EndToEndAnalysis
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.flows.flow import Flow
from repro.flows.message_set import MessageSet
from repro.fuzz import FuzzCampaign, FuzzResult, ScenarioGenerator
from repro.flows.messages import Message, MessageKind
from repro.flows.priorities import PriorityClass, assign_priority
from repro.milstd1553.bus import Milstd1553BusSimulator
from repro.milstd1553.schedule import MajorFrameSchedule
from repro.reports import (
    ExperimentSpec,
    ReportPipeline,
    all_experiments,
    register_experiment,
)
from repro.store import ResultStore
from repro.topology.builders import (
    dual_switch_topology,
    single_switch_star,
    tree_topology,
)
from repro.topology.network import Network
from repro.workloads.realcase import RealCaseParameters, generate_real_case

__version__ = "1.0.0"

__all__ = [
    "units",
    "Message",
    "MessageKind",
    "MessageSet",
    "Flow",
    "PriorityClass",
    "assign_priority",
    "FcfsMultiplexerAnalysis",
    "StrictPriorityMultiplexerAnalysis",
    "EndToEndAnalysis",
    "PaperCaseStudy",
    "figure1_rows",
    "Network",
    "single_switch_star",
    "dual_switch_topology",
    "tree_topology",
    "EthernetNetworkSimulator",
    "MajorFrameSchedule",
    "Milstd1553BusSimulator",
    "RealCaseParameters",
    "generate_real_case",
    "Scenario",
    "WorkloadSpec",
    "CampaignRunner",
    "CampaignResult",
    "builtin_scenarios",
    "ScenarioGenerator",
    "FuzzCampaign",
    "FuzzResult",
    "ExperimentSpec",
    "ReportPipeline",
    "all_experiments",
    "register_experiment",
    "ResultStore",
    "__version__",
]
