"""Command-line interface: run the paper's experiments from a terminal.

The CLI mirrors the benchmark harness for users who just want the tables
without pytest::

    python -m repro figure1                  # E1 - Figure 1
    python -m repro violations               # E2 - FCFS violations vs capacity
    python -m repro baseline-1553            # E3 - 1553B schedule & simulation
    python -m repro compare                  # E4 - 1553B vs Ethernet
    python -m repro validate                 # E5 - bounds vs simulation
    python -m repro jitter                   # E6 - jitter comparison
    python -m repro buffers                  # buffer dimensioning
    python -m repro export --output set.csv  # dump the synthetic message set

Every command accepts ``--seed``, ``--stations`` and ``--capacity-mbps`` to
vary the workload and the link rate, and ``--workload path.csv`` to run on a
user-provided message set instead of the synthetic one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import units
from repro.analysis import (
    baseline_1553_report,
    fcfs_violation_table,
    jitter_comparison,
    technology_comparison,
    validate_bounds,
)
from repro.analysis.buffers import validate_buffer_requirements
from repro.analysis.paper_model import PaperCaseStudy
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass
from repro.reporting import format_ms, render_table, yes_no
from repro.workloads import (
    RealCaseParameters,
    generate_real_case,
    load_message_set_csv,
    save_message_set_csv,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time switched Ethernet for military applications: "
                    "reproduce the paper's experiments.")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default: 7)")
    parser.add_argument("--stations", type=int, default=16,
                        help="number of stations in the synthetic workload")
    parser.add_argument("--capacity-mbps", type=float, default=10.0,
                        help="Ethernet link capacity in Mbps (default: 10)")
    parser.add_argument("--technology-delay-us", type=float, default=16.0,
                        help="switch relaying-delay bound in µs (default: 16)")
    parser.add_argument("--workload", type=str, default=None,
                        help="CSV message set to use instead of the "
                             "synthetic case study")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, help_text in [
            ("figure1", "per-class delay bounds, FCFS vs strict priority"),
            ("violations", "FCFS violations vs link capacity"),
            ("baseline-1553", "MIL-STD-1553B schedule and simulation"),
            ("compare", "1553B vs Ethernet FCFS vs Ethernet priority"),
            ("validate", "analytic bounds vs simulated worst delays"),
            ("jitter", "per-class jitter under the three technologies"),
            ("buffers", "per-port buffer dimensioning"),
            ("export", "write the workload to a CSV file")]:
        sub = subparsers.add_parser(name, help=help_text)
        if name == "export":
            sub.add_argument("--output", required=True,
                             help="destination CSV path")
    return parser


def _load_workload(args: argparse.Namespace) -> MessageSet:
    if args.workload:
        return load_message_set_csv(args.workload)
    parameters = RealCaseParameters(station_count=args.stations)
    return generate_real_case(parameters, seed=args.seed)


def _print(table: str) -> None:
    sys.stdout.write(table)
    sys.stdout.write("\n")


def _command_figure1(message_set, capacity, technology_delay) -> int:
    study = PaperCaseStudy(message_set, capacity=capacity,
                           technology_delay=technology_delay)
    rows = [(row.priority.label, row.message_count, format_ms(row.deadline),
             format_ms(row.fcfs_bound), yes_no(row.fcfs_meets_deadline),
             format_ms(row.priority_bound),
             yes_no(row.priority_meets_deadline))
            for row in study.figure1_rows()]
    _print(render_table(
        ["class", "messages", "constraint", "FCFS", "ok", "priority", "ok"],
        rows, title="Delay bounds for the two approaches"))
    return 0 if study.priority_meets_all_constraints() else 1


def _command_violations(message_set, capacity, technology_delay) -> int:
    rows = [(f"{row.capacity / 1e6:.0f} Mbps", row.priority.name,
             format_ms(row.fcfs_bound), row.fcfs_violated_messages,
             format_ms(row.priority_bound), row.priority_violated_messages)
            for row in fcfs_violation_table(
                message_set, technology_delay=technology_delay)]
    _print(render_table(
        ["capacity", "class", "FCFS bound", "FCFS violations",
         "priority bound", "priority violations"],
        rows, title="Constraint violations vs link capacity"))
    return 0


def _command_baseline(message_set, capacity, technology_delay) -> int:
    report = baseline_1553_report(message_set)
    rows = [(index, format_ms(duration), f"{utilization * 100:.1f} %")
            for index, (duration, utilization)
            in enumerate(zip(report.minor_frame_durations,
                             report.minor_frame_utilizations))]
    _print(render_table(["minor frame", "busy time", "utilisation"], rows,
                        title="MIL-STD-1553B minor frames"))
    _print(render_table(
        ["class", "analytic worst", "simulated worst"],
        [(cls.label, format_ms(report.analytic_worst_per_class.get(cls)),
          format_ms(report.simulated_worst_per_class.get(cls)))
         for cls in PriorityClass],
        title="1553B response times per class"))
    return 0 if report.feasible else 1


def _command_compare(message_set, capacity, technology_delay) -> int:
    rows = [(row.priority.label, format_ms(row.deadline),
             format_ms(row.milstd1553_bound), yes_no(row.milstd1553_ok),
             format_ms(row.ethernet_fcfs_bound), yes_no(row.fcfs_ok),
             format_ms(row.ethernet_priority_bound), yes_no(row.priority_ok))
            for row in technology_comparison(
                message_set, capacity=capacity,
                technology_delay=technology_delay)]
    _print(render_table(
        ["class", "constraint", "1553B", "ok", "FCFS", "ok", "priority",
         "ok"], rows, title="1553B vs switched Ethernet"))
    return 0


def _command_validate(message_set, capacity, technology_delay) -> int:
    rows = validate_bounds(message_set, capacity=capacity,
                           technology_delay=technology_delay)
    _print(render_table(
        ["policy", "class", "bound", "simulated worst", "holds"],
        [(row.policy, row.priority.name, format_ms(row.analytic_bound),
          format_ms(row.simulated_worst), yes_no(row.bound_holds))
         for row in rows],
        title="Analytic bounds vs simulated worst delays"))
    return 0 if all(row.bound_holds for row in rows) else 1


def _command_jitter(message_set, capacity, technology_delay) -> int:
    rows = jitter_comparison(message_set, capacity=capacity,
                             technology_delay=technology_delay)
    _print(render_table(
        ["technology", "class", "worst jitter", "mean jitter", "streams"],
        [(row.technology, row.priority.name, format_ms(row.worst_jitter),
          format_ms(row.mean_jitter), row.streams) for row in rows],
        title="Per-stream delivery jitter"))
    return 0


def _command_buffers(message_set, capacity, technology_delay) -> int:
    rows = validate_buffer_requirements(message_set,
                                        technology_delay=technology_delay)
    _print(render_table(
        ["egress port", "flows", "backlog bound (bytes)",
         "observed max (bytes)", "within bound"],
        [(f"{row.node}->{row.toward}", row.flow_count,
          f"{row.backlog_bytes:.0f}",
          "-" if row.observed_bits != row.observed_bits
          else f"{units.to_bytes(row.observed_bits):.0f}",
          yes_no(row.observed_within_bound)) for row in rows],
        title="Buffer dimensioning per egress port"))
    return 0 if all(row.observed_within_bound for row in rows) else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    message_set = _load_workload(args)
    capacity = units.mbps(args.capacity_mbps)
    technology_delay = units.us(args.technology_delay_us)

    if args.command == "export":
        save_message_set_csv(message_set, args.output)
        sys.stdout.write(f"wrote {len(message_set)} messages to "
                         f"{args.output}\n")
        return 0

    handlers = {
        "figure1": _command_figure1,
        "violations": _command_violations,
        "baseline-1553": _command_baseline,
        "compare": _command_compare,
        "validate": _command_validate,
        "jitter": _command_jitter,
        "buffers": _command_buffers,
    }
    return handlers[args.command](message_set, capacity, technology_delay)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
