"""Command-line interface: run the paper's experiments from a terminal.

The CLI mirrors the benchmark harness for users who just want the tables
without pytest::

    python -m repro figure1                  # E1 - Figure 1
    python -m repro violations               # E2 - FCFS violations vs capacity
    python -m repro baseline-1553            # E3 - 1553B schedule & simulation
    python -m repro compare                  # E4 - 1553B vs Ethernet
    python -m repro validate                 # E5 - bounds vs simulation
    python -m repro jitter                   # E6 - jitter comparison
    python -m repro buffers                  # buffer dimensioning
    python -m repro export --output set.csv  # dump the synthetic message set
    python -m repro campaign --list          # the scenario catalogue
    python -m repro campaign --run all       # batched scenario analysis
    python -m repro simulate --seeds 8       # Monte-Carlo bound validation
    python -m repro fuzz --count 500         # randomized soundness fuzzing
    python -m repro report                   # regenerate artifacts/
    python -m repro report --check           # CI drift gate on artifacts/
    python -m repro store stats              # inspect the result store
    python -m repro serve --port 8787        # admission-control service
    python -m repro --version                # version + store cache key

Every workload-based command accepts ``--seed``, ``--stations`` and
``--capacity-mbps`` to vary the workload and the link rate, and
``--workload path.csv`` to run on a user-provided message set instead of
the synthetic one.  Commands are registered in the :data:`COMMANDS` table;
adding one means adding a handler and one table entry, not another copy of
the parser/dispatch plumbing.  Shared flag groups (the store trio, the
executor flags) live in argparse *parent parsers*, so a new command picks
them up by listing the parent, never by copy-pasting ``add_argument``
blocks.

The heavy subcommands (``campaign``, ``simulate``, ``report``) persist
every finished unit of work in the content-addressed result store
(:mod:`repro.store`, ``.repro-store/`` by default, ``--store DIR`` /
``$REPRO_STORE_DIR`` to relocate, ``--no-store`` to disable).  ``report``
reuses stored experiments automatically (a warm re-run recomputes
nothing); ``campaign``/``simulate`` reuse finished cells with
``--resume`` — e.g. to pick an interrupted run back up.  The same four
commands run their cells through the fault-tolerant executor
(:mod:`repro.exec`): ``--retries``/``--timeout`` bound how hard a cell
is retried, ``--max-failures``/``--fail-fast`` bound how much failure a
run tolerates, and ``--faults`` injects deterministic faults for chaos
testing.  ``serve`` reuses the same flags with service semantics:
``--timeout`` is the per-request deadline budget and ``--faults`` drives
the request/journal chaos kinds.  Failed cells are listed in a summary
table before the final ``error: ...`` line.  Errors are reported as a
single ``error: ...`` line with exit code 2, never a traceback.

The same five commands share one ``--engine`` flag selecting the WCRT
bound engine(s) (``calculus``, ``holistic``, ``trajectory``, a comma
list, or ``all``; see :mod:`repro.analysis.engines`).  The default is
always the paper's calculus engine and the canonical outputs never
change shape; a non-default selection adds cross-engine tables and
soundness checks.  ``serve`` only accepts the calculus engine (its
incremental admission math has no other backend) and an unknown engine
name dies on the usual ``error:`` line.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import units
from repro.analysis.engines import (
    DEFAULT_ENGINE,
    DEFAULT_ENGINES,
    ENGINE_CHOICES,
    engine_names,
    resolve_engines,
)
from repro.analysis import (
    baseline_1553_report,
    fcfs_violation_table,
    jitter_comparison,
    technology_comparison,
    validate_bounds,
)
from repro.analysis.buffers import validate_buffer_requirements
from repro.analysis.paper_model import PaperCaseStudy
from repro import reports
from repro.campaigns import CampaignRunner, builtin_scenarios, select
from repro.campaigns.scenario import TopologySpec
from repro.errors import (
    ConfigurationError,
    ExecutionFailedError,
    ReproError,
    UnknownExperimentError,
    UnknownScenarioError,
)
from repro.exec import (
    FAULTS_ENV,
    ExecPolicy,
    ExecutionReport,
    FaultPlan,
    RunHalted,
)
from repro.fuzz import FuzzCampaign, persist_interesting
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR
from repro.fuzz.generator import GeneratorConfig
from repro.serve import (
    AdmissionEngine,
    AdmissionJournal,
    AdmissionServer,
    ServeConfig,
)
from repro.store import (
    DEFAULT_STORE_DIR,
    ResultStore,
    all_code_versions,
    code_version,
    combined_token,
    fingerprint,
)
from repro.simulation.campaign import POLICIES, SCENARIOS, SimulationCampaign
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass
from repro.topology.graph import load_topology_file
from repro.topology.routing import RoutingEngine
from repro.reporting import format_ms, render_table, yes_no
from repro.workloads import (
    RealCaseParameters,
    generate_real_case,
    load_message_set_csv,
    save_message_set_csv,
)

__all__ = ["main", "build_parser", "COMMANDS"]


@dataclass(frozen=True)
class CommandContext:
    """Everything a command handler may need, resolved once in :func:`main`."""

    args: argparse.Namespace
    #: The selected message set; ``None`` for commands that manage their own
    #: workloads (the campaign subcommand).
    message_set: MessageSet | None
    capacity: float
    technology_delay: float


@dataclass(frozen=True)
class CommandSpec:
    """One row of the CLI dispatch table."""

    name: str
    help: str
    handler: Callable[[CommandContext], int]
    #: Adds command-specific arguments to the subparser, if any.
    configure: Callable[[argparse.ArgumentParser], None] | None = None
    #: False for commands that do not analyse the shared workload.
    needs_workload: bool = True
    #: Shared flag groups (parent parsers) the subcommand inherits —
    #: the store trio and/or the executor flags.
    parents: tuple[argparse.ArgumentParser, ...] = ()


def _print(table: str) -> None:
    sys.stdout.write(table)
    sys.stdout.write("\n")


# ---------------------------------------------------------------------------
# Experiment handlers
# ---------------------------------------------------------------------------

def _command_figure1(ctx: CommandContext) -> int:
    study = PaperCaseStudy(ctx.message_set, capacity=ctx.capacity,
                           technology_delay=ctx.technology_delay)
    rows = [(row.priority.label, row.message_count, format_ms(row.deadline),
             format_ms(row.fcfs_bound), yes_no(row.fcfs_meets_deadline),
             format_ms(row.priority_bound),
             yes_no(row.priority_meets_deadline))
            for row in study.figure1_rows()]
    _print(render_table(
        ["class", "messages", "constraint", "FCFS", "ok", "priority", "ok"],
        rows, title="Delay bounds for the two approaches"))
    return 0 if study.priority_meets_all_constraints() else 1


def _command_violations(ctx: CommandContext) -> int:
    rows = [(f"{row.capacity / 1e6:.0f} Mbps", row.priority.name,
             format_ms(row.fcfs_bound), row.fcfs_violated_messages,
             format_ms(row.priority_bound), row.priority_violated_messages)
            for row in fcfs_violation_table(
                ctx.message_set, technology_delay=ctx.technology_delay)]
    _print(render_table(
        ["capacity", "class", "FCFS bound", "FCFS violations",
         "priority bound", "priority violations"],
        rows, title="Constraint violations vs link capacity"))
    return 0


def _command_baseline(ctx: CommandContext) -> int:
    report = baseline_1553_report(ctx.message_set)
    rows = [(index, format_ms(duration), f"{utilization * 100:.1f} %")
            for index, (duration, utilization)
            in enumerate(zip(report.minor_frame_durations,
                             report.minor_frame_utilizations))]
    _print(render_table(["minor frame", "busy time", "utilisation"], rows,
                        title="MIL-STD-1553B minor frames"))
    _print(render_table(
        ["class", "analytic worst", "simulated worst"],
        [(cls.label, format_ms(report.analytic_worst_per_class.get(cls)),
          format_ms(report.simulated_worst_per_class.get(cls)))
         for cls in PriorityClass],
        title="1553B response times per class"))
    return 0 if report.feasible else 1


def _command_compare(ctx: CommandContext) -> int:
    rows = [(row.priority.label, format_ms(row.deadline),
             format_ms(row.milstd1553_bound), yes_no(row.milstd1553_ok),
             format_ms(row.ethernet_fcfs_bound), yes_no(row.fcfs_ok),
             format_ms(row.ethernet_priority_bound), yes_no(row.priority_ok))
            for row in technology_comparison(
                ctx.message_set, capacity=ctx.capacity,
                technology_delay=ctx.technology_delay)]
    _print(render_table(
        ["class", "constraint", "1553B", "ok", "FCFS", "ok", "priority",
         "ok"], rows, title="1553B vs switched Ethernet"))
    return 0


def _command_validate(ctx: CommandContext) -> int:
    rows = validate_bounds(ctx.message_set, capacity=ctx.capacity,
                           technology_delay=ctx.technology_delay)
    _print(render_table(
        ["policy", "class", "bound", "simulated worst", "holds"],
        [(row.policy, row.priority.name, format_ms(row.analytic_bound),
          format_ms(row.simulated_worst), yes_no(row.bound_holds))
         for row in rows],
        title="Analytic bounds vs simulated worst delays"))
    return 0 if all(row.bound_holds for row in rows) else 1


def _command_jitter(ctx: CommandContext) -> int:
    rows = jitter_comparison(ctx.message_set, capacity=ctx.capacity,
                             technology_delay=ctx.technology_delay)
    _print(render_table(
        ["technology", "class", "worst jitter", "mean jitter", "streams"],
        [(row.technology, row.priority.name, format_ms(row.worst_jitter),
          format_ms(row.mean_jitter), row.streams) for row in rows],
        title="Per-stream delivery jitter"))
    return 0


def _command_buffers(ctx: CommandContext) -> int:
    rows = validate_buffer_requirements(
        ctx.message_set, technology_delay=ctx.technology_delay)
    _print(render_table(
        ["egress port", "flows", "backlog bound (bytes)",
         "observed max (bytes)", "within bound"],
        [(f"{row.node}->{row.toward}", row.flow_count,
          f"{row.backlog_bytes:.0f}",
          "-" if row.observed_bits != row.observed_bits
          else f"{units.to_bytes(row.observed_bits):.0f}",
          yes_no(row.observed_within_bound)) for row in rows],
        title="Buffer dimensioning per egress port"))
    return 0 if all(row.observed_within_bound for row in rows) else 1


def _command_export(ctx: CommandContext) -> int:
    save_message_set_csv(ctx.message_set, ctx.args.output)
    sys.stdout.write(f"wrote {len(ctx.message_set)} messages to "
                     f"{ctx.args.output}\n")
    return 0


# ---------------------------------------------------------------------------
# Result-store plumbing shared by campaign / simulate / report / serve
# ---------------------------------------------------------------------------

def _store_parent(resume_help: str | None = None
                  ) -> argparse.ArgumentParser:
    """A parent parser carrying the ``--store``/``--no-store``/``--resume``
    trio.

    Commands opt in by listing the shared instance in their
    :attr:`CommandSpec.parents` — one definition, not one copy per
    subcommand.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--store", metavar="DIR", default=None,
                        help="result-store directory (default: "
                             f"$REPRO_STORE_DIR or {DEFAULT_STORE_DIR})")
    parent.add_argument("--no-store", action="store_true",
                        help="do not read or write the result store")
    parent.add_argument("--resume", action="store_true",
                        help=resume_help
                        or "reuse units of work already in the store "
                           "(e.g. cells finished before an interruption)")
    return parent


#: The store trio shared by campaign / simulate / fuzz / serve.
_STORE_FLAGS = _store_parent()
#: Report's variant differs only in the ``--resume`` help text.
_REPORT_STORE_FLAGS = _store_parent(
    "accepted for symmetry with campaign/simulate: report already "
    "reuses stored experiments by default (--no-store forces a full "
    "rebuild)")


def _resolve_store(args: argparse.Namespace) -> ResultStore | None:
    """The run's store handle, honouring ``--no-store``/``--store``."""
    if getattr(args, "no_store", False):
        return None
    return ResultStore(getattr(args, "store", None))


def _store_line(store: ResultStore | None, *, resumed: int | None = None,
                total: int | None = None, unit: str = "cells",
                show_stats: bool = True) -> str:
    """One ``store: ...`` status line for the end of a run.

    ``show_stats=False`` drops the hit/miss/write counters — worker
    processes keep their own counters under ``--jobs N``, so the parent's
    would read as all zeros.
    """
    if store is None:
        return "store: disabled\n"
    parts = []
    if show_stats:
        parts.append(store.stats.describe())
    if resumed is not None and total is not None:
        parts.append(f"resumed {resumed}/{total} {unit}")
    return f"store: {', '.join(parts)} under {store.root}\n"


# ---------------------------------------------------------------------------
# Fault-tolerant execution flags shared by campaign / simulate / fuzz /
# report / serve
# ---------------------------------------------------------------------------

def _exec_parent() -> argparse.ArgumentParser:
    """A parent parser carrying the executor policy flags.

    For the batch commands these bound retries and the failure budget;
    ``serve`` reuses the same surface with service semantics
    (``--timeout`` = per-request deadline budget, ``--faults`` = the
    request/journal chaos plan).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--retries", type=int, default=2, metavar="N",
                        help="re-run a failed cell up to N times before "
                             "recording it as failed (default: 2)")
    parent.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell watchdog: a cell running longer "
                             "than this counts as a failed attempt "
                             "(default: none); for serve, the "
                             "per-request deadline budget")
    parent.add_argument("--max-failures", type=int, default=None,
                        metavar="N",
                        help="abort the run once more than N cells have "
                             "failed for good (default: no budget)")
    parent.add_argument("--fail-fast", action="store_true",
                        help="abort the run at the first permanently "
                             "failed cell")
    parent.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault-injection plan, e.g. "
                             "'crash@3,exc@5.1' (default: $"
                             f"{FAULTS_ENV}; chaos testing only)")
    return parent


#: The executor flags shared by campaign / simulate / fuzz / report / serve.
_EXEC_FLAGS = _exec_parent()


def _resolve_exec(args: argparse.Namespace) -> tuple[ExecPolicy, str | None]:
    """``(policy, fault spec)`` from the exec flags, validated up front.

    The fault plan is parsed here — including one inherited from
    ``$REPRO_FAULTS`` — so a bad spec dies on the usual ``error:`` line
    before any work starts, not inside a worker process.
    """
    try:
        policy = ExecPolicy(retries=args.retries, timeout=args.timeout,
                            fail_fast=args.fail_fast,
                            max_failures=args.max_failures)
        spec = (args.faults if args.faults is not None
                else os.environ.get(FAULTS_ENV))
        FaultPlan.parse(spec)
    except ValueError as error:
        raise ConfigurationError(str(error)) from None
    return policy, args.faults


# ---------------------------------------------------------------------------
# Bound-engine selection shared by campaign / simulate / fuzz / report /
# serve
# ---------------------------------------------------------------------------

def _engine_parent() -> argparse.ArgumentParser:
    """A parent parser carrying the shared ``--engine`` flag.

    One definition keeps the vocabulary (and the error message for an
    unknown engine) identical across every subcommand that analyses
    bounds.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--engine", metavar="NAME", default=None,
                        help="WCRT bound engine(s) to run: one of "
                             f"{', '.join(ENGINE_CHOICES)}, or a comma "
                             f"list (default: {DEFAULT_ENGINE})")
    return parent


#: The ``--engine`` flag shared by campaign / simulate / fuzz / report /
#: serve.
_ENGINE_FLAGS = _engine_parent()


def _resolve_engines(args: argparse.Namespace) -> tuple[str, ...]:
    """The validated ``--engine`` selection of a run.

    Raises :class:`~repro.errors.UnknownEngineError` (a
    :class:`~repro.errors.ConfigurationError`) for names outside the
    registry, which :func:`main` renders as the one-line ``error:``
    convention with exit code 2.
    """
    return resolve_engines(getattr(args, "engine", None))


def _write_failure_table(failures, *, unit: str = "cell") -> None:
    """The one-line-per-cell failure summary, on stderr."""
    rows = [(failure.index, failure.label, failure.attempts, failure.kind,
             failure.error) for failure in sorted(failures,
                                                  key=lambda f: f.index)]
    sys.stderr.write(render_table(
        ["cell", unit, "attempts", "kind", "last error"], rows,
        title=f"Failed {unit}s") + "\n")


def _report_exec_failures(report: ExecutionReport | None, *,
                          unit: str = "cell") -> int | None:
    """Render failed cells and the ``error:`` line; ``None`` when clean.

    Partial results were already printed by the caller — this adds the
    per-cell table and the single trailing error line the exit-code-2
    contract promises, so scripts keep a one-line failure signal while
    humans still get the details.
    """
    if report is None or report.ok:
        return None
    if report.failures:
        _write_failure_table(report.failures, unit=unit)
    sys.stderr.write(f"error: {report.describe()}"
                     " (completed cells were kept in the store; re-run"
                     " with --resume to retry the rest)\n")
    return 2


# ---------------------------------------------------------------------------
# Campaign subcommand
# ---------------------------------------------------------------------------

def _configure_campaign(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--list", action="store_true", dest="list_scenarios",
                     help="list the registered scenarios and exit")
    sub.add_argument("--run", metavar="NAMES", default=None,
                     help="run scenarios: 'all', or a comma-separated list "
                          "of names/tags (e.g. 'paper-real-case,ladder')")
    sub.add_argument("--naive", action="store_true",
                     help="disable cross-scenario memoization (baseline "
                          "mode used by the benchmarks)")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="evaluate scenarios in N worker processes "
                          "(default: 1, in-process)")
    sub.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the raw result rows to a CSV file")
    sub.add_argument("--markdown", action="store_true",
                     help="render the result tables as markdown")


def _command_campaign(ctx: CommandContext) -> int:
    args = ctx.args
    try:
        # Validate the engine selection before any other branch (the bare
        # listing included): a typo should fail fast, not print a table.
        engines = _resolve_engines(args)
    except ConfigurationError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    ignored = [flag for flag, is_default in (
        ("--workload", args.workload is None),
        ("--stations", args.stations == 16),
        ("--seed", args.seed == 7),
        ("--capacity-mbps", args.capacity_mbps == 10.0),
        ("--technology-delay-us", args.technology_delay_us == 16.0),
    ) if not is_default]
    if ignored:
        sys.stderr.write(
            f"warning: campaign scenarios define their own workloads and "
            f"link parameters; ignoring {', '.join(ignored)}\n")
    if args.list_scenarios or not args.run:
        _print(render_table(
            ["name", "configuration", "description"],
            [(s.name, s.describe(), s.description)
             for s in builtin_scenarios()],
            title=f"Registered scenarios ({len(builtin_scenarios())})"))
        return 0
    if args.jobs < 1:
        sys.stderr.write(f"error: --jobs must be at least 1, "
                         f"got {args.jobs}\n")
        return 2
    try:
        scenarios = select(args.run)
    except UnknownScenarioError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    store = _resolve_store(args)
    policy, fault_spec = _resolve_exec(args)
    runner = CampaignRunner(memoize=not args.naive, jobs=args.jobs,
                            store=store, resume=args.resume,
                            exec_policy=policy, faults=fault_spec,
                            engines=engines)
    result = runner.run(scenarios)
    _print(result.to_markdown() if args.markdown else result.to_table())
    mode = "naive" if args.naive else "memoized"
    if args.jobs > 1:
        mode += f", {args.jobs} jobs"
    sys.stdout.write(
        f"{len(result.results)} scenarios, {len(result.rows())} rows in "
        f"{result.elapsed * 1e3:.1f} ms ({mode})\n")
    if store is not None:
        sys.stdout.write(_store_line(
            store, resumed=result.resumed, total=len(result.results),
            unit="scenarios", show_stats=args.jobs == 1))
    if args.csv:
        result.write_csv(args.csv)
        sys.stdout.write(f"wrote {len(result.rows())} rows to {args.csv}\n")
    failed = _report_exec_failures(result.exec_report, unit="scenario")
    return failed if failed is not None else 0


# ---------------------------------------------------------------------------
# Simulate subcommand (Monte-Carlo simulation campaigns)
# ---------------------------------------------------------------------------

def _configure_simulate(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--seeds", type=int, default=5, metavar="N",
                     help="number of simulation seeds per cell "
                          "(seeds 1..N; default: 5)")
    sub.add_argument("--scenarios", default=",".join(SCENARIOS),
                     metavar="LIST",
                     help="comma-separated release scenarios "
                          f"(default: {','.join(SCENARIOS)})")
    sub.add_argument("--policies", default=",".join(POLICIES),
                     metavar="LIST",
                     help="comma-separated multiplexing policies "
                          f"(default: {','.join(POLICIES)})")
    sub.add_argument("--size-factors", default="1", metavar="LIST",
                     help="comma-separated station-count multipliers "
                          "(default: 1)")
    sub.add_argument("--duration-ms", type=float, default=320.0,
                     help="simulated horizon per cell in ms (default: 320)")
    sub.add_argument("--topology", metavar="FAMILY|FILE", default=None,
                     help="simulate on a multi-hop graph topology instead "
                          "of the shared star: a family name (diamond, "
                          "ring, star, random) or a .json/.csv topology "
                          "file whose end systems are named like the "
                          "workload's stations")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="simulate cells in N worker processes "
                          "(default: 1, in-process)")
    sub.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the aggregated rows to a CSV file")
    sub.add_argument("--markdown", action="store_true",
                     help="render the result table as markdown")


def _resolve_simulate_topology(args: argparse.Namespace):
    """The ``--topology`` value as a spec the campaign accepts.

    A family name becomes a scalable :class:`TopologySpec` (it follows
    ``--stations`` and ``--size-factors``); a path is loaded, validated
    and checked against the synthetic workload's station names.
    """
    if args.topology is None:
        return None
    if args.topology in TopologySpec._FAMILIES:
        return TopologySpec(kind="graph", graph_family=args.topology)
    spec = load_topology_file(args.topology).validated()
    expected = {f"station-{index:02d}"
                for index in range(len(spec.end_systems))}
    if set(spec.end_systems) != expected:
        raise ConfigurationError(
            f"{args.topology}: end systems must be named station-00.."
            f"station-{len(spec.end_systems) - 1:02d} to carry the "
            f"synthetic workload; got {sorted(spec.end_systems)}")
    if args.stations != len(spec.end_systems):
        raise ConfigurationError(
            f"{args.topology}: the file defines "
            f"{len(spec.end_systems)} end systems; pass --stations "
            f"{len(spec.end_systems)} to match")
    return spec


def _command_simulate(ctx: CommandContext) -> int:
    args = ctx.args
    if args.seeds < 1:
        sys.stderr.write(f"error: --seeds must be at least 1, "
                         f"got {args.seeds}\n")
        return 2
    if args.jobs < 1:
        sys.stderr.write(f"error: --jobs must be at least 1, "
                         f"got {args.jobs}\n")
        return 2
    try:
        size_factors = tuple(int(part) for part
                             in args.size_factors.split(",") if part)
    except ValueError:
        sys.stderr.write(f"error: --size-factors must be a comma-separated "
                         f"list of integers, got {args.size_factors!r}\n")
        return 2
    message_set = None
    if args.workload:
        message_set = load_message_set_csv(args.workload)
        if size_factors != (1,):
            sys.stderr.write("error: --size-factors other than 1 need the "
                             "synthetic workload (drop --workload)\n")
            return 2
        if args.topology is not None:
            sys.stderr.write("error: --topology needs the synthetic "
                             "workload (drop --workload)\n")
            return 2
    store = _resolve_store(args)
    policy, fault_spec = _resolve_exec(args)
    try:
        topology = _resolve_simulate_topology(args)
        campaign = SimulationCampaign(
            station_count=args.stations,
            workload_seed=args.seed,
            message_set=message_set,
            seeds=tuple(range(1, args.seeds + 1)),
            scenarios=tuple(part for part in args.scenarios.split(",")
                            if part),
            policies=tuple(part for part in args.policies.split(",")
                           if part),
            size_factors=size_factors,
            duration=units.ms(args.duration_ms),
            capacity=ctx.capacity,
            technology_delay=ctx.technology_delay,
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            topology=topology,
            exec_policy=policy,
            faults=fault_spec,
            engines=_resolve_engines(args))
    except ConfigurationError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    result = campaign.run()
    _print(result.to_markdown() if args.markdown else result.to_table())
    # Resumed cells carry their *original* event counts; only freshly
    # simulated events may enter the throughput figure, or a warm
    # --resume run would report an absurd events/s.
    fresh_events = sum(outcome.events_processed
                       for outcome in result.outcomes
                       if not outcome.resumed)
    jobs_note = f", {args.jobs} jobs" if args.jobs > 1 else ""
    if fresh_events and result.elapsed > 0:
        rate_note = (f" ({fresh_events / result.elapsed:,.0f} events/s"
                     f"{jobs_note})")
    else:
        rate_note = f" (all cells resumed{jobs_note})"
    engine_note = ""
    if result.engine_rows:
        engine_note = (f"; engine bounds hold: "
                       f"{'yes' if result.all_engine_bounds_hold else 'NO'}")
    sys.stdout.write(
        f"{result.cells} cells, {len(result.rows)} rows, "
        f"{fresh_events} events in {result.elapsed:.2f} s"
        f"{rate_note}; "
        f"bounds hold: {'yes' if result.all_bounds_hold else 'NO'}"
        f"{engine_note}\n")
    if store is not None:
        sys.stdout.write(_store_line(
            store, resumed=result.resumed, total=result.cells,
            unit="cells", show_stats=args.jobs == 1))
    if args.csv:
        result.write_csv(args.csv)
        sys.stdout.write(f"wrote {len(result.rows)} rows to {args.csv}\n")
    failed = _report_exec_failures(result.exec_report)
    if failed is not None:
        return failed
    return 0 if result.all_bounds_hold and result.all_engine_bounds_hold \
        else 1


# ---------------------------------------------------------------------------
# Fuzz subcommand (randomized soundness campaigns)
# ---------------------------------------------------------------------------

def _configure_fuzz(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--count", type=int, default=100, metavar="N",
                     help="number of generated scenarios (default: 100)")
    sub.add_argument("--seed", type=int, default=0, metavar="N",
                     help="generator master seed (default: 0; same seed "
                          "=> bit-identical scenario stream)")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="evaluate cells in N worker processes "
                          "(default: 1, in-process)")
    sub.add_argument("--duration-ms", type=float, default=160.0,
                     help="simulated horizon per cell in ms (default: 160)")
    sub.add_argument("--multi-hop", action="store_true", dest="multi_hop",
                     help="draw only multi-hop graph topologies (diamond/"
                          "ring/star/random families) instead of the "
                          "default star-weighted kind mix")
    sub.add_argument("--tightness", type=float, default=0.9,
                     metavar="RATIO",
                     help="near-tight corpus threshold on simulated/bound "
                          "(default: 0.9)")
    sub.add_argument("--corpus", metavar="DIR", default=None,
                     help="regression-corpus directory "
                          f"(default: {DEFAULT_CORPUS_DIR})")
    sub.add_argument("--no-corpus", action="store_true",
                     help="do not minimize/persist interesting scenarios "
                          "into the corpus")
    sub.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the per-cell rows to a CSV file")
    sub.add_argument("--markdown", action="store_true",
                     help="render the result table as markdown")


def _command_fuzz(ctx: CommandContext) -> int:
    args = ctx.args
    if args.count < 1:
        sys.stderr.write(f"error: --count must be at least 1, "
                         f"got {args.count}\n")
        return 2
    if args.seed < 0:
        sys.stderr.write(f"error: --seed must be non-negative, "
                         f"got {args.seed}\n")
        return 2
    if args.jobs < 1:
        sys.stderr.write(f"error: --jobs must be at least 1, "
                         f"got {args.jobs}\n")
        return 2
    store = _resolve_store(args)
    policy, fault_spec = _resolve_exec(args)
    try:
        campaign = FuzzCampaign(
            count=args.count,
            seed=args.seed,
            config=(GeneratorConfig.multi_hop() if args.multi_hop
                    else None),
            duration=units.ms(args.duration_ms),
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            tightness_threshold=args.tightness,
            exec_policy=policy,
            faults=fault_spec,
            engines=_resolve_engines(args))
    except ConfigurationError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    result = campaign.run()
    _print(result.to_markdown() if args.markdown else result.to_table())
    # As in `simulate`: resumed cells report their original event counts,
    # so only freshly evaluated cells may enter the throughput figure.
    fresh_events = sum(outcome.events_processed
                      for outcome in result.outcomes
                      if not outcome.resumed)
    jobs_note = f", {args.jobs} jobs" if args.jobs > 1 else ""
    if fresh_events and result.elapsed > 0:
        rate_note = (f" ({fresh_events / result.elapsed:,.0f} events/s"
                     f"{jobs_note})")
    else:
        rate_note = f" (all cells resumed{jobs_note})"
    tightness_note = ("-" if result.max_tightness != result.max_tightness
                      else f"{result.max_tightness:.3f}")
    engine_note = ""
    if len(campaign.engines) > 1:
        engine_note = f"; engines: {', '.join(campaign.engines)}"
    sys.stdout.write(
        f"{result.cells} cells, {result.violation_count} violations, "
        f"max tightness {tightness_note} in {result.elapsed:.2f} s"
        f"{rate_note}; "
        f"invariants hold: "
        f"{'yes' if result.all_invariants_hold else 'NO'}"
        f"{engine_note}\n")
    if store is not None:
        sys.stdout.write(_store_line(
            store, resumed=result.resumed, total=result.cells,
            unit="cells", show_stats=args.jobs == 1))
    if not args.no_corpus:
        update = persist_interesting(
            result, generator_seed=args.seed,
            directory=args.corpus)
        sys.stdout.write(update.describe() + "\n")
    if args.csv:
        result.write_csv(args.csv)
        row_count = sum(len(outcome.bound_rows)
                        for outcome in result.outcomes)
        sys.stdout.write(f"wrote {row_count} rows to {args.csv}\n")
    failed = _report_exec_failures(result.exec_report)
    if failed is not None:
        return failed
    return 0 if result.all_invariants_hold else 1


# ---------------------------------------------------------------------------
# Report subcommand
# ---------------------------------------------------------------------------

def _configure_report(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--list", action="store_true", dest="list_experiments",
                     help="list the registered experiments and exit")
    sub.add_argument("--experiment", metavar="NAMES", default=None,
                     help="render only these experiments (comma-separated; "
                          "default: the whole catalogue)")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="build experiments in N worker processes "
                          "(default: 1, in-process)")
    sub.add_argument("--output", metavar="DIR",
                     default=reports.DEFAULT_ARTIFACTS_DIR,
                     help="artifacts directory (default: artifacts/)")
    sub.add_argument("--check", action="store_true",
                     help="re-render into a temporary directory and fail "
                          "on any difference with the committed artifacts "
                          "(the CI drift gate); writes nothing")


def _command_report(ctx: CommandContext) -> int:
    args = ctx.args
    if args.jobs < 1:
        sys.stderr.write(f"error: --jobs must be at least 1, "
                         f"got {args.jobs}\n")
        return 2
    # Validated for the shared exit-2 contract; the `engines` report
    # experiment always ranks every registered engine, so any known
    # selection renders the same committed artifacts.
    _resolve_engines(args)
    if args.list_experiments:
        _print(render_table(
            ["name", "exhibit", "description"],
            [(spec.name, spec.exhibit, spec.description)
             for spec in reports.all_experiments()],
            title=f"Registered experiments "
                  f"({len(reports.all_experiments())})"))
        return 0
    try:
        selected = reports.select_experiments(args.experiment)
    except UnknownExperimentError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    store = _resolve_store(args)
    policy, fault_spec = _resolve_exec(args)
    pipeline = reports.ReportPipeline(args.output, experiments=selected,
                                      store=store, exec_policy=policy,
                                      faults=fault_spec)
    try:
        return _run_report(pipeline, args, store, selected)
    except ExecutionFailedError as error:
        # The pipeline needs every experiment to stitch the artifact
        # tree, so failed builds surface as an exception; render the same
        # per-cell table the campaign commands print.
        _write_failure_table(error.failures, unit="experiment")
        sys.stderr.write(f"error: {error}\n")
        return 2


def _run_report(pipeline, args: argparse.Namespace,
                store: ResultStore | None, selected) -> int:
    if args.check:
        problems = pipeline.check(jobs=args.jobs)
        for problem in problems:
            sys.stderr.write(f"report-check: {problem}\n")
        if not problems:
            sys.stdout.write(
                f"report-check: OK ({len(selected)} experiments match "
                f"the committed artifacts under {args.output})\n")
        if store is not None:
            sys.stdout.write(_store_line(
                store, resumed=len(pipeline.last_cached),
                total=len(selected), unit="experiments"))
        return 1 if problems else 0
    run = pipeline.run(jobs=args.jobs)
    sys.stdout.write(f"wrote {len(run.files)} artifacts under "
                     f"{args.output}: {run.summary()}\n")
    if store is not None:
        sys.stdout.write(_store_line(
            store, resumed=len(run.cached_experiments),
            total=len(run.experiments), unit="experiments"))
    if not pipeline.full_catalogue:
        sys.stdout.write("note: partial run — REPORT.md and values.json "
                         "are only refreshed by a full `repro report`\n")
    return 0


# ---------------------------------------------------------------------------
# Store subcommand (inspect / manage the result store)
# ---------------------------------------------------------------------------

def _configure_store(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("action", choices=("stats", "gc", "clear", "key"),
                     help="stats: summarise the store; gc: drop records "
                          "invalidated by code edits; clear: drop "
                          "everything; key: print the combined "
                          "code-version token (the CI cache key)")
    sub.add_argument("--store", metavar="DIR", default=None,
                     help="result-store directory (default: "
                          f"$REPRO_STORE_DIR or {DEFAULT_STORE_DIR})")


def _command_store(ctx: CommandContext) -> int:
    args = ctx.args
    if args.action == "key":
        sys.stdout.write(combined_token() + "\n")
        return 0
    store = ResultStore(args.store)
    if args.action == "clear":
        removed = store.clear()
        sys.stdout.write(f"store: removed {removed} records "
                         f"from {store.root}\n")
        return 0
    tokens = all_code_versions()
    if args.action == "gc":
        kept, removed, freed = store.gc(tokens)
        sys.stdout.write(f"store: gc kept {kept} records, removed "
                         f"{removed} stale ones ({freed} bytes) "
                         f"under {store.root}\n")
        return 0
    # stats
    groups: dict[tuple[str, str], list] = {}
    for entry in store.entries():
        groups.setdefault((entry.subsystem, entry.kind), []).append(entry)
    rows = [(subsystem, kind, len(entries),
             sum(entry.size_bytes for entry in entries),
             sum(1 for entry in entries
                 if tokens.get(subsystem) != entry.token))
            for (subsystem, kind), entries in sorted(groups.items())]
    _print(render_table(
        ["subsystem", "kind", "records", "bytes", "stale"], rows,
        title=f"Result store under {store.root}"))
    for name, token in sorted(tokens.items()):
        sys.stdout.write(f"token {name}: {token[:16]}\n")
    total = sum(len(entries) for entries in groups.values())
    sys.stdout.write(f"{total} records, {store.size_bytes()} bytes; "
                     f"cache key {combined_token()[:16]}\n")
    # Same counter shape the serve health endpoint reports, so the CLI
    # and the service can never disagree about store integrity.
    health = store.health(audit=True)
    sys.stdout.write(
        f"integrity: {health['corrupt_records']} corrupt records, "
        f"{health['corrupt_index_lines']} corrupt index lines, "
        f"{health['write_errors']} write errors — "
        f"{'DEGRADED' if health['degraded'] else 'healthy'} "
        f"(corrupt entries are skipped; `store gc` removes them)\n")
    return 0


# ---------------------------------------------------------------------------
# Serve subcommand (the long-lived admission-control service)
# ---------------------------------------------------------------------------

#: Deadline budget applied when ``--timeout`` is not given (seconds).
DEFAULT_SERVE_DEADLINE = 0.25


def _configure_serve(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--scenario", metavar="NAME",
                     default="paper-real-case",
                     help="campaign scenario whose workload and topology "
                          "the service answers against "
                          "(default: paper-real-case)")
    sub.add_argument("--policy", metavar="NAME", default=None,
                     help="multiplexing policy admission is decided "
                          "under (default: the scenario's first policy)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8787,
                     help="bind port; 0 picks a free port and reports "
                          "it on the startup line (default: 8787)")
    sub.add_argument("--queue-depth", type=int, default=64, metavar="N",
                     help="bounded admission-queue depth; beyond it "
                          "requests are shed with 503 (default: 64)")
    sub.add_argument("--shed-p99-ms", type=float, default=None,
                     metavar="MS",
                     help="shed new requests once the rolling p99 "
                          "latency crosses this (default: twice the "
                          "deadline budget)")
    sub.add_argument("--journal", metavar="DIR", default=None,
                     help="journal directory for crash-safe admission "
                          "state (default: no persistence)")
    sub.add_argument("--checkpoint-every", type=int, default=256,
                     metavar="N",
                     help="fold the journal into a checkpoint every N "
                          "appends (default: 256)")


def _command_serve(ctx: CommandContext) -> int:
    args = ctx.args
    try:
        scenarios = select(args.scenario)
    except UnknownScenarioError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    if len(scenarios) != 1:
        sys.stderr.write(
            f"error: --scenario must select exactly one scenario; "
            f"{args.scenario!r} selects {len(scenarios)}\n")
        return 2
    scenario = scenarios[0]
    engines = _resolve_engines(args)
    if engines != DEFAULT_ENGINES:
        sys.stderr.write(
            f"error: serve only supports --engine {DEFAULT_ENGINE} (the "
            f"incremental admission math has no other backend); got "
            f"{','.join(engines)}\n")
        return 2
    store = _resolve_store(args)
    _, fault_spec = _resolve_exec(args)
    plan = FaultPlan.parse(fault_spec if fault_spec is not None
                           else os.environ.get(FAULTS_ENV))
    config = ServeConfig(
        host=args.host, port=args.port,
        deadline=(args.timeout if args.timeout is not None
                  else DEFAULT_SERVE_DEADLINE),
        queue_depth=args.queue_depth,
        shed_p99=(units.ms(args.shed_p99_ms)
                  if args.shed_p99_ms is not None else None),
        checkpoint_every=args.checkpoint_every)
    journal = None
    engine = None
    if args.journal:
        journal = AdmissionJournal(args.journal,
                                   checkpoint_every=args.checkpoint_every)
        state = journal.recover()
        if not state.empty or state.checkpoint_seq:
            engine = AdmissionEngine(scenario, policy=args.policy,
                                     store=store, preload=False)
            engine.replay([{"op": "admit", "flow": flow}
                           for flow in state.flows]
                          + list(state.operations))
            note = (f"recovered {len(state.flows)} flows + "
                    f"{len(state.operations)} journaled ops")
            if state.corrupt_lines:
                note += f", skipped {state.corrupt_lines} torn lines"
    if engine is None:
        engine = AdmissionEngine(scenario, policy=args.policy, store=store)
        note = (f"loaded {len(engine.flow_names())} flows from the "
                f"scenario workload")
        if journal is not None:
            # Seed the checkpoint so a crash before the first periodic
            # checkpoint still recovers the preloaded base table.
            journal.checkpoint(engine.flow_payloads())
    server = AdmissionServer(engine, config, journal=journal,
                             faults=plan if plan else None)
    server.start()
    sys.stdout.write(
        f"serving {scenario.name} ({engine.policy}) on "
        f"http://{args.host}:{server.port} — {note}\n")
    sys.stdout.flush()
    stop = threading.Event()

    def _graceful(signum, frame):
        server.draining = True
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    while not stop.is_set():
        stop.wait(0.5)
    clean = server.drain()
    stats = server.stats_payload()
    sys.stdout.write(
        f"drained: {stats['served']} served, {stats['degraded']} "
        f"degraded, {stats['shed']} shed, {stats['errors']} errors\n")
    return 0 if clean else 1


# ---------------------------------------------------------------------------
# Topology subcommand (multi-hop graph file tooling)
# ---------------------------------------------------------------------------

def _configure_topology(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("action", choices=("validate",),
                     help="validate: load a topology file, check its "
                          "structure and routability, print a summary")
    sub.add_argument("file", help="topology file (.json or .csv)")


def _command_topology(ctx: CommandContext) -> int:
    args = ctx.args
    # Any structural problem (malformed document, duplicate node, port
    # clash, end-system-to-end-system link, disconnected pair) raises a
    # ReproError that main() turns into one `error: ...` line, exit 2.
    spec = load_topology_file(args.file).validated()
    engine = RoutingEngine(spec)
    problems = engine.diagnostics()
    if problems:
        suffix = "" if len(problems) == 1 \
            else f" (and {len(problems) - 1} more problems)"
        sys.stderr.write(f"error: {args.file}: {problems[0]}{suffix}\n")
        return 2
    end_systems = spec.end_systems
    longest: tuple[str, ...] = ()
    for source in end_systems:
        for destination in end_systems:
            if source == destination:
                continue
            path = engine.shortest_path(source, destination)
            if len(path) > len(longest):
                longest = path
    sys.stdout.write(
        f"topology {spec.name}: {len(end_systems)} end systems, "
        f"{len(spec.switches)} switches, {len(spec.links)} links; "
        f"fingerprint {fingerprint(spec)[:16]}\n")
    if longest:
        sys.stdout.write(
            f"longest route: {len(longest) - 2} switch hops "
            f"({' -> '.join(longest)})\n")
    return 0


# ---------------------------------------------------------------------------
# Dispatch table, parser, entry point
# ---------------------------------------------------------------------------

def _configure_export(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--output", required=True, help="destination CSV path")


#: The dispatch table: every subcommand of ``repro`` in display order.
COMMANDS: tuple[CommandSpec, ...] = (
    CommandSpec("figure1", "per-class delay bounds, FCFS vs strict priority",
                _command_figure1),
    CommandSpec("violations", "FCFS violations vs link capacity",
                _command_violations),
    CommandSpec("baseline-1553", "MIL-STD-1553B schedule and simulation",
                _command_baseline),
    CommandSpec("compare", "1553B vs Ethernet FCFS vs Ethernet priority",
                _command_compare),
    CommandSpec("validate", "analytic bounds vs simulated worst delays",
                _command_validate),
    CommandSpec("jitter", "per-class jitter under the three technologies",
                _command_jitter),
    CommandSpec("buffers", "per-port buffer dimensioning",
                _command_buffers),
    CommandSpec("export", "write the workload to a CSV file",
                _command_export, configure=_configure_export),
    CommandSpec("campaign", "list or batch-run the scenario catalogue",
                _command_campaign, configure=_configure_campaign,
                needs_workload=False,
                parents=(_STORE_FLAGS, _EXEC_FLAGS, _ENGINE_FLAGS)),
    CommandSpec("simulate", "Monte-Carlo simulation campaign: seeds x "
                            "scenarios x policies x scales vs the bounds",
                _command_simulate, configure=_configure_simulate,
                needs_workload=False,
                parents=(_STORE_FLAGS, _EXEC_FLAGS, _ENGINE_FLAGS)),
    CommandSpec("fuzz", "randomized soundness fuzzing: generated scenarios "
                        "vs the analytic invariants",
                _command_fuzz, configure=_configure_fuzz,
                needs_workload=False,
                parents=(_STORE_FLAGS, _EXEC_FLAGS, _ENGINE_FLAGS)),
    CommandSpec("topology", "validate a multi-hop topology file "
                            "(.json or .csv)",
                _command_topology, configure=_configure_topology,
                needs_workload=False),
    CommandSpec("report", "regenerate or drift-check the artifacts/ "
                          "reproduction report",
                _command_report, configure=_configure_report,
                needs_workload=False,
                parents=(_REPORT_STORE_FLAGS, _EXEC_FLAGS, _ENGINE_FLAGS)),
    CommandSpec("store", "inspect or manage the result store "
                         "(stats, gc, clear, key)",
                _command_store, configure=_configure_store,
                needs_workload=False),
    CommandSpec("serve", "serve admit/remove/check admission queries "
                         "over HTTP against a loaded scenario",
                _command_serve, configure=_configure_serve,
                needs_workload=False,
                parents=(_STORE_FLAGS, _EXEC_FLAGS, _ENGINE_FLAGS)),
)

_COMMAND_INDEX = {spec.name: spec for spec in COMMANDS}


class _VersionAction(argparse.Action):
    """``repro --version``: package version plus the store cache key.

    The cache key is ``repro store key`` (the combined code-version
    token), so one line tells both which release is installed and
    whether two checkouts would share warm store results.  A third line
    names the active (default) bound engine, the registered
    alternatives, and the ``engines`` subsystem token — which source
    revision of the bound implementations this build carries.
    """

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro import __version__
        sys.stdout.write(f"repro {__version__}\n")
        sys.stdout.write(f"store key {combined_token()}\n")
        sys.stdout.write(
            f"engine {DEFAULT_ENGINE} (registered: "
            f"{', '.join(engine_names())}); engines token "
            f"{code_version('engines')}\n")
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time switched Ethernet for military applications: "
                    "reproduce the paper's experiments.")
    parser.add_argument("--version", action=_VersionAction,
                        help="print the package version and the store "
                             "cache key, then exit")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default: 7)")
    parser.add_argument("--stations", type=int, default=16,
                        help="number of stations in the synthetic workload")
    parser.add_argument("--capacity-mbps", type=float, default=10.0,
                        help="Ethernet link capacity in Mbps (default: 10)")
    parser.add_argument("--technology-delay-us", type=float, default=16.0,
                        help="switch relaying-delay bound in µs (default: 16)")
    parser.add_argument("--workload", type=str, default=None,
                        help="CSV message set to use instead of the "
                             "synthetic case study")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for spec in COMMANDS:
        sub = subparsers.add_parser(spec.name, help=spec.help,
                                    parents=list(spec.parents))
        if spec.configure is not None:
            spec.configure(sub)
    return parser


def _load_workload(args: argparse.Namespace) -> MessageSet:
    if args.workload:
        return load_message_set_csv(args.workload)
    parameters = RealCaseParameters(station_count=args.stations)
    return generate_real_case(parameters, seed=args.seed)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code.

    Bad arguments and bad inputs (a missing workload CSV, an invalid
    station count, an unwritable output path) exit with code 2 and a
    single ``error: ...`` line on stderr — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    spec = _COMMAND_INDEX[args.command]
    try:
        context = CommandContext(
            args=args,
            message_set=(_load_workload(args) if spec.needs_workload
                         else None),
            capacity=units.mbps(args.capacity_mbps),
            technology_delay=units.us(args.technology_delay_us))
        return spec.handler(context)
    except BrokenPipeError:
        # `repro ... | head` closes stdout early; that is the consumer's
        # choice, not a usage error — keep the historical behaviour.
        raise
    except (ReproError, OSError) as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    except RunHalted as error:
        # An injected halt fault stopped the run mid-campaign (chaos
        # testing); finished cells are already in the store.
        sys.stderr.write(f"halted: {error}\n")
        return 130
    except KeyboardInterrupt:
        # Ctrl-C or SIGTERM: the executor already tore its workers down;
        # exit with the conventional 128+SIGINT code, no traceback.
        sys.stderr.write("interrupted\n")
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
