"""Traffic shaping primitives and queueing disciplines.

The paper's approach rests on two mechanisms implemented here:

* a **token-bucket traffic shaper** per connection at the source
  (:class:`TokenBucket`, :class:`FlowShaper`) — every packet stream ``i`` is
  regulated by a bucket of size ``b_i`` refilled at rate ``r_i = b_i / T_i``,
  so its output satisfies the arrival curve ``R_i(t) = b_i + r_i t``,
* a **multiplexer** in front of the physical link — either a single FIFO
  queue (:class:`FifoQueue`) or the four-queue strict-priority structure of
  802.1p (:class:`StrictPriorityQueues`).

The classes in this package are *stateful simulation components* (they track
tokens and queued frames over time); their analytical counterparts are the
curves of :mod:`repro.core.netcalc` and the bounds of
:mod:`repro.core.multiplexer`, and the validation experiments check that the
simulated behaviour never exceeds the analytic bounds.
"""

from repro.shaping.token_bucket import FlowShaper, TokenBucket
from repro.shaping.queues import FifoQueue, QueuedItem, StrictPriorityQueues

__all__ = [
    "TokenBucket",
    "FlowShaper",
    "FifoQueue",
    "StrictPriorityQueues",
    "QueuedItem",
]
