"""Token-bucket traffic shapers.

A :class:`TokenBucket` holds up to ``bucket_size`` bits worth of tokens and
refills continuously at ``token_rate`` bits per second.  A packet of ``s``
bits may leave the shaper only when at least ``s`` tokens are available; the
packet then consumes ``s`` tokens.  The output of such a shaper satisfies the
arrival curve ``alpha(t) = b + r t`` used by the paper's bounds.

:class:`FlowShaper` wraps a token bucket together with a FIFO backlog of
packets waiting for tokens, which is how a real end-system implementation
behaves: the application may hand over a packet at any time, and the shaper
releases it at the earliest conforming instant, in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.netcalc.arrival import TokenBucketArrivalCurve
from repro.errors import ConfigurationError

__all__ = ["TokenBucket", "FlowShaper"]


class TokenBucket:
    """Continuous-refill token bucket ``(b, r)``.

    Parameters
    ----------
    bucket_size:
        Bucket capacity ``b`` in bits.  Packets larger than the bucket can
        never conform, so :meth:`earliest_conforming_time` rejects them.
    token_rate:
        Refill rate ``r`` in bits per second.
    initial_tokens:
        Tokens available at time 0; defaults to a full bucket (the paper's
        worst case is precisely every station sending a full burst at once).
    """

    __slots__ = ("bucket_size", "token_rate", "_tokens", "_last_update")

    def __init__(self, bucket_size: float, token_rate: float,
                 initial_tokens: float | None = None) -> None:
        if bucket_size <= 0:
            raise ConfigurationError(
                f"bucket size must be positive, got {bucket_size!r}")
        if token_rate <= 0:
            raise ConfigurationError(
                f"token rate must be positive, got {token_rate!r}")
        self.bucket_size = float(bucket_size)
        self.token_rate = float(token_rate)
        self._tokens = (self.bucket_size if initial_tokens is None
                        else min(float(initial_tokens), self.bucket_size))
        if self._tokens < 0:
            raise ConfigurationError("initial tokens must be non-negative")
        self._last_update = 0.0

    # -- state ---------------------------------------------------------------

    def tokens_at(self, time: float) -> float:
        """Tokens available at ``time`` (seconds), without mutating state."""
        if time < self._last_update:
            raise ConfigurationError(
                f"time goes backwards: {time} < {self._last_update}")
        refill = self.token_rate * (time - self._last_update)
        return min(self.bucket_size, self._tokens + refill)

    def _advance(self, time: float) -> None:
        self._tokens = self.tokens_at(time)
        self._last_update = time

    # -- conformance -----------------------------------------------------------

    def conforms(self, size: float, time: float) -> bool:
        """True when a packet of ``size`` bits may leave at ``time``."""
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size!r}")
        return self.tokens_at(time) >= size - 1e-9

    def earliest_conforming_time(self, size: float, time: float) -> float:
        """Earliest instant ``>= time`` at which ``size`` bits conform.

        Raises
        ------
        ConfigurationError
            If ``size`` exceeds the bucket capacity (it would never conform).
        """
        if size > self.bucket_size + 1e-9:
            raise ConfigurationError(
                f"packet of {size} bits exceeds the bucket size "
                f"{self.bucket_size} bits and can never conform")
        available = self.tokens_at(time)
        if available >= size - 1e-9:
            return time
        deficit = size - available
        return time + deficit / self.token_rate

    def consume(self, size: float, time: float) -> None:
        """Remove ``size`` tokens at ``time``.

        Raises
        ------
        ConfigurationError
            If the packet does not conform at ``time``.
        """
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size!r}")
        # One tokens_at() for the conformance check, the advance and the
        # withdrawal (this runs once per released frame).
        tokens = self.tokens_at(time)
        if tokens < size - 1e-9:
            raise ConfigurationError(
                f"packet of {size} bits does not conform at t={time}")
        self._last_update = time
        self._tokens = max(0.0, tokens - size)

    # -- analytic view ----------------------------------------------------------

    def arrival_curve(self) -> TokenBucketArrivalCurve:
        """The arrival curve guaranteed at the output of this shaper."""
        return TokenBucketArrivalCurve(bucket=self.bucket_size,
                                       token_rate=self.token_rate)

    @classmethod
    def for_message(cls, message: "object") -> "TokenBucket":
        """The paper's shaper for a message: ``b = size``, ``r = size / T``.

        ``message`` is any object with ``burst`` and ``rate`` attributes.
        """
        return cls(bucket_size=float(message.burst),
                   token_rate=float(message.rate))


@dataclass(slots=True)
class _PendingPacket:
    """A packet waiting in the shaper backlog."""

    size: float
    enqueue_time: float
    payload: object | None = None


class FlowShaper:
    """A token bucket plus a FIFO backlog of packets awaiting tokens.

    The shaper is *greedy*: a packet is released at the earliest instant at
    which the bucket holds enough tokens, and packets of the same flow are
    released in order.

    Parameters
    ----------
    name:
        Flow name (used in traces).
    bucket:
        The token bucket regulating the flow.
    """

    __slots__ = ("name", "bucket", "_backlog", "_last_release")

    def __init__(self, name: str, bucket: TokenBucket) -> None:
        self.name = name
        self.bucket = bucket
        self._backlog: deque[_PendingPacket] = deque()
        self._last_release = 0.0

    @property
    def backlog(self) -> int:
        """Number of packets waiting for tokens."""
        return len(self._backlog)

    def submit(self, size: float, time: float,
               payload: object | None = None) -> None:
        """Hand a packet of ``size`` bits over to the shaper at ``time``.

        The backlog stores plain ``(size, enqueue_time, payload)`` tuples —
        one per transmitted frame, so the wrapper object is skipped on the
        hot path (:meth:`release` re-wraps for its public return value).
        """
        self._backlog.append((size, time, payload))

    def next_release(self, time: float) -> float | None:
        """Earliest instant ``>= time`` at which the head packet may leave.

        Returns ``None`` when the backlog is empty.  The release also honours
        FIFO order: a packet can never leave before the previous release.

        The token-bucket conformance arithmetic is inlined (this runs at
        least once per frame): it is exactly
        :meth:`TokenBucket.earliest_conforming_time` over
        :meth:`TokenBucket.tokens_at`.
        """
        if not self._backlog:
            return None
        size, enqueue_time, _ = self._backlog[0]
        at = enqueue_time if enqueue_time > time else time
        bucket = self.bucket
        bucket_size = bucket.bucket_size
        if size > bucket_size + 1e-9:
            raise ConfigurationError(
                f"packet of {size} bits exceeds the bucket size "
                f"{bucket_size} bits and can never conform")
        last_update = bucket._last_update
        if at < last_update:
            raise ConfigurationError(
                f"time goes backwards: {at} < {last_update}")
        tokens = bucket._tokens + bucket.token_rate * (at - last_update)
        if tokens > bucket_size:
            tokens = bucket_size
        if tokens >= size - 1e-9:
            earliest = at
        else:
            earliest = at + (size - tokens) / bucket.token_rate
        last = self._last_release
        return earliest if earliest > last else last

    def release_payload(self, time: float) -> object | None:
        """Release the head packet at ``time``; return just its payload.

        The hot-path variant of :meth:`release`: no wrapper allocation, and
        the token withdrawal (exactly :meth:`TokenBucket.consume`) inlined.
        """
        if not self._backlog:
            raise ConfigurationError(
                f"shaper {self.name!r} has no packet to release")
        size, _, payload = self._backlog.popleft()
        bucket = self.bucket
        last_update = bucket._last_update
        if time < last_update:
            raise ConfigurationError(
                f"time goes backwards: {time} < {last_update}")
        tokens = bucket._tokens + bucket.token_rate * (time - last_update)
        if tokens > bucket.bucket_size:
            tokens = bucket.bucket_size
        if tokens < size - 1e-9:
            raise ConfigurationError(
                f"packet of {size} bits does not conform at t={time}")
        tokens -= size
        bucket._tokens = tokens if tokens > 0.0 else 0.0
        bucket._last_update = time
        self._last_release = time
        return payload

    def release(self, time: float) -> _PendingPacket:
        """Release the head packet at ``time`` (consuming its tokens)."""
        if not self._backlog:
            raise ConfigurationError(
                f"shaper {self.name!r} has no packet to release")
        size, enqueue_time, payload = self._backlog.popleft()
        self.bucket.consume(size, time)
        self._last_release = time
        return _PendingPacket(size=size, enqueue_time=enqueue_time,
                              payload=payload)
