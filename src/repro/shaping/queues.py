"""Queueing disciplines used by the multiplexers and the switch ports.

Two disciplines cover the paper's two approaches:

* :class:`FifoQueue` — a single first-come-first-served queue (the paper's
  "FCFS multiplexer"),
* :class:`StrictPriorityQueues` — four FCFS queues, one per 802.1p class,
  always serving the highest-priority non-empty queue first (the paper's
  "4-FCFS multiplexer", non-preemptive).

Both track their occupancy in bits so buffer dimensioning and overflow
behaviour (drop or raise) can be studied, and both count drops — the paper's
motivation mentions that frames can be lost if switch buffers overflow when
the traffic is not controlled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Protocol

from repro.errors import BufferOverflowError
from repro.flows.priorities import PriorityClass

__all__ = ["Queueable", "QueuedItem", "FifoQueue", "StrictPriorityQueues"]


class Queueable(Protocol):
    """What the disciplines require of a queued object.

    Anything carrying an on-wire ``size`` (bits) and an 802.1p
    ``priority`` can be queued: the generic :class:`QueuedItem` wrapper,
    or — on the simulator's hot path — an
    :class:`~repro.ethernet.frame.EthernetFrame` directly, which avoids
    one wrapper allocation per hop.
    """

    size: float
    priority: PriorityClass


@dataclass(frozen=True, slots=True)
class QueuedItem:
    """An item (frame) stored in a queue.

    Attributes
    ----------
    size:
        Size in bits (on-wire size, overheads included).
    enqueue_time:
        Simulation time at which the item entered the queue.
    priority:
        802.1p class of the item (used by the strict-priority discipline;
        informational for the FIFO).
    payload:
        The carried object (a frame, a message instance...).
    """

    size: float
    enqueue_time: float
    priority: PriorityClass
    payload: Any = None


class FifoQueue:
    """A single FCFS queue with an optional capacity in bits.

    Parameters
    ----------
    capacity:
        Maximal total occupancy in bits; ``None`` means unbounded.
    drop_on_overflow:
        When the capacity would be exceeded: drop the incoming item and count
        it (``True``, the behaviour of a real switch) or raise
        :class:`BufferOverflowError` (``False``, useful in tests that assert
        the shaped traffic never overflows a correctly-dimensioned buffer).
    """

    __slots__ = ("capacity", "drop_on_overflow", "_items", "_occupancy",
                 "_max_occupancy", "_drops")

    def __init__(self, capacity: float | None = None,
                 drop_on_overflow: bool = True) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.drop_on_overflow = drop_on_overflow
        self._items: deque[Queueable] = deque()
        self._occupancy = 0.0
        self._max_occupancy = 0.0
        self._drops = 0

    # -- state -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> float:
        """Current queue occupancy in bits."""
        return self._occupancy

    @property
    def max_occupancy(self) -> float:
        """Largest occupancy reached so far, in bits."""
        return self._max_occupancy

    @property
    def drops(self) -> int:
        """Number of items dropped because of overflow."""
        return self._drops

    @property
    def is_empty(self) -> bool:
        """True when no item is queued."""
        return not self._items

    # -- operations -----------------------------------------------------------

    def push(self, item: Queueable) -> bool:
        """Enqueue ``item``; return ``False`` if it was dropped."""
        occupancy = self._occupancy + item.size
        if self.capacity is not None and occupancy > self.capacity + 1e-9:
            if self.drop_on_overflow:
                self._drops += 1
                return False
            raise BufferOverflowError(
                f"queue overflow: {occupancy:.0f} bits "
                f"would exceed the {self.capacity:.0f} bits capacity")
        self._items.append(item)
        self._occupancy = occupancy
        if occupancy > self._max_occupancy:
            self._max_occupancy = occupancy
        return True

    def pop(self) -> Queueable | None:
        """Dequeue the oldest item, or ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._occupancy -= item.size
        if not self._items:
            # Clamp accumulated floating-point residue once the queue drains.
            self._occupancy = 0.0
        return item

    def peek(self) -> Queueable | None:
        """The oldest item without removing it, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def items(self) -> Iterable[Queueable]:
        """Snapshot of the queued items, oldest first."""
        return tuple(self._items)


class StrictPriorityQueues:
    """Four FCFS queues served in strict (non-preemptive) priority order.

    The scheduler always picks the head of the highest-priority (numerically
    smallest) non-empty queue.  Non-preemption is a property of the *server*
    (the link keeps transmitting the frame it started), not of the queues, so
    this class only decides which frame is handed to the server next.

    Parameters
    ----------
    capacity_per_class:
        Optional per-queue capacity in bits (same for each class).
    drop_on_overflow:
        See :class:`FifoQueue`.
    """

    __slots__ = ("_queues", "_ordered")

    def __init__(self, capacity_per_class: float | None = None,
                 drop_on_overflow: bool = True) -> None:
        self._queues: dict[PriorityClass, FifoQueue] = {
            cls: FifoQueue(capacity=capacity_per_class,
                           drop_on_overflow=drop_on_overflow)
            for cls in PriorityClass}
        #: The class queues in strict service order, for the hot scheduler
        #: loop (tuple iteration beats dict lookups per pop).
        self._ordered: tuple[FifoQueue, ...] = tuple(
            self._queues[cls] for cls in PriorityClass)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def is_empty(self) -> bool:
        """True when every class queue is empty."""
        return all(queue.is_empty for queue in self._queues.values())

    @property
    def occupancy(self) -> float:
        """Total occupancy across the four queues, in bits."""
        return sum(queue.occupancy for queue in self._queues.values())

    @property
    def max_occupancy(self) -> float:
        """Sum of the per-class occupancy maxima, in bits.

        This is an upper bound on the largest total occupancy (the per-class
        maxima need not be simultaneous); it is what buffer dimensioning uses.
        """
        return sum(queue.max_occupancy for queue in self._queues.values())

    @property
    def drops(self) -> int:
        """Total drops across the four queues."""
        return sum(queue.drops for queue in self._queues.values())

    def queue(self, priority: PriorityClass) -> FifoQueue:
        """The FIFO dedicated to ``priority``."""
        return self._queues[PriorityClass(priority)]

    def push(self, item: Queueable) -> bool:
        """Enqueue ``item`` in its class queue; return ``False`` if dropped."""
        # Inlined FifoQueue.push — this runs once per frame per hop.
        queue = self._queues[item.priority]
        occupancy = queue._occupancy + item.size
        if queue.capacity is not None and occupancy > queue.capacity + 1e-9:
            if queue.drop_on_overflow:
                queue._drops += 1
                return False
            raise BufferOverflowError(
                f"queue overflow: {occupancy:.0f} bits "
                f"would exceed the {queue.capacity:.0f} bits capacity")
        queue._items.append(item)
        queue._occupancy = occupancy
        if occupancy > queue._max_occupancy:
            queue._max_occupancy = occupancy
        return True

    def pop(self) -> Queueable | None:
        """Dequeue from the highest-priority non-empty queue."""
        # Inlined FifoQueue.pop — this runs once per transmitted frame.
        for queue in self._ordered:
            items = queue._items
            if items:
                item = items.popleft()
                if items:
                    queue._occupancy -= item.size
                else:
                    queue._occupancy = 0.0
                return item
        return None

    def peek(self) -> Queueable | None:
        """Next item the scheduler would serve, without removing it."""
        for queue in self._ordered:
            if queue._items:
                return queue._items[0]
        return None

    def occupancy_of(self, priority: PriorityClass) -> float:
        """Occupancy (bits) of the queue of ``priority``."""
        return self._queues[PriorityClass(priority)].occupancy
