"""Arbitrary multi-hop topologies as declarative, fingerprintable specs.

The legacy builders (:mod:`repro.topology.builders`) cover the paper's
own shapes — star, dual switch, tree.  A :class:`GraphTopologySpec`
generalises them to any directed graph of typed nodes (**end systems**
and **switches**) joined by attributed links (rate in bits per second,
propagation latency in seconds, optional port numbers).  The spec is a
frozen dataclass of scalars and tuples, so the content-addressed result
store can fingerprint it directly (``repro.store.fingerprint``) and two
processes always agree on what a scenario means.

Specs come from three places:

* **files** — a JSON document (:meth:`GraphTopologySpec.from_json_file`)
  or a wcdTool-style CSV of ``ES`` / ``SW`` / ``LINK`` rows
  (:meth:`GraphTopologySpec.from_csv_file`); ``repro topology validate``
  lints either format,
* **family builders** — :func:`diamond_graph_spec`,
  :func:`ring_graph_spec`, :func:`star_graph_spec` and the seeded
  :func:`random_graph_spec`, used by the campaign registry and the fuzz
  generator,
* **legacy networks** — :func:`graph_spec_from_network` re-expresses an
  existing :class:`~repro.topology.network.Network`, which the golden
  equivalence tests use to prove the two representations agree.

:meth:`GraphTopologySpec.problems` returns *every* structural diagnostic
(unknown endpoints, duplicate links, port clashes, end systems that
relay, unreachable end-system pairs...);
:meth:`GraphTopologySpec.validated` turns the first one into an
:class:`~repro.errors.InvalidTopologyError`.  A valid spec whose links
are full duplex converts to a legacy :class:`Network` via
:meth:`GraphTopologySpec.to_network`, so the discrete-event simulator
and the end-to-end analysis run on graph topologies unchanged.
"""

from __future__ import annotations

import csv
import json
import random
from collections import defaultdict
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro import units
from repro.errors import ConfigurationError, InvalidTopologyError

__all__ = [
    "GraphNode", "GraphLink", "GraphTopologySpec",
    "diamond_graph_spec", "ring_graph_spec", "star_graph_spec",
    "random_graph_spec", "graph_spec_from_network", "load_topology_file",
]

#: Node roles a spec may declare.
NODE_KINDS = ("end-system", "switch")

#: Default relaying-latency bound of a switch (matches the builders).
DEFAULT_TECHNOLOGY_DELAY = units.us(16)

#: Default link rate of the family builders (the paper's 10 Mbps).
DEFAULT_CAPACITY = units.mbps(10)


def _station_name(index: int) -> str:
    """End systems are named like the workload generator's stations."""
    return f"station-{index:02d}"


@dataclass(frozen=True)
class GraphNode:
    """One typed node of a graph topology."""

    #: Unique node name.
    name: str
    #: ``"end-system"`` (traffic source/sink) or ``"switch"`` (relay).
    kind: str
    #: ``t_techno`` bound on the relaying delay (seconds, switches only).
    technology_delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTopologyError("node name must not be empty")
        if self.kind not in NODE_KINDS:
            raise InvalidTopologyError(
                f"node {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {NODE_KINDS}")
        if self.technology_delay < 0:
            raise InvalidTopologyError(
                f"node {self.name!r}: technology delay must be "
                f"non-negative")
        if self.kind == "end-system" and self.technology_delay != 0.0:
            raise InvalidTopologyError(
                f"end system {self.name!r} must not declare a technology "
                f"delay (it does not relay)")


@dataclass(frozen=True)
class GraphLink:
    """One attributed link of a graph topology.

    A link is full duplex by default (both directions exist with the
    same attributes); declare ``directed=True`` to describe a single
    direction — :meth:`GraphTopologySpec.to_network` then requires the
    reverse direction to be declared too, with matching attributes.
    """

    #: Upstream endpoint.
    source: str
    #: Downstream endpoint.
    target: str
    #: Rate of each direction, in bits per second.
    rate: float = DEFAULT_CAPACITY
    #: One-way propagation latency in seconds.
    latency: float = 0.0
    #: Optional port number on the source node.
    source_port: int | None = None
    #: Optional port number on the target node.
    target_port: int | None = None
    #: True when only the ``source -> target`` direction exists.
    directed: bool = False

    def __post_init__(self) -> None:
        for endpoint in (self.source, self.target):
            if not endpoint:
                raise InvalidTopologyError("link endpoint must not be empty")
        if self.source == self.target:
            raise InvalidTopologyError(
                f"cyclic link: {self.source!r} connects to itself")
        if self.rate <= 0:
            raise InvalidTopologyError(
                f"link {self.source!r}->{self.target!r}: rate must be "
                f"positive, got {self.rate!r}")
        if self.latency < 0:
            raise InvalidTopologyError(
                f"link {self.source!r}->{self.target!r}: latency must be "
                f"non-negative")
        for port in (self.source_port, self.target_port):
            if port is not None and port < 0:
                raise InvalidTopologyError(
                    f"link {self.source!r}->{self.target!r}: port numbers "
                    f"must be non-negative")


@dataclass(frozen=True)
class GraphTopologySpec:
    """A declarative multi-hop topology (typed nodes + attributed links)."""

    #: Topology name (becomes the :class:`Network` name on conversion).
    name: str = "graph"
    #: Every node, in declaration order.
    nodes: tuple[GraphNode, ...] = field(default_factory=tuple)
    #: Every link, in declaration order.
    links: tuple[GraphLink, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTopologyError("topology name must not be empty")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "links", tuple(self.links))

    # -- lookups -----------------------------------------------------------

    @cached_property
    def _node_map(self) -> dict[str, GraphNode]:
        mapping: dict[str, GraphNode] = {}
        for node in self.nodes:
            mapping.setdefault(node.name, node)
        return mapping

    @cached_property
    def _edge_map(self) -> dict[tuple[str, str], GraphLink]:
        mapping: dict[tuple[str, str], GraphLink] = {}
        for link in self.links:
            mapping.setdefault((link.source, link.target), link)
            if not link.directed:
                mapping.setdefault((link.target, link.source), link)
        return mapping

    def node(self, name: str) -> GraphNode:
        """The node named ``name``."""
        try:
            return self._node_map[name]
        except KeyError:
            raise InvalidTopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        """True when a node of that name is declared."""
        return name in self._node_map

    @property
    def end_systems(self) -> tuple[str, ...]:
        """Sorted end-system names."""
        return tuple(sorted(n.name for n in self.nodes
                            if n.kind == "end-system"))

    @property
    def switches(self) -> tuple[str, ...]:
        """Sorted switch names."""
        return tuple(sorted(n.name for n in self.nodes
                            if n.kind == "switch"))

    def is_switch(self, name: str) -> bool:
        """True when ``name`` is a switch."""
        return self.node(name).kind == "switch"

    def technology_delay(self, name: str) -> float:
        """The relaying-latency bound of a node (0 for end systems)."""
        return self.node(name).technology_delay

    def successors(self) -> dict[str, tuple[str, ...]]:
        """Sorted successor names of every node (directed adjacency)."""
        successors: dict[str, set[str]] = {n.name: set()
                                           for n in self.nodes}
        for (source, target) in self._edge_map:
            if source in successors:
                successors[source].add(target)
        return {name: tuple(sorted(targets))
                for name, targets in successors.items()}

    def edge(self, source: str, target: str) -> GraphLink:
        """The link attributes of the directed edge ``source -> target``."""
        try:
            return self._edge_map[(source, target)]
        except KeyError:
            raise InvalidTopologyError(
                f"no link from {source!r} to {target!r}") from None

    # -- diagnostics -------------------------------------------------------

    def problems(self, connected: bool = True) -> tuple[str, ...]:
        """Every structural diagnostic, in a deterministic order.

        With ``connected=True`` (the default) unreachable ordered
        end-system pairs are reported too; pass ``False`` to check only
        the local structure (the routing engine diagnoses reachability
        itself).
        """
        issues: list[str] = []
        seen_nodes: set[str] = set()
        for node in self.nodes:
            if node.name in seen_nodes:
                issues.append(f"duplicate node {node.name!r}")
            seen_nodes.add(node.name)
        if not self.end_systems:
            issues.append("the topology has no end system")
        if not self.switches:
            issues.append("the topology has no switch")

        endpoints_ok = True
        seen_edges: set[tuple[str, str]] = set()
        port_use: dict[tuple[str, int], int] = defaultdict(int)
        for link in self.links:
            for endpoint in (link.source, link.target):
                if endpoint not in self._node_map:
                    issues.append(f"link {link.source!r}->{link.target!r}: "
                                  f"unknown node {endpoint!r}")
                    endpoints_ok = False
            directions = [(link.source, link.target)]
            if not link.directed:
                directions.append((link.target, link.source))
            for direction in directions:
                if direction in seen_edges:
                    issues.append(f"duplicate link "
                                  f"{direction[0]!r}->{direction[1]!r}")
                seen_edges.add(direction)
            if link.source_port is not None:
                port_use[(link.source, link.source_port)] += 1
            if link.target_port is not None:
                port_use[(link.target, link.target_port)] += 1
        for (node, port), count in sorted(port_use.items()):
            if count > 1:
                issues.append(f"port {port} of {node!r} is used by "
                              f"{count} links")

        if not endpoints_ok:
            return tuple(issues)

        successors = self.successors()
        predecessors: dict[str, list[str]] = defaultdict(list)
        for source, targets in successors.items():
            for target in targets:
                predecessors[target].append(source)
        for name in self.end_systems:
            outgoing = successors.get(name, ())
            incoming = tuple(predecessors.get(name, ()))
            if len(outgoing) != 1 or len(incoming) != 1:
                issues.append(
                    f"end system {name!r} must have exactly one uplink "
                    f"and one downlink, has {len(outgoing)} out / "
                    f"{len(incoming)} in")
                continue
            for neighbour in set(outgoing) | set(incoming):
                if self._node_map[neighbour].kind != "switch":
                    issues.append(
                        f"end system {name!r} attaches to end system "
                        f"{neighbour!r}; end systems must attach to "
                        f"switches")

        if connected and not issues:
            issues.extend(self._unreachable_pairs(successors))
        return tuple(issues)

    def _unreachable_pairs(self,
                           successors: Mapping[str, tuple[str, ...]]
                           ) -> list[str]:
        """``"disconnected: ..."`` diagnostics for unroutable ES pairs."""
        problems = []
        end_systems = self.end_systems
        for source in end_systems:
            reached = {source}
            frontier = [source]
            while frontier:
                node = frontier.pop()
                # End systems never relay: only expand the source itself
                # and switches.
                if node != source and not self.is_switch(node):
                    continue
                for target in successors.get(node, ()):
                    if target not in reached:
                        reached.add(target)
                        frontier.append(target)
            for destination in end_systems:
                if destination != source and destination not in reached:
                    problems.append(f"disconnected: no route from "
                                    f"{source!r} to {destination!r}")
        return sorted(problems)

    def validated(self, connected: bool = True) -> "GraphTopologySpec":
        """Return ``self`` or raise on the first structural problem."""
        problems = self.problems(connected=connected)
        if problems:
            suffix = "" if len(problems) == 1 \
                else f" (and {len(problems) - 1} more problems)"
            raise InvalidTopologyError(problems[0] + suffix)
        return self

    # -- conversion --------------------------------------------------------

    def to_network(self):
        """Convert to a legacy :class:`~repro.topology.network.Network`.

        Requires a structurally valid spec whose links are full duplex:
        either declared undirected, or declared as two directed links
        with identical rate and latency.  The simulator and the
        end-to-end analysis consume the result unchanged.
        """
        from repro.topology.network import Network

        self.validated()
        network = Network(self.name)
        for node in self.nodes:
            if node.kind == "switch":
                network.add_switch(node.name,
                                   technology_delay=node.technology_delay)
            else:
                network.add_station(node.name)

        pending: dict[tuple[str, str], GraphLink] = {}
        for link in self.links:
            if not link.directed:
                network.add_link(link.source, link.target, link.rate,
                                 propagation_delay=link.latency)
                continue
            reverse = pending.pop((link.target, link.source), None)
            if reverse is None:
                pending[(link.source, link.target)] = link
                continue
            if (reverse.rate, reverse.latency) != (link.rate, link.latency):
                raise InvalidTopologyError(
                    f"directed links {link.source!r}->{link.target!r} and "
                    f"{link.target!r}->{link.source!r} disagree on rate or "
                    f"latency; cannot form a full-duplex link")
            network.add_link(reverse.source, reverse.target, reverse.rate,
                             propagation_delay=reverse.latency)
        if pending:
            source, target = sorted(pending)[0]
            raise InvalidTopologyError(
                f"directed link {source!r}->{target!r} has no reverse "
                f"direction; the network model needs full-duplex links")
        network.validate()
        return network

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (human units: Mbps rates, µs latencies)."""
        nodes = []
        for node in self.nodes:
            entry: dict[str, Any] = {"name": node.name, "kind": node.kind}
            if node.technology_delay:
                entry["technology_delay_us"] = node.technology_delay / \
                    units.us(1)
            nodes.append(entry)
        links = []
        for link in self.links:
            entry = {"source": link.source, "target": link.target,
                     "rate_mbps": link.rate / units.mbps(1)}
            if link.latency:
                entry["latency_us"] = link.latency / units.us(1)
            if link.source_port is not None:
                entry["source_port"] = link.source_port
            if link.target_port is not None:
                entry["target_port"] = link.target_port
            if link.directed:
                entry["directed"] = True
            links.append(entry)
        return {"name": self.name, "nodes": nodes, "links": links}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GraphTopologySpec":
        """Parse the :meth:`to_dict` form, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                "topology document must be a JSON object")
        unknown = set(payload) - {"name", "nodes", "links"}
        if unknown:
            raise ConfigurationError(
                f"topology document has unknown keys: "
                f"{', '.join(sorted(unknown))}")
        nodes = []
        for index, entry in enumerate(_entries(payload, "nodes")):
            nodes.append(GraphNode(
                name=_text(entry, "name", f"nodes[{index}]"),
                kind=_text(entry, "kind", f"nodes[{index}]"),
                technology_delay=units.us(_number(
                    entry, "technology_delay_us", f"nodes[{index}]", 0.0))))
            _reject_unknown(entry, {"name", "kind", "technology_delay_us"},
                            f"nodes[{index}]")
        links = []
        for index, entry in enumerate(_entries(payload, "links")):
            links.append(GraphLink(
                source=_text(entry, "source", f"links[{index}]"),
                target=_text(entry, "target", f"links[{index}]"),
                rate=units.mbps(_number(
                    entry, "rate_mbps", f"links[{index}]",
                    DEFAULT_CAPACITY / units.mbps(1))),
                latency=units.us(_number(
                    entry, "latency_us", f"links[{index}]", 0.0)),
                source_port=_port(entry, "source_port", f"links[{index}]"),
                target_port=_port(entry, "target_port", f"links[{index}]"),
                directed=bool(entry.get("directed", False))))
            _reject_unknown(
                entry, {"source", "target", "rate_mbps", "latency_us",
                        "source_port", "target_port", "directed"},
                f"links[{index}]")
        name = payload.get("name", "graph")
        if not isinstance(name, str) or not name:
            raise ConfigurationError("topology name must be a non-empty "
                                     "string")
        return cls(name=name, nodes=tuple(nodes), links=tuple(links))

    @classmethod
    def from_json_file(cls, path: str | Path) -> "GraphTopologySpec":
        """Load a JSON topology document."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ConfigurationError(
                f"{path}: not a valid JSON document ({exc})") from None
        return cls.from_dict(payload)

    @classmethod
    def from_csv_file(cls, path: str | Path) -> "GraphTopologySpec":
        """Load a wcdTool-style CSV topology.

        Rows (case-insensitive first column, ``#`` starts a comment)::

            ES,<name>
            SW,<name>[,<technology_delay_us>]
            LINK,<id>,<source>,<source_port>,<target>,<target_port>
                 [,<rate_mbps>[,<latency_us>]]
        """
        path = Path(path)
        nodes: list[GraphNode] = []
        links: list[GraphLink] = []
        with open(path, newline="", encoding="utf-8") as handle:
            for row_number, row in enumerate(csv.reader(handle), start=1):
                fields = [field.strip() for field in row]
                if not fields or not fields[0] or \
                        fields[0].startswith("#"):
                    continue
                kind = fields[0].lower()
                where = f"{path}:{row_number}"
                try:
                    if kind == "es":
                        nodes.append(GraphNode(_field(fields, 1, where),
                                               "end-system"))
                    elif kind == "sw":
                        delay = units.us(float(fields[2])) if \
                            len(fields) > 2 and fields[2] else \
                            DEFAULT_TECHNOLOGY_DELAY
                        nodes.append(GraphNode(_field(fields, 1, where),
                                               "switch",
                                               technology_delay=delay))
                    elif kind == "link":
                        rate = units.mbps(float(fields[6])) if \
                            len(fields) > 6 and fields[6] else \
                            DEFAULT_CAPACITY
                        latency = units.us(float(fields[7])) if \
                            len(fields) > 7 and fields[7] else 0.0
                        links.append(GraphLink(
                            source=_field(fields, 2, where),
                            target=_field(fields, 4, where),
                            rate=rate, latency=latency,
                            source_port=int(_field(fields, 3, where)),
                            target_port=int(_field(fields, 5, where))))
                    else:
                        raise ConfigurationError(
                            f"{where}: unknown row type {fields[0]!r}; "
                            f"expected ES, SW or LINK")
                except (ValueError, IndexError) as exc:
                    raise ConfigurationError(
                        f"{where}: malformed row ({exc})") from None
        return cls(name=path.stem, nodes=tuple(nodes), links=tuple(links))


def load_topology_file(path: str | Path) -> GraphTopologySpec:
    """Load a topology spec, dispatching on the file extension."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        return GraphTopologySpec.from_json_file(path)
    if path.suffix.lower() == ".csv":
        return GraphTopologySpec.from_csv_file(path)
    raise ConfigurationError(
        f"{path}: unknown topology format {path.suffix!r}; expected "
        f".json or .csv")


# -- parsing helpers -------------------------------------------------------


def _reject_unknown(entry: Mapping[str, Any], allowed: set[str],
                    where: str) -> None:
    unknown = set(entry) - allowed
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown keys: {', '.join(sorted(unknown))}")


def _entries(payload: Mapping[str, Any], key: str) -> list[Mapping[str, Any]]:
    value = payload.get(key)
    if not isinstance(value, list):
        raise ConfigurationError(
            f"topology document needs a {key!r} list")
    for index, entry in enumerate(value):
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"{key}[{index}] must be an object")
    return value


def _text(entry: Mapping[str, Any], key: str, where: str) -> str:
    value = entry.get(key)
    if not isinstance(value, str) or not value:
        raise ConfigurationError(
            f"{where}: {key!r} must be a non-empty string")
    return value


def _number(entry: Mapping[str, Any], key: str, where: str,
            default: float) -> float:
    value = entry.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{where}: {key!r} must be a number")
    return float(value)


def _port(entry: Mapping[str, Any], key: str, where: str) -> int | None:
    value = entry.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{where}: {key!r} must be an integer")
    return value


def _field(fields: list[str], index: int, where: str) -> str:
    if index >= len(fields) or not fields[index]:
        raise ConfigurationError(f"{where}: missing field {index}")
    return fields[index]


# -- family builders -------------------------------------------------------


def star_graph_spec(station_count: int,
                    capacity: float = DEFAULT_CAPACITY,
                    technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                    switch_name: str = "switch-0",
                    name: str = "graph-star") -> GraphTopologySpec:
    """The paper's single-switch star, as a graph spec.

    Value-identical to :func:`repro.topology.builders.single_switch_star`
    after :meth:`GraphTopologySpec.to_network` — the golden equivalence
    tests pin this down.
    """
    if station_count < 2:
        raise InvalidTopologyError(
            f"a star needs at least 2 stations, got {station_count}")
    nodes = [GraphNode(switch_name, "switch",
                       technology_delay=technology_delay)]
    links = []
    for index in range(station_count):
        station = _station_name(index)
        nodes.append(GraphNode(station, "end-system"))
        links.append(GraphLink(station, switch_name, rate=capacity))
    return GraphTopologySpec(name=name, nodes=tuple(nodes),
                             links=tuple(links))


def diamond_graph_spec(station_count: int,
                       capacity: float = DEFAULT_CAPACITY,
                       technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                       name: str = "graph-diamond") -> GraphTopologySpec:
    """Four switches in a diamond — the canonical ECMP tie.

    ``sw-a`` and ``sw-d`` are the access switches (stations split evenly
    between them); two equal-cost two-hop routes ``sw-a -> sw-b -> sw-d``
    and ``sw-a -> sw-c -> sw-d`` join them, so the deterministic
    lexicographic tie-break (via ``sw-b``) is observable.
    """
    if station_count < 2:
        raise InvalidTopologyError(
            f"a diamond needs at least 2 stations, got {station_count}")
    nodes = [GraphNode(f"sw-{letter}", "switch",
                       technology_delay=technology_delay)
             for letter in "abcd"]
    links = [GraphLink("sw-a", "sw-b", rate=capacity),
             GraphLink("sw-a", "sw-c", rate=capacity),
             GraphLink("sw-b", "sw-d", rate=capacity),
             GraphLink("sw-c", "sw-d", rate=capacity)]
    left = (station_count + 1) // 2
    for index in range(station_count):
        station = _station_name(index)
        access = "sw-a" if index < left else "sw-d"
        nodes.append(GraphNode(station, "end-system"))
        links.append(GraphLink(station, access, rate=capacity))
    return GraphTopologySpec(name=name, nodes=tuple(nodes),
                             links=tuple(links))


def ring_graph_spec(station_count: int, switch_count: int = 4,
                    capacity: float = DEFAULT_CAPACITY,
                    technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                    name: str = "graph-ring") -> GraphTopologySpec:
    """``switch_count`` switches in a cycle, stations round-robin.

    The ring is the cyclic-dependency stress case for the fixed-point
    burst propagation: routes wrap both ways around the cycle.
    """
    if switch_count < 3:
        raise InvalidTopologyError(
            f"a ring needs at least 3 switches, got {switch_count}")
    if station_count < 2:
        raise InvalidTopologyError(
            f"a ring needs at least 2 stations, got {station_count}")
    nodes = [GraphNode(f"sw-{index}", "switch",
                       technology_delay=technology_delay)
             for index in range(switch_count)]
    links = [GraphLink(f"sw-{index}", f"sw-{(index + 1) % switch_count}",
                       rate=capacity)
             for index in range(switch_count)]
    for index in range(station_count):
        station = _station_name(index)
        nodes.append(GraphNode(station, "end-system"))
        links.append(GraphLink(station, f"sw-{index % switch_count}",
                               rate=capacity))
    return GraphTopologySpec(name=name, nodes=tuple(nodes),
                             links=tuple(links))


def random_graph_spec(station_count: int, switch_count: int = 4,
                      extra_links: int = 2, seed: int = 0,
                      capacity: float = DEFAULT_CAPACITY,
                      technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                      name: str | None = None) -> GraphTopologySpec:
    """A seeded random switch fabric with randomly attached stations.

    A random spanning tree over the switches guarantees connectivity;
    ``extra_links`` additional switch-switch links (when placeable) add
    cycles and route diversity.  Everything derives from
    ``random.Random(seed)``, so equal parameters give equal specs in
    every process.
    """
    if switch_count < 1:
        raise InvalidTopologyError(
            f"a random graph needs at least 1 switch, got {switch_count}")
    if station_count < 2:
        raise InvalidTopologyError(
            f"a random graph needs at least 2 stations, "
            f"got {station_count}")
    rng = random.Random(int(seed))
    nodes = [GraphNode(f"sw-{index}", "switch",
                       technology_delay=technology_delay)
             for index in range(switch_count)]
    links = []
    fabric: set[tuple[int, int]] = set()
    for index in range(1, switch_count):
        parent = rng.randrange(index)
        fabric.add((parent, index))
        links.append(GraphLink(f"sw-{parent}", f"sw-{index}",
                               rate=capacity))
    added = 0
    for _attempt in range(8 * extra_links + 8):
        if added >= extra_links:
            break
        first = rng.randrange(switch_count)
        second = rng.randrange(switch_count)
        pair = (min(first, second), max(first, second))
        if first == second or pair in fabric:
            continue
        fabric.add(pair)
        links.append(GraphLink(f"sw-{pair[0]}", f"sw-{pair[1]}",
                               rate=capacity))
        added += 1
    for index in range(station_count):
        station = _station_name(index)
        access = rng.randrange(switch_count)
        nodes.append(GraphNode(station, "end-system"))
        links.append(GraphLink(station, f"sw-{access}", rate=capacity))
    return GraphTopologySpec(
        name=name or f"graph-random-{int(seed)}",
        nodes=tuple(nodes), links=tuple(links))


def graph_spec_from_network(network) -> GraphTopologySpec:
    """Re-express a legacy :class:`Network` as a graph spec.

    The inverse of :meth:`GraphTopologySpec.to_network` up to link
    declaration order (links are sorted by endpoint names here).  The
    golden equivalence tests round-trip the paper's shapes through this.
    """
    nodes = [GraphNode(name, "switch",
                       technology_delay=network.technology_delay(name))
             for name in network.switches]
    nodes.extend(GraphNode(name, "end-system")
                 for name in network.stations)
    links = [GraphLink(link.node_a, link.node_b, rate=link.capacity,
                       latency=link.propagation_delay)
             for link in sorted(network.links(),
                                key=lambda l: (l.node_a, l.node_b))]
    return GraphTopologySpec(name=network.name, nodes=tuple(nodes),
                             links=tuple(links))
