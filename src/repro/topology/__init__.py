"""Network topology: stations, switches, full-duplex links and routing.

The paper's target architecture replaces the shared MIL-STD-1553B bus with a
Full-Duplex Switched Ethernet network: end stations attached to one or more
store-and-forward switches by full-duplex point-to-point links (no CSMA/CD,
no collisions).  This package models that physical layout and computes the
routes flows take through it.

* :class:`~repro.topology.network.Network` — the topology graph (built on
  networkx) with typed nodes (stations / switches) and attributed links
  (capacity, propagation delay), plus shortest-path routing,
* :mod:`~repro.topology.builders` — canonical layouts used by the
  experiments: single-switch star (the paper's implicit architecture),
  dual-switch and tree layouts for the scalability extensions,
* :mod:`~repro.topology.graph` — declarative, fingerprintable
  :class:`~repro.topology.graph.GraphTopologySpec` for arbitrary
  multi-hop graphs (diamond/ring/star/random families, JSON/CSV
  loaders), convertible to a :class:`Network`,
* :mod:`~repro.topology.routing` — the deterministic
  :class:`~repro.topology.routing.RoutingEngine` (lexicographic
  shortest paths, ECMP enumeration, reachability diagnostics).
"""

from repro.topology.network import Link, Network, NodeKind
from repro.topology.builders import (
    dual_switch_topology,
    single_switch_star,
    tree_topology,
)
from repro.topology.graph import (
    GraphLink,
    GraphNode,
    GraphTopologySpec,
    diamond_graph_spec,
    graph_spec_from_network,
    load_topology_file,
    random_graph_spec,
    ring_graph_spec,
    star_graph_spec,
)
from repro.topology.routing import RoutingEngine, lexicographic_shortest_path

__all__ = [
    "Network",
    "Link",
    "NodeKind",
    "single_switch_star",
    "dual_switch_topology",
    "tree_topology",
    "GraphNode",
    "GraphLink",
    "GraphTopologySpec",
    "diamond_graph_spec",
    "ring_graph_spec",
    "star_graph_spec",
    "random_graph_spec",
    "graph_spec_from_network",
    "load_topology_file",
    "RoutingEngine",
    "lexicographic_shortest_path",
]
