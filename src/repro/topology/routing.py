"""Deterministic routing over arbitrary graph topologies.

The legacy topologies (star, dual switch, tree) are trees, so shortest
paths are unique and any traversal order yields the same routes.  On an
arbitrary graph (rings, diamonds, meshes) several shortest paths can tie,
and the route choice then has to be *deterministic by value*: the same
spec must produce the same routes in every process, under every
``PYTHONHASHSEED``, on every platform — otherwise the simulator, the
analysis and the content-addressed result store disagree about which
ports a flow crosses.

The tie-break rule used everywhere is **lexicographic**: among all
minimal-cost paths, pick the one whose node-name sequence is smallest.
:func:`lexicographic_shortest_path` implements it with a backward
Dijkstra (exact distances to the destination) followed by a greedy
forward walk that always takes the smallest next hop still on a shortest
path; :class:`RoutingEngine` wraps it for :class:`GraphTopologySpec`
objects and adds ECMP enumeration plus reachability diagnostics.

Two structural rules are enforced during the search:

* paths are **simple** (Dijkstra never revisits a node), and
* **end systems never relay** — every intermediate node of a route must
  be a switch, as in AFDX / the paper's architecture.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Callable, Iterable, Mapping

from repro.errors import RoutingError
from repro.flows.flow import Flow
from repro.flows.messages import Message
from repro.topology.graph import GraphLink, GraphTopologySpec

__all__ = ["RoutingEngine", "lexicographic_shortest_path",
           "shortest_path_dag_costs"]

#: Default cap on the number of equal-cost paths ECMP enumeration returns.
DEFAULT_ECMP_LIMIT = 64


def shortest_path_dag_costs(nodes: Iterable[str],
                            successors: Mapping[str, Iterable[str]],
                            destination: str,
                            cost: Callable[[str, str], float] | None = None,
                            via: Callable[[str], bool] | None = None,
                            ) -> dict[str, float]:
    """Exact minimal cost from every node to ``destination``.

    Runs Dijkstra backward over the reversed graph.  ``via`` restricts
    which nodes may appear as *intermediate* hops (the destination itself
    is always allowed); nodes that cannot reach the destination are
    absent from the returned mapping.  Costs are combined with plain
    float addition in a fixed order, so equal inputs give bit-equal
    distances everywhere.
    """
    if cost is None:
        cost = _unit_cost
    predecessors: dict[str, list[str]] = defaultdict(list)
    for node in sorted(nodes):
        for successor in successors.get(node, ()):
            predecessors[successor].append(node)

    distances: dict[str, float] = {}
    queue: list[tuple[float, str]] = [(0.0, destination)]
    while queue:
        distance, node = heapq.heappop(queue)
        if node in distances:
            continue
        distances[node] = distance
        # Relaying through ``node`` is only legal when ``via`` allows it
        # (or when the edge ends the path at the destination itself).
        if node != destination and via is not None and not via(node):
            continue
        for predecessor in predecessors.get(node, ()):
            if predecessor not in distances:
                heapq.heappush(
                    queue, (cost(predecessor, node) + distance, predecessor))
    return distances


def lexicographic_shortest_path(nodes: Iterable[str],
                                successors: Mapping[str, Iterable[str]],
                                source: str, destination: str,
                                cost: Callable[[str, str], float] | None = None,
                                via: Callable[[str], bool] | None = None,
                                distances: Mapping[str, float] | None = None,
                                ) -> tuple[str, ...]:
    """The lexicographically smallest minimal-cost path.

    ``distances`` may carry a precomputed
    :func:`shortest_path_dag_costs` mapping for ``destination``; callers
    routing many pairs (the engine, forwarding tables) pass their cached
    copy so each route costs one greedy walk, not a fresh Dijkstra.

    Raises
    ------
    RoutingError
        If no path exists from ``source`` to ``destination``.
    """
    if source == destination:
        return (source,)
    if cost is None:
        cost = _unit_cost
    if distances is None:
        distances = shortest_path_dag_costs(nodes, successors, destination,
                                            cost=cost, via=via)
    if source not in distances:
        raise RoutingError(
            f"no path between {source!r} and {destination!r}")
    path = [source]
    node = source
    while node != destination:
        remaining = distances[node]
        candidates = [
            successor for successor in successors.get(node, ())
            if (successor == destination or via is None or via(successor))
            and successor in distances
            and cost(node, successor) + distances[successor] == remaining]
        # Dijkstra computed ``remaining`` as the minimum of exactly these
        # sums, so at least one candidate matches bit-for-bit.
        node = min(candidates)
        path.append(node)
    return tuple(path)


def _unit_cost(_source: str, _target: str) -> float:
    return 1.0


class RoutingEngine:
    """Deterministic shortest-path and ECMP routing over a graph spec.

    Parameters
    ----------
    spec:
        The topology.  Structural problems (unknown endpoints, duplicate
        links...) are rejected up front via :meth:`GraphTopologySpec.validated`;
        disconnected specs are accepted so the engine can *diagnose* them.
    weight:
        ``"hops"`` (every link costs 1, the default — and what the
        discrete-event simulator uses) or ``"latency"`` (links cost their
        propagation latency, ties still broken lexicographically).
    """

    WEIGHTS = ("hops", "latency")

    def __init__(self, spec: GraphTopologySpec, weight: str = "hops") -> None:
        if weight not in self.WEIGHTS:
            raise RoutingError(
                f"unknown routing weight {weight!r}; expected one of "
                f"{self.WEIGHTS}")
        spec.validated(connected=False)
        self.spec = spec
        self.weight = weight
        self._successors = spec.successors()
        self._nodes = tuple(sorted(self._successors))
        self._distance_cache: dict[str, dict[str, float]] = {}

    # -- cost model --------------------------------------------------------

    def cost(self, source: str, target: str) -> float:
        """The cost of the directed edge ``source -> target``."""
        if self.weight == "hops":
            return 1.0
        return self.spec.edge(source, target).latency

    def path_cost(self, path: Iterable[str]) -> float:
        """Total cost of a node sequence (left-to-right float sum)."""
        path = tuple(path)
        total = 0.0
        for source, target in zip(path, path[1:]):
            total += self.cost(source, target)
        return total

    # -- routing -----------------------------------------------------------

    def _relay_allowed(self, node: str) -> bool:
        return self.spec.is_switch(node)

    def _distances_to(self, destination: str) -> dict[str, float]:
        if destination not in self._distance_cache:
            self._distance_cache[destination] = shortest_path_dag_costs(
                self._nodes, self._successors, destination,
                cost=self.cost, via=self._relay_allowed)
        return self._distance_cache[destination]

    def has_route(self, source: str, destination: str) -> bool:
        """True when at least one route exists."""
        self.spec.node(source), self.spec.node(destination)
        return source == destination \
            or source in self._distances_to(destination)

    def shortest_path(self, source: str, destination: str) -> tuple[str, ...]:
        """The lexicographically smallest minimal-cost route.

        The choice of next hop from a node toward a destination depends
        only on the (node, destination) pair, so routes computed flow by
        flow are automatically consistent with the destination-keyed
        forwarding tables the simulator builds.
        """
        self.spec.node(source), self.spec.node(destination)
        return lexicographic_shortest_path(
            self._nodes, self._successors, source, destination,
            cost=self.cost, via=self._relay_allowed,
            distances=self._distances_to(destination))

    def ecmp_paths(self, source: str, destination: str,
                   limit: int | None = DEFAULT_ECMP_LIMIT
                   ) -> tuple[tuple[str, ...], ...]:
        """Every minimal-cost route, in lexicographic order.

        Enumerates the shortest-path DAG depth first with sorted
        successor order, so the result (and any truncation at ``limit``)
        is deterministic.  The first entry always equals
        :meth:`shortest_path`.
        """
        self.spec.node(source), self.spec.node(destination)
        if source == destination:
            return ((source,),)
        distances = self._distances_to(destination)
        if source not in distances:
            raise RoutingError(
                f"no path between {source!r} and {destination!r}")
        paths: list[tuple[str, ...]] = []

        def _walk(node: str, prefix: list[str]) -> None:
            if limit is not None and len(paths) >= limit:
                return
            if node == destination:
                paths.append(tuple(prefix))
                return
            remaining = distances[node]
            for successor in self._successors.get(node, ()):
                if successor != destination and not self._relay_allowed(
                        successor):
                    continue
                if successor in distances and \
                        self.cost(node, successor) + distances[successor] \
                        == remaining:
                    prefix.append(successor)
                    _walk(successor, prefix)
                    prefix.pop()

        _walk(source, [source])
        return tuple(paths)

    def select_path(self, source: str, destination: str,
                    key: str) -> tuple[str, ...]:
        """Deterministic ECMP selection: hash ``key`` over the tied routes.

        ``key`` is typically a flow name; the SHA-256-based index is the
        same in every process (no ``hash()`` involved).
        """
        import hashlib

        paths = self.ecmp_paths(source, destination)
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return paths[int.from_bytes(digest[:8], "big") % len(paths)]

    def route_flow(self, flow: Flow | Message) -> Flow:
        """Attach the deterministic shortest route to a flow/message."""
        if isinstance(flow, Message):
            flow = Flow(message=flow)
        if flow.path:
            return flow
        return flow.with_path(self.shortest_path(flow.source,
                                                 flow.destination))

    def route_flows(self, flows: Iterable[Flow | Message]) -> list[Flow]:
        """Route every flow of an iterable."""
        return [self.route_flow(flow) for flow in flows]

    # -- diagnostics -------------------------------------------------------

    def diagnostics(self) -> list[str]:
        """Human-readable routing problems (empty when all pairs route).

        Lists every ordered end-system pair without a route, in sorted
        order — the ``repro topology validate`` command prints these.
        """
        problems = []
        end_systems = self.spec.end_systems
        for source in end_systems:
            distances = self._distances_to(source)
            for other in end_systems:
                if other != source and other not in distances:
                    problems.append(
                        f"no route from {other!r} to {source!r}")
        return sorted(problems)

    def edge(self, source: str, target: str) -> GraphLink:
        """The directed link attributes used for ``source -> target``."""
        return self.spec.edge(source, target)
