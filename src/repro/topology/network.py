"""The network topology graph.

A :class:`Network` is an undirected graph of named nodes — **stations**
(traffic sources/sinks) and **switches** (store-and-forward relays) — joined
by full-duplex **links** carrying a capacity (bits per second) and a
propagation delay (seconds).  Because links are full duplex, each direction
of a link is an independent resource: the analysis and the simulator both
reason about *directed* hops ``(upstream, downstream)``.

Routing picks the lexicographically smallest shortest path (hop count),
so route choice is deterministic by value even on cyclic graph
topologies where several shortest paths tie; for the single-switch star
used by the paper the route is trivially ``station → switch → station``.
Intermediate hops are always switches — stations never relay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.errors import InvalidTopologyError, RoutingError
from repro.flows.flow import Flow
from repro.flows.messages import Message
from repro.topology.routing import lexicographic_shortest_path

__all__ = ["NodeKind", "Link", "Network"]


class NodeKind(enum.Enum):
    """Role of a node in the topology."""

    STATION = "station"
    SWITCH = "switch"


@dataclass(frozen=True)
class Link:
    """A full-duplex link between two nodes.

    Attributes
    ----------
    node_a / node_b:
        The two endpoints (order is not meaningful; the link is full duplex).
    capacity:
        Rate of each direction, in bits per second.
    propagation_delay:
        One-way propagation delay in seconds (a few microseconds at most on
        an aircraft; defaults to 0).
    """

    node_a: str
    node_b: str
    capacity: float
    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise InvalidTopologyError(
                f"link {self.node_a!r}-{self.node_b!r}: capacity must be "
                f"positive, got {self.capacity!r}")
        if self.propagation_delay < 0:
            raise InvalidTopologyError(
                f"link {self.node_a!r}-{self.node_b!r}: propagation delay "
                f"must be non-negative")
        if self.node_a == self.node_b:
            raise InvalidTopologyError(
                f"link endpoints must differ, got {self.node_a!r} twice")

    def other(self, node: str) -> str:
        """The endpoint opposite to ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise InvalidTopologyError(
            f"{node!r} is not an endpoint of link "
            f"{self.node_a!r}-{self.node_b!r}")


class Network:
    """A switched-Ethernet topology with typed nodes and attributed links."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._kinds: dict[str, NodeKind] = {}
        self._technology_delay: dict[str, float] = {}

    # -- construction -----------------------------------------------------

    def add_station(self, name: str) -> None:
        """Add an end station (traffic source/sink)."""
        self._add_node(name, NodeKind.STATION)

    def add_switch(self, name: str, technology_delay: float = 0.0) -> None:
        """Add a store-and-forward switch.

        ``technology_delay`` is the ``t_techno`` bound on the relaying delay
        of this switch (seconds); it enters every bound computed for flows
        crossing the switch.
        """
        if technology_delay < 0:
            raise InvalidTopologyError(
                f"switch {name!r}: technology delay must be non-negative")
        self._add_node(name, NodeKind.SWITCH)
        self._technology_delay[name] = float(technology_delay)

    def _add_node(self, name: str, kind: NodeKind) -> None:
        if not name:
            raise InvalidTopologyError("node name must not be empty")
        if name in self._kinds:
            raise InvalidTopologyError(f"duplicate node name {name!r}")
        self._graph.add_node(name)
        self._kinds[name] = kind

    def add_link(self, node_a: str, node_b: str, capacity: float,
                 propagation_delay: float = 0.0) -> Link:
        """Connect two existing nodes with a full-duplex link."""
        for node in (node_a, node_b):
            if node not in self._kinds:
                raise InvalidTopologyError(f"unknown node {node!r}")
        if self._graph.has_edge(node_a, node_b):
            raise InvalidTopologyError(
                f"link {node_a!r}-{node_b!r} already exists")
        link = Link(node_a=node_a, node_b=node_b, capacity=capacity,
                    propagation_delay=propagation_delay)
        self._graph.add_edge(node_a, node_b, link=link)
        return link

    # -- inspection ---------------------------------------------------------

    @property
    def stations(self) -> list[str]:
        """Sorted list of station names."""
        return sorted(n for n, k in self._kinds.items()
                      if k is NodeKind.STATION)

    @property
    def switches(self) -> list[str]:
        """Sorted list of switch names."""
        return sorted(n for n, k in self._kinds.items()
                      if k is NodeKind.SWITCH)

    @property
    def nodes(self) -> list[str]:
        """Sorted list of every node name."""
        return sorted(self._kinds)

    def kind(self, node: str) -> NodeKind:
        """The role of ``node``."""
        try:
            return self._kinds[node]
        except KeyError:
            raise InvalidTopologyError(f"unknown node {node!r}") from None

    def is_switch(self, node: str) -> bool:
        """True when ``node`` is a switch."""
        return self.kind(node) is NodeKind.SWITCH

    def technology_delay(self, switch: str) -> float:
        """The ``t_techno`` bound of a switch."""
        if not self.is_switch(switch):
            raise InvalidTopologyError(f"{switch!r} is not a switch")
        return self._technology_delay[switch]

    def link(self, node_a: str, node_b: str) -> Link:
        """The link between two adjacent nodes."""
        data = self._graph.get_edge_data(node_a, node_b)
        if data is None:
            raise InvalidTopologyError(
                f"no link between {node_a!r} and {node_b!r}")
        return data["link"]

    def links(self) -> list[Link]:
        """Every link in the topology."""
        return [data["link"] for __, __, data in self._graph.edges(data=True)]

    def neighbors(self, node: str) -> list[str]:
        """Sorted neighbours of ``node``."""
        if node not in self._kinds:
            raise InvalidTopologyError(f"unknown node {node!r}")
        return sorted(self._graph.neighbors(node))

    def degree(self, node: str) -> int:
        """Number of links attached to ``node``."""
        if node not in self._kinds:
            raise InvalidTopologyError(f"unknown node {node!r}")
        return self._graph.degree(node)

    # -- routing -----------------------------------------------------------

    def route(self, source: str, destination: str) -> list[str]:
        """Shortest path (by hop count) from ``source`` to ``destination``.

        Among equal-length paths the lexicographically smallest node
        sequence wins, so the choice is reproducible in every process.
        Intermediate nodes are always switches (stations never relay).

        Raises
        ------
        RoutingError
            If either endpoint is unknown or no path exists.
        """
        for node in (source, destination):
            if node not in self._kinds:
                raise RoutingError(f"unknown node {node!r}")
        successors = {name: self.neighbors(name) for name in self._kinds}
        return list(lexicographic_shortest_path(
            sorted(self._kinds), successors, source, destination,
            via=self.is_switch))

    def route_flow(self, flow: Flow | Message) -> Flow:
        """Attach a route to a flow (or wrap a message into a routed flow)."""
        if isinstance(flow, Message):
            flow = Flow(message=flow)
        path = self.route(flow.source, flow.destination)
        return flow.with_path(path)

    def route_flows(self, flows: Iterable[Flow | Message]) -> list[Flow]:
        """Route every flow of an iterable."""
        return [self.route_flow(flow) for flow in flows]

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants of the topology.

        * every station has exactly one link (full-duplex attachment to one
          switch port), as in AFDX / the paper's architecture,
        * the graph is connected,
        * station-to-station direct links are not allowed (traffic must
          cross a switch, otherwise the multiplexer model does not apply).

        Raises
        ------
        InvalidTopologyError
            If any invariant is violated.
        """
        if not self._kinds:
            raise InvalidTopologyError("the topology has no node")
        if not nx.is_connected(self._graph):
            raise InvalidTopologyError("the topology is not connected")
        for station in self.stations:
            if self.degree(station) != 1:
                raise InvalidTopologyError(
                    f"station {station!r} must have exactly one uplink, "
                    f"has {self.degree(station)}")
            neighbour = self.neighbors(station)[0]
            if not self.is_switch(neighbour):
                raise InvalidTopologyError(
                    f"station {station!r} is directly connected to station "
                    f"{neighbour!r}; stations must attach to switches")

    def access_switch(self, station: str) -> str:
        """The switch a station is attached to (after :meth:`validate`)."""
        neighbours = self.neighbors(station)
        if len(neighbours) != 1 or not self.is_switch(neighbours[0]):
            raise InvalidTopologyError(
                f"station {station!r} is not attached to exactly one switch")
        return neighbours[0]
