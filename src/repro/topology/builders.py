"""Canonical topology builders used by the experiments.

The paper's implicit architecture is a **single-switch star**: every station
is attached to one Full-Duplex Switched Ethernet switch by a 10 Mbps link.
The builders below create that layout plus two natural extensions (dual
switch and tree) used by the scalability/ablation experiments.
"""

from __future__ import annotations

from repro import units
from repro.errors import InvalidTopologyError
from repro.topology.network import Network

__all__ = ["single_switch_star", "dual_switch_topology", "tree_topology"]

#: Default switch relaying-delay bound (t_techno): 16 µs, a typical
#: store-and-forward figure for a small frame at 100 Mbps plus switching
#: fabric latency; the sensitivity experiment sweeps it.
DEFAULT_TECHNOLOGY_DELAY = units.us(16)


def _station_name(index: int) -> str:
    return f"station-{index:02d}"


def single_switch_star(station_count: int,
                       capacity: float = units.mbps(10),
                       technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                       propagation_delay: float = 0.0,
                       switch_name: str = "switch-0") -> Network:
    """A star of ``station_count`` stations around one switch.

    This is the paper's architecture: every station has a dedicated
    full-duplex link of ``capacity`` (10 Mbps by default) to the switch.
    """
    if station_count < 2:
        raise InvalidTopologyError(
            f"a star needs at least 2 stations, got {station_count}")
    network = Network(name=f"star-{station_count}")
    network.add_switch(switch_name, technology_delay=technology_delay)
    for index in range(station_count):
        station = _station_name(index)
        network.add_station(station)
        network.add_link(station, switch_name, capacity=capacity,
                         propagation_delay=propagation_delay)
    network.validate()
    return network


def dual_switch_topology(stations_per_switch: int,
                         capacity: float = units.mbps(10),
                         backbone_capacity: float | None = None,
                         technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                         propagation_delay: float = 0.0) -> Network:
    """Two switches joined by a backbone link, each serving its own stations.

    Models a federated architecture (e.g. forward / aft equipment bays).
    Stations ``station-00 .. station-(n-1)`` hang off ``switch-0`` and
    ``station-n .. station-(2n-1)`` off ``switch-1``.
    """
    if stations_per_switch < 1:
        raise InvalidTopologyError(
            f"need at least 1 station per switch, got {stations_per_switch}")
    if backbone_capacity is None:
        backbone_capacity = capacity
    network = Network(name=f"dual-{2 * stations_per_switch}")
    network.add_switch("switch-0", technology_delay=technology_delay)
    network.add_switch("switch-1", technology_delay=technology_delay)
    network.add_link("switch-0", "switch-1", capacity=backbone_capacity,
                     propagation_delay=propagation_delay)
    for index in range(2 * stations_per_switch):
        station = _station_name(index)
        switch = "switch-0" if index < stations_per_switch else "switch-1"
        network.add_station(station)
        network.add_link(station, switch, capacity=capacity,
                         propagation_delay=propagation_delay)
    network.validate()
    return network


def tree_topology(leaf_switches: int, stations_per_leaf: int,
                  capacity: float = units.mbps(10),
                  backbone_capacity: float | None = None,
                  technology_delay: float = DEFAULT_TECHNOLOGY_DELAY,
                  propagation_delay: float = 0.0) -> Network:
    """A two-level tree: a core switch with ``leaf_switches`` access switches.

    Stations are spread evenly across the leaf switches; every leaf connects
    to the core by a backbone link.  Flows between stations on different
    leaves cross three multiplexing points (station, leaf uplink, core
    downlink), which exercises the end-to-end composition.
    """
    if leaf_switches < 1:
        raise InvalidTopologyError(
            f"need at least one leaf switch, got {leaf_switches}")
    if stations_per_leaf < 1:
        raise InvalidTopologyError(
            f"need at least one station per leaf, got {stations_per_leaf}")
    if backbone_capacity is None:
        backbone_capacity = capacity
    network = Network(name=f"tree-{leaf_switches}x{stations_per_leaf}")
    network.add_switch("core", technology_delay=technology_delay)
    index = 0
    for leaf in range(leaf_switches):
        leaf_name = f"leaf-{leaf}"
        network.add_switch(leaf_name, technology_delay=technology_delay)
        network.add_link(leaf_name, "core", capacity=backbone_capacity,
                         propagation_delay=propagation_delay)
        for __ in range(stations_per_leaf):
            station = _station_name(index)
            network.add_station(station)
            network.add_link(station, leaf_name, capacity=capacity,
                             propagation_delay=propagation_delay)
            index += 1
    network.validate()
    return network
