"""End-to-end bounds on arbitrary multi-hop graph topologies.

The paper's single-multiplexer bound composes along a flow's route by
**left-over service curves**: every directed output port offers the full
link ``beta(t) = C (t - T0)+`` (``T0`` = the relaying latency of the
upstream node), and what a flow actually receives there is the link
minus the cross traffic sharing the port.  For token-bucket cross
traffic ``(b_c, r_c)`` the left-over is again rate-latency::

    R = C - r_c        T = (C*T0 + L_low + b_c) / (C - r_c)

where ``L_low`` is the non-preemptive blocking term of strict priority
(the largest lower-priority burst in transmission; zero under FCFS,
whose left-over treats every other flow at the port as cross traffic).
Left-over curves concatenate by (min-plus) convolution — ``R = min R_i``,
``T = sum T_i`` — and the end-to-end delay bound *pays the burst only
once*.  Switches are store-and-forward: a frame is not available
downstream until it is fully received, which the fluid concatenation
misses, so every hop but the last also pays one **packetisation** term
``l / R_i`` (Le Boudec & Thiran's packetizer result, with ``l`` the
frame length bounded by the flow's burst)::

    D = sum(T_i) + sum_{i<n}(l / R_i) + b / min(R_i) + sum(propagation_i)

Cross-traffic bursts at an inner port are the *output* bursts of their
upstream hops, ``b + r * D_upstream``; those depend on delays which
depend on bursts, so the analysis iterates to a fixed point (Cruz's
time-stopping argument: a converged finite fixed point is a valid
bound).  Cyclic topologies — the ring family — can diverge even below
nominal capacity; when the iteration does not settle, the flows still
moving are conservatively reported unstable (infinite bound, which then
propagates to everything sharing a port with them) rather than with an
unsound finite number.

The per-port **backlog bounds** (aggregate burst at convergence plus
rate times port latency) double as buffer-dimensioning output and as
the per-hop soundness invariant the fuzz harness compares against the
simulator's observed queue maxima.  Routes are the deterministic
lexicographic shortest paths of :class:`RoutingEngine`, which are
exactly what the simulator's destination-keyed forwarding tables
realise — bound and simulation always talk about the same ports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.multiplexer import priority_of
from repro.errors import ConfigurationError, EmptyAggregateError
from repro.flows.flow import Flow
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass
from repro.topology.graph import GraphTopologySpec
from repro.topology.routing import RoutingEngine

__all__ = ["GraphPathAnalysis", "MultiHopAnalysisResult", "PathFlowBound",
           "HopServiceBound", "PortBacklogBound"]

#: Default cap on the burst-propagation fixed-point iteration.
DEFAULT_MAX_ITERATIONS = 16


@dataclass(frozen=True)
class HopServiceBound:
    """The left-over service one flow receives at one directed port."""

    #: Upstream node owning the egress queue.
    node: str
    #: Downstream neighbour the port leads to.
    toward: str
    #: Left-over service rate in bits per second.
    rate: float
    #: Left-over service latency in seconds (``inf`` when overloaded).
    latency: float
    #: Delay bound of the flow at this hop (with its inflated burst).
    delay: float
    #: One-way propagation latency of the link.
    propagation: float


@dataclass(frozen=True)
class PathFlowBound:
    """End-to-end result for one routed flow."""

    #: Flow (message) name.
    name: str
    #: 802.1p class of the flow.
    priority: PriorityClass
    #: The route, as a node-name sequence.
    path: tuple[str, ...]
    #: Number of switches on the route (the "multiplexing points").
    switches: int
    #: End-to-end delay bound in seconds (``inf`` when unstable).
    delay: float
    #: Per-hop left-over services, in route order.
    hops: tuple[HopServiceBound, ...]

    @property
    def stable(self) -> bool:
        """True when the end-to-end bound is finite."""
        return math.isfinite(self.delay)


@dataclass(frozen=True)
class PortBacklogBound:
    """Aggregate backlog bound of one directed egress port.

    Bounds the *total* occupancy of the egress queue (all classes), so
    it is directly comparable with the simulator's per-port
    ``max_queue_bits`` observation under any scheduling policy.
    """

    #: Upstream node owning the egress queue.
    node: str
    #: Downstream neighbour the port leads to.
    toward: str
    #: Number of flows sharing the port.
    flow_count: int
    #: Backlog bound in bits (``inf`` when the port is overloaded).
    backlog_bits: float


@dataclass(frozen=True)
class MultiHopAnalysisResult:
    """Everything :meth:`GraphPathAnalysis.analyze` computes."""

    #: Per-flow end-to-end bounds, sorted by flow name.
    flows: tuple[PathFlowBound, ...]
    #: Per-port aggregate backlog bounds, sorted by (node, toward).
    ports: tuple[PortBacklogBound, ...]
    #: True when the burst-propagation fixed point settled; when False
    #: the flows it could not settle were reported unstable.
    converged: bool
    #: Worst per-port queue bound of every class present (bits).
    class_backlogs: dict = field(default_factory=dict)

    def worst_per_class(self) -> dict[PriorityClass, PathFlowBound]:
        """The worst (largest-delay) flow bound of every class present.

        Flows are scanned in name order and strict ``>`` keeps the
        first maximiser, so the pick is deterministic.
        """
        worst: dict[PriorityClass, PathFlowBound] = {}
        for bound in self.flows:
            current = worst.get(bound.priority)
            if current is None or bound.delay > current.delay:
                worst[bound.priority] = bound
        return worst

    def class_delay(self, priority: PriorityClass) -> float:
        """Worst end-to-end delay bound of one class."""
        delays = [b.delay for b in self.flows if b.priority is priority]
        if not delays:
            raise EmptyAggregateError(
                f"no flow of class {priority.name} was analysed")
        return max(delays)

    def class_backlog(self, priority: PriorityClass) -> float:
        """Worst per-port queue bound of one class."""
        try:
            return self.class_backlogs[priority]
        except KeyError:
            raise EmptyAggregateError(
                f"no flow of class {priority.name} was analysed") from None


@dataclass
class _RoutedFlow:
    """Mutable per-flow working state of the fixed-point iteration."""

    flow: Flow
    priority: PriorityClass
    hops: list[tuple[str, str]]
    #: Cumulative delay bound *before* each hop (inflates the burst).
    upstream: list[float]
    #: Last computed per-hop delay bounds.
    delays: list[float]
    #: Per-hop (rate, latency) of the left-over service.
    services: list[tuple[float, float]]
    #: Set when the fixed point could not settle this flow.
    diverged: bool = False

    def burst_at(self, hop_index: int) -> float:
        """The flow's burst bound entering hop ``hop_index``."""
        if self.diverged:
            return math.inf
        upstream = self.upstream[hop_index]
        if math.isinf(upstream):
            return math.inf
        return self.flow.burst + self.flow.rate * upstream


class GraphPathAnalysis:
    """Left-over-service end-to-end analysis over a graph topology.

    Parameters
    ----------
    spec:
        The (structurally valid, connected) topology.
    policy:
        ``"fcfs"`` or ``"strict-priority"`` — must match the simulator
        cell being validated against.
    max_iterations:
        Cap on the burst-propagation fixed point.
    """

    def __init__(self, spec: GraphTopologySpec,
                 policy: str = "strict-priority",
                 max_iterations: int = DEFAULT_MAX_ITERATIONS) -> None:
        if policy not in ("fcfs", "strict-priority"):
            raise ConfigurationError(
                f"policy must be 'fcfs' or 'strict-priority', "
                f"got {policy!r}")
        self.spec = spec.validated()
        self.policy = policy
        self.max_iterations = int(max_iterations)
        self.engine = RoutingEngine(spec, weight="hops")

    # -- public entry ------------------------------------------------------

    def analyze(self, flows: Iterable[Flow | Message]
                ) -> MultiHopAnalysisResult:
        """Bound every flow end to end and every port's backlog."""
        routed = self._routed(flows)
        if not routed:
            raise EmptyAggregateError("no flow to analyse")
        ports = self._port_membership(routed)
        converged = self._fixed_point(routed, ports)

        flow_bounds = []
        for state in routed:
            hops = []
            for index, (node, toward) in enumerate(state.hops):
                rate, latency = state.services[index]
                hops.append(HopServiceBound(
                    node=node, toward=toward, rate=rate, latency=latency,
                    delay=state.delays[index],
                    propagation=self.spec.edge(node, toward).latency))
            flow_bounds.append(PathFlowBound(
                name=state.flow.name, priority=state.priority,
                path=tuple(state.flow.path),
                switches=sum(1 for node in state.flow.path
                             if self.spec.is_switch(node)),
                delay=self._end_to_end(state, hops),
                hops=tuple(hops)))

        port_bounds, class_backlogs = self._backlogs(routed, ports)
        return MultiHopAnalysisResult(
            flows=tuple(flow_bounds), ports=tuple(port_bounds),
            converged=converged, class_backlogs=class_backlogs)

    # -- construction ------------------------------------------------------

    def _routed(self, flows: Iterable[Flow | Message]) -> list[_RoutedFlow]:
        routed = []
        for item in flows:
            flow = self.engine.route_flow(item)
            hops = flow.hops()
            routed.append(_RoutedFlow(
                flow=flow, priority=priority_of(flow), hops=hops,
                upstream=[0.0] * len(hops), delays=[0.0] * len(hops),
                services=[(math.inf, 0.0)] * len(hops)))
        routed.sort(key=lambda state: state.flow.name)
        return routed

    def _port_membership(self, routed: list[_RoutedFlow]
                         ) -> dict[tuple[str, str],
                                   list[tuple[_RoutedFlow, int]]]:
        ports: dict[tuple[str, str], list[tuple[_RoutedFlow, int]]] = {}
        for state in routed:
            for index, hop in enumerate(state.hops):
                ports.setdefault(hop, []).append((state, index))
        return ports

    # -- the fixed point ---------------------------------------------------

    def _fixed_point(self, routed: list[_RoutedFlow],
                     ports: dict[tuple[str, str],
                                 list[tuple[_RoutedFlow, int]]]) -> bool:
        for _iteration in range(self.max_iterations):
            self._single_pass(ports)
            if not self._accumulate(routed):
                return True
        # The iteration did not settle (a cyclic dependency feeding its
        # own growth).  Everything still moving is conservatively
        # unstable; re-iterate so the infinite bursts propagate to every
        # flow sharing a port with a diverged one (inf is absorbing, so
        # this terminates within one pass per flow).
        self._single_pass(ports)
        moving = self._accumulate(routed)
        if not moving:
            return True
        for state in routed:
            if state.flow.name in moving:
                state.diverged = True
        for _iteration in range(len(routed) + 1):
            self._single_pass(ports)
            if not self._accumulate(routed):
                break
        return False

    def _single_pass(self, ports: dict[tuple[str, str],
                                       list[tuple[_RoutedFlow, int]]]
                     ) -> None:
        for (node, toward) in sorted(ports):
            members = ports[(node, toward)]
            link = self.spec.edge(node, toward)
            latency0 = self.spec.technology_delay(node)
            for state, hop_index in members:
                rate, latency = self._leftover(
                    state, hop_index, members, link.rate, latency0)
                state.services[hop_index] = (rate, latency)
                burst = state.burst_at(hop_index)
                if rate <= 0.0 or math.isinf(latency) or \
                        math.isinf(burst) or state.flow.rate > rate:
                    state.delays[hop_index] = math.inf
                else:
                    state.delays[hop_index] = latency + burst / rate

    def _leftover(self, state: _RoutedFlow, hop_index: int,
                  members: list[tuple[_RoutedFlow, int]],
                  capacity: float, latency0: float
                  ) -> tuple[float, float]:
        """Left-over (rate, latency) of one flow at one port."""
        own = state.priority.value
        cross_burst = 0.0
        cross_rate = 0.0
        blocking = 0.0
        for other, other_index in members:
            if other is state:
                continue
            if self.policy == "strict-priority" and \
                    other.priority.value > own:
                # Lower priority: one frame can block non-preemptively.
                blocking = max(blocking, other.burst_at(other_index))
                continue
            cross_burst += other.burst_at(other_index)
            cross_rate += other.flow.rate
        rate = capacity - cross_rate
        if rate <= 0.0 or math.isinf(cross_burst) or math.isinf(blocking):
            return rate, math.inf
        return rate, (capacity * latency0 + blocking + cross_burst) / rate

    def _accumulate(self, routed: list[_RoutedFlow]) -> set[str]:
        """Refresh upstream delay vectors; return the names that moved."""
        changed = set()
        for state in routed:
            cumulative = 0.0
            upstream = []
            for index, (node, toward) in enumerate(state.hops):
                upstream.append(cumulative)
                cumulative += state.delays[index]
                cumulative += self.spec.edge(node, toward).latency
            if upstream != state.upstream:
                changed.add(state.flow.name)
                state.upstream = upstream
        return changed

    # -- results -----------------------------------------------------------

    def _end_to_end(self, state: _RoutedFlow,
                    hops: list[HopServiceBound]) -> float:
        """Concatenated (pay-bursts-only-once) end-to-end delay bound.

        Every hop but the last adds a packetisation term ``l / R_i``:
        store-and-forward relays only see a frame once it is fully
        transmitted upstream, a delay the fluid concatenation does not
        charge.  The frame length ``l`` is bounded by the flow's burst
        (exact for single-frame messages, conservative for fragmented
        ones).
        """
        if any(math.isinf(hop.delay) for hop in hops):
            return math.inf
        min_rate = min(hop.rate for hop in hops)
        if min_rate <= 0.0 or state.flow.rate > min_rate:
            return math.inf
        packetisation = sum(state.flow.burst / hop.rate
                            for hop in hops[:-1])
        return sum(hop.latency for hop in hops) + packetisation \
            + state.flow.burst / min_rate \
            + sum(hop.propagation for hop in hops)

    def _backlogs(self, routed: list[_RoutedFlow],
                  ports: dict[tuple[str, str],
                              list[tuple[_RoutedFlow, int]]]
                  ) -> tuple[list[PortBacklogBound],
                             dict[PriorityClass, float]]:
        port_bounds = []
        class_backlogs: dict[PriorityClass, float] = {}
        # Every directed port of the topology gets a bound: the simulator
        # reports an (empty) queue maximum even for ports no flow crosses,
        # and the fuzz invariant compares port by port.
        all_ports = {(node, successor)
                     for node, successors in self.spec.successors().items()
                     for successor in successors}
        for (node, toward) in sorted(all_ports):
            members = ports.get((node, toward), [])
            link = self.spec.edge(node, toward)
            latency0 = self.spec.technology_delay(node)
            total_rate = sum(member.flow.rate for member, _ in members)
            total_burst = sum(member.burst_at(index)
                              for member, index in members)
            if total_rate > link.rate or math.isinf(total_burst):
                aggregate = math.inf
            else:
                aggregate = total_burst + total_rate * latency0
            port_bounds.append(PortBacklogBound(
                node=node, toward=toward, flow_count=len(members),
                backlog_bits=aggregate))
            for priority, backlog in self._class_port_backlogs(
                    members, link.rate, latency0).items():
                previous = class_backlogs.get(priority, 0.0)
                class_backlogs[priority] = max(previous, backlog)
        return port_bounds, class_backlogs

    def _class_port_backlogs(self,
                             members: list[tuple[_RoutedFlow, int]],
                             capacity: float, latency0: float
                             ) -> dict[PriorityClass, float]:
        """Per-class queue bounds at one port.

        The class-``p`` queue holds class-``p`` traffic served by the
        link's residual after the strictly higher classes (plus the
        blocking term); under FCFS every class shares the single queue,
        so each gets the aggregate bound.
        """
        present = sorted({member.priority for member, _ in members},
                         key=lambda priority: priority.value)
        backlogs: dict[PriorityClass, float] = {}
        for priority in present:
            own_burst = own_rate = 0.0
            cross_burst = cross_rate = 0.0
            blocking = 0.0
            for member, index in members:
                if self.policy == "fcfs" or member.priority is priority:
                    own_burst += member.burst_at(index)
                    own_rate += member.flow.rate
                elif member.priority.value < priority.value:
                    cross_burst += member.burst_at(index)
                    cross_rate += member.flow.rate
                else:
                    blocking = max(blocking, member.burst_at(index))
            rate = capacity - cross_rate
            if rate <= 0.0 or own_rate > rate or \
                    math.isinf(cross_burst) or math.isinf(own_burst) or \
                    math.isinf(blocking):
                backlogs[priority] = math.inf
                continue
            latency = (capacity * latency0 + blocking + cross_burst) / rate
            backlogs[priority] = own_burst + own_rate * latency
        return backlogs
