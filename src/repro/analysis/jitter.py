"""E6 — jitter comparison (the paper's future-work item).

The conclusion of the paper announces jitter as the next QoS guarantee to
study, noting that jitter is *"inherently low on 1553B applications"* because
of the rigid cyclic schedule.  This experiment measures peak-to-peak delivery
jitter (max − min latency) per priority class for:

* the 1553B cyclic bus,
* switched Ethernet with the FCFS multiplexer,
* switched Ethernet with the strict-priority multiplexer,

using the staggered-release scenario (the synchronised scenario would hide
jitter by making every instance experience the same contention).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.validation import star_for_message_set
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass, assign_priority
from repro.milstd1553.bus import Milstd1553BusSimulator

__all__ = ["JitterRow", "jitter_comparison"]


@dataclass(frozen=True)
class JitterRow:
    """Delivery jitter of one priority class under one technology.

    Jitter is computed **per message stream** (max − min of that stream's
    delivery latencies) and the row reports the worst and the mean stream
    jitter of the class — aggregating samples across streams would instead
    measure how different the streams are from each other, which is not what
    the paper's jitter discussion is about.
    """

    technology: str
    priority: PriorityClass
    #: Worst per-stream peak-to-peak jitter in the class (seconds).
    worst_jitter: float
    #: Mean per-stream peak-to-peak jitter in the class (seconds).
    mean_jitter: float
    #: Worst delivery latency observed in the class (seconds).
    worst_latency: float
    #: Number of message streams contributing at least two samples.
    streams: int

    @property
    def jitter(self) -> float:
        """Alias for :attr:`worst_jitter` (the headline figure)."""
        return self.worst_jitter


def _rows_from_stream_samples(technology: str,
                              per_stream: dict[str, list[float]],
                              stream_class: dict[str, PriorityClass]
                              ) -> list[JitterRow]:
    """Aggregate per-stream latency samples into per-class jitter rows."""
    per_class: dict[PriorityClass, list[tuple[float, float]]] = {}
    for name, samples in per_stream.items():
        if len(samples) < 2:
            continue
        jitter = max(samples) - min(samples)
        per_class.setdefault(stream_class[name], []).append(
            (jitter, max(samples)))
    rows = []
    for cls, values in sorted(per_class.items()):
        jitters = [jitter for jitter, __ in values]
        rows.append(JitterRow(
            technology=technology, priority=cls,
            worst_jitter=max(jitters),
            mean_jitter=sum(jitters) / len(jitters),
            worst_latency=max(worst for __, worst in values),
            streams=len(values)))
    return rows


def _ethernet_jitter(message_set: MessageSet, policy: str, capacity: float,
                     technology_delay: float, duration: float,
                     seed: int) -> list[JitterRow]:
    network = star_for_message_set(message_set, capacity=capacity,
                                   technology_delay=technology_delay)
    simulator = EthernetNetworkSimulator(
        network, message_set.messages, policy=policy, scenario="staggered",
        seed=seed)
    results = simulator.run(duration=duration)
    label = "ethernet-fcfs" if policy == "fcfs" else "ethernet-priority"
    per_stream = {name: recorder.samples
                  for name, recorder in results.flow_latencies.items()}
    stream_class = {m.name: assign_priority(m) for m in message_set}
    return _rows_from_stream_samples(label, per_stream, stream_class)


def _milstd1553_jitter(message_set: MessageSet, duration: float,
                       seed: int) -> list[JitterRow]:
    simulator = Milstd1553BusSimulator(message_set,
                                       sporadic_scenario="random", seed=seed)
    results = simulator.run(duration=duration)
    per_stream = {name: recorder.samples
                  for name, recorder in results.message_latencies.items()}
    stream_class = {m.name: assign_priority(m) for m in message_set}
    return _rows_from_stream_samples("mil-std-1553b", per_stream,
                                     stream_class)


def jitter_comparison(message_set: MessageSet,
                      capacity: float = units.mbps(10),
                      technology_delay: float = units.us(16),
                      duration: float = units.ms(640),
                      seed: int = 1) -> list[JitterRow]:
    """Per-class jitter under 1553B, Ethernet-FCFS and Ethernet-priority."""
    rows: list[JitterRow] = []
    rows.extend(_milstd1553_jitter(message_set, duration, seed))
    rows.extend(_ethernet_jitter(message_set, "fcfs", capacity,
                                 technology_delay, duration, seed))
    rows.extend(_ethernet_jitter(message_set, "strict-priority", capacity,
                                 technology_delay, duration, seed))
    return rows
