"""Buffer dimensioning for the switched network.

The paper's motivation section points out that on an uncontrolled switched
Ethernet "messages can be lost if buffers overflow".  With the traffic
shaping in place the Network Calculus gives, for every egress port, a
**backlog bound** — the largest amount of traffic that can ever be queued —
so the switch and station buffers can be dimensioned once and for all and
loss becomes impossible by construction.

This module computes those per-port bounds (station uplinks and switch
output ports of the star topology) and, optionally, compares them with the
largest queue occupancy observed in a simulation run, which must stay below
the bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro import units
from repro.analysis.validation import star_for_message_set, wire_level_messages
from repro.core.netcalc import TokenBucketArrivalCurve, backlog_bound
from repro.core.netcalc.service import RateLatencyServiceCurve
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.flows.message_set import MessageSet
from repro.topology.network import Network

__all__ = ["PortBufferRequirement", "buffer_requirements",
           "validate_buffer_requirements"]


@dataclass(frozen=True)
class PortBufferRequirement:
    """Backlog bound of one directed egress port."""

    #: Upstream node owning the egress queue.
    node: str
    #: Downstream neighbour the port leads to.
    toward: str
    #: Number of flows sharing the port.
    flow_count: int
    #: Backlog bound in bits.
    backlog_bits: float
    #: Observed maximum queue occupancy in bits (NaN when not simulated).
    observed_bits: float = float("nan")

    @property
    def backlog_bytes(self) -> float:
        """Backlog bound in bytes (what a datasheet would quote)."""
        return units.to_bytes(self.backlog_bits)

    @property
    def observed_within_bound(self) -> bool:
        """True when the observed occupancy stays below the bound (or NaN)."""
        if self.observed_bits != self.observed_bits:
            return True
        return self.observed_bits <= self.backlog_bits + 1e-9


def buffer_requirements(message_set: MessageSet,
                        network: Network | None = None,
                        technology_delay: float = units.us(16)
                        ) -> list[PortBufferRequirement]:
    """Per-port backlog bounds for a message set on its star topology.

    The bound of a port is the backlog bound of the aggregate token bucket of
    the flows sharing it, served at the link rate after the relaying latency
    (zero at station uplinks, ``t_techno`` at switch ports).
    """
    if network is None:
        network = star_for_message_set(message_set,
                                       technology_delay=technology_delay)
    flows = network.route_flows(wire_level_messages(message_set))

    per_port: dict[tuple[str, str], list] = defaultdict(list)
    for flow in flows:
        for node, toward in flow.hops():
            per_port[(node, toward)].append(flow)

    requirements = []
    for (node, toward), members in sorted(per_port.items()):
        link = network.link(node, toward)
        latency = (network.technology_delay(node)
                   if network.is_switch(node) else 0.0)
        aggregate = TokenBucketArrivalCurve(
            bucket=sum(f.burst for f in members),
            token_rate=sum(f.rate for f in members))
        service = RateLatencyServiceCurve(rate=link.capacity, delay=latency) \
            if latency > 0 else RateLatencyServiceCurve(rate=link.capacity,
                                                        delay=0.0)
        requirements.append(PortBufferRequirement(
            node=node, toward=toward, flow_count=len(members),
            backlog_bits=backlog_bound(aggregate, service)))
    return requirements


def validate_buffer_requirements(message_set: MessageSet,
                                 simulation_duration: float = units.ms(320),
                                 seed: int = 1,
                                 technology_delay: float = units.us(16)
                                 ) -> list[PortBufferRequirement]:
    """Compare the analytic backlog bounds with simulated queue occupancy.

    Runs the strict-priority simulation under synchronised releases and fills
    :attr:`PortBufferRequirement.observed_bits` with the largest occupancy
    each egress queue reached.
    """
    network = star_for_message_set(message_set,
                                   technology_delay=technology_delay)
    requirements = buffer_requirements(message_set, network,
                                       technology_delay=technology_delay)
    simulator = EthernetNetworkSimulator(network, message_set.messages,
                                         policy="strict-priority",
                                         scenario="synchronized", seed=seed)
    results = simulator.run(duration=simulation_duration)
    observed = results.max_queue_bits
    return [PortBufferRequirement(
        node=req.node, toward=req.toward, flow_count=req.flow_count,
        backlog_bits=req.backlog_bits,
        observed_bits=observed.get(f"{req.node}->{req.toward}", float("nan")))
        for req in requirements]
