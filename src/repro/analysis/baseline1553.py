"""E3 — the MIL-STD-1553B baseline.

The paper's Section 2 describes how the case-study traffic is carried today:
a 160 ms major frame divided into 20 ms minor frames, periodic messages in
the transaction table, sporadic messages polled.  This experiment regenerates
that baseline for the synthetic case study:

* the schedule (per-minor-frame utilisation, feasibility),
* the analytic worst-case response times per message class,
* the simulated response times over a few major frames,

and checks the two structural facts the paper states: the polling cycle
(minor frame) is not smaller than the smallest message period, and the major
frame covers the biggest message period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass, assign_priority
from repro.milstd1553.analysis import Milstd1553Analysis
from repro.milstd1553.bus import Milstd1553BusSimulator
from repro.milstd1553.schedule import MajorFrameSchedule

__all__ = ["Baseline1553Report", "baseline_1553_report"]


@dataclass
class Baseline1553Report:
    """Everything the E3 benchmark prints about the 1553B baseline."""

    #: Worst-case busy time of each minor frame (seconds).
    minor_frame_durations: list[float]
    #: Worst-case utilisation of each minor frame (fraction of 20 ms).
    minor_frame_utilizations: list[float]
    #: True when every minor frame fits.
    feasible: bool
    #: Mean bus utilisation observed in simulation.
    simulated_bus_utilization: float
    #: Number of minor-frame overruns observed in simulation.
    simulated_overruns: int
    #: Analytic worst-case response time per priority class (seconds).
    analytic_worst_per_class: dict[PriorityClass, float] = field(
        default_factory=dict)
    #: Simulated worst response time per priority class (seconds).
    simulated_worst_per_class: dict[PriorityClass, float] = field(
        default_factory=dict)

    @property
    def max_utilization(self) -> float:
        """Worst-case utilisation of the busiest minor frame."""
        return max(self.minor_frame_utilizations)


def baseline_1553_report(message_set: MessageSet,
                         simulation_duration: float = units.ms(640),
                         seed: int = 1) -> Baseline1553Report:
    """Build the E3 report for a message set (schedule + analysis + simulation)."""
    schedule = MajorFrameSchedule(message_set)
    analysis = Milstd1553Analysis(schedule)
    simulator = Milstd1553BusSimulator(message_set, schedule=schedule,
                                       sporadic_scenario="greedy", seed=seed)
    results = simulator.run(duration=simulation_duration)

    analytic_worst: dict[PriorityClass, float] = {}
    simulated_worst: dict[PriorityClass, float] = {}
    for message in message_set:
        cls = assign_priority(message)
        bound = analysis.bound_for(message).bound
        analytic_worst[cls] = max(analytic_worst.get(cls, 0.0), bound)
        observed = results.message_latencies[message.name].maximum
        if observed == observed:  # skip NaN (no delivery recorded)
            simulated_worst[cls] = max(simulated_worst.get(cls, 0.0), observed)

    return Baseline1553Report(
        minor_frame_durations=schedule.minor_frame_durations(),
        minor_frame_utilizations=schedule.utilizations(),
        feasible=schedule.is_feasible(),
        simulated_bus_utilization=results.bus_utilization,
        simulated_overruns=results.minor_frame_overruns,
        analytic_worst_per_class=analytic_worst,
        simulated_worst_per_class=simulated_worst)
