"""E2 — FCFS constraint violations across link capacities.

Section 2 of the paper observes that *"despite the relative speed ratio
between Switched Ethernet (10 Mbps) and 1553B (1 Mbps), our results show that
some real-time constraints are violated"* under plain FCFS multiplexing —
i.e. raw bandwidth does not buy determinism.  This experiment quantifies that
claim: for each capacity profile it reports, per priority class, whether the
FCFS bound and the strict-priority bound respect the class constraint, and
how many individual messages are violated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.paper_model import PaperCaseStudy
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass

__all__ = ["ViolationRow", "fcfs_violation_table"]

#: Capacities swept by default: the paper's 10 Mbps and the Fast-Ethernet
#: upgrade path (plus 1553B's raw rate for reference — the shaping analysis
#: still applies even though 1553B itself is not a switched network).
DEFAULT_CAPACITIES = (units.mbps(10), units.mbps(100))


@dataclass(frozen=True)
class ViolationRow:
    """Violation accounting for one (capacity, priority class) pair."""

    capacity: float
    priority: PriorityClass
    deadline: float | None
    fcfs_bound: float
    priority_bound: float
    #: Messages of the class whose own deadline is violated by the FCFS bound.
    fcfs_violated_messages: int
    #: Messages of the class whose own deadline is violated by the SP bound.
    priority_violated_messages: int
    message_count: int

    @property
    def fcfs_ok(self) -> bool:
        """True when no message of the class is violated under FCFS."""
        return self.fcfs_violated_messages == 0

    @property
    def priority_ok(self) -> bool:
        """True when no message of the class is violated under priorities."""
        return self.priority_violated_messages == 0


def fcfs_violation_table(message_set: MessageSet,
                         capacities: tuple[float, ...] = DEFAULT_CAPACITIES,
                         technology_delay: float = units.us(16)
                         ) -> list[ViolationRow]:
    """Per-capacity, per-class violation accounting (experiment E2).

    A message is *violated* when the delay bound that applies to it (the
    FCFS bound, or its class's ``D_p``) exceeds its individual deadline.
    """
    rows: list[ViolationRow] = []
    grouped = message_set.by_priority()
    for capacity in capacities:
        study = PaperCaseStudy(message_set, capacity=capacity,
                               technology_delay=technology_delay)
        fcfs_bounds = study.class_bounds("fcfs")
        priority_bounds = study.class_bounds("strict-priority")
        deadlines = study.class_deadlines()
        for cls in PriorityClass:
            if cls not in priority_bounds:
                continue
            members = grouped[cls]
            fcfs_violated = sum(
                1 for m in members
                if m.deadline is not None and fcfs_bounds[cls] > m.deadline)
            priority_violated = sum(
                1 for m in members
                if m.deadline is not None
                and priority_bounds[cls] > m.deadline)
            rows.append(ViolationRow(
                capacity=capacity,
                priority=cls,
                deadline=deadlines.get(cls),
                fcfs_bound=fcfs_bounds[cls],
                priority_bound=priority_bounds[cls],
                fcfs_violated_messages=fcfs_violated,
                priority_violated_messages=priority_violated,
                message_count=len(members)))
    return rows
