"""E7 — sensitivity and ablation studies on the design choices.

DESIGN.md calls out three design parameters whose influence the paper leaves
implicit; this module quantifies each of them on the analytic bounds:

* ``t_techno`` — the bound on the switch relaying delay, which enters every
  bound additively (:func:`technology_delay_sweep`),
* the **token-bucket burst** — the paper sizes the bucket at exactly one
  message; inflating the bucket (e.g. to tolerate release jitter) grows every
  bound linearly (:func:`burst_scaling_sweep`),
* **non-preemption** — the ``max_{q>p} b_j`` blocking term of the priority
  bound; a hypothetical preemptive multiplexer drops it
  (:func:`preemption_ablation`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.paper_model import PaperCaseStudy
from repro.core.multiplexer import StrictPriorityMultiplexerAnalysis
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass
from repro.workloads.sweeps import scale_message_sizes

__all__ = [
    "TechnologyDelayRow",
    "BurstScalingRow",
    "PreemptionRow",
    "technology_delay_sweep",
    "burst_scaling_sweep",
    "preemption_ablation",
]

#: Default t_techno sweep: 0 to 100 µs.
DEFAULT_TECHNOLOGY_DELAYS = (0.0, units.us(8), units.us(16), units.us(40),
                             units.us(100))
#: Default burst scaling factors; the largest value is chosen to push the
#: case study past its constraints, so the sweep shows where they break.
DEFAULT_BURST_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class TechnologyDelayRow:
    """Bounds obtained for one value of ``t_techno``."""

    technology_delay: float
    fcfs_bound: float
    urgent_priority_bound: float
    urgent_meets_deadline: bool


@dataclass(frozen=True)
class BurstScalingRow:
    """Bounds obtained after scaling every message size by ``factor``."""

    factor: float
    fcfs_bound: float
    priority_bounds: dict[PriorityClass, float]
    all_constraints_met: bool


@dataclass(frozen=True)
class PreemptionRow:
    """Non-preemptive vs (hypothetical) preemptive priority bound per class."""

    priority: PriorityClass
    non_preemptive_bound: float
    preemptive_bound: float

    @property
    def blocking_cost(self) -> float:
        """Extra delay caused by non-preemption (seconds)."""
        return self.non_preemptive_bound - self.preemptive_bound


def technology_delay_sweep(
        message_set: MessageSet,
        capacity: float = units.mbps(10),
        delays: tuple[float, ...] = DEFAULT_TECHNOLOGY_DELAYS
        ) -> list[TechnologyDelayRow]:
    """Sweep ``t_techno`` and report the FCFS and urgent-class bounds."""
    rows = []
    for delay in delays:
        study = PaperCaseStudy(message_set, capacity=capacity,
                               technology_delay=delay)
        priority_bounds = study.class_bounds("strict-priority")
        urgent = priority_bounds.get(PriorityClass.URGENT, float("nan"))
        rows.append(TechnologyDelayRow(
            technology_delay=delay,
            fcfs_bound=study.fcfs_bound(),
            urgent_priority_bound=urgent,
            urgent_meets_deadline=urgent < units.ms(3)))
    return rows


def burst_scaling_sweep(message_set: MessageSet,
                        capacity: float = units.mbps(10),
                        technology_delay: float = units.us(16),
                        factors: tuple[float, ...] = DEFAULT_BURST_FACTORS
                        ) -> list[BurstScalingRow]:
    """Scale every message size and report how the bounds move."""
    rows = []
    for factor in factors:
        scaled = scale_message_sizes(message_set, factor)
        study = PaperCaseStudy(scaled, capacity=capacity,
                               technology_delay=technology_delay)
        figure_rows = study.figure1_rows()
        rows.append(BurstScalingRow(
            factor=factor,
            fcfs_bound=study.fcfs_bound(),
            priority_bounds=study.class_bounds("strict-priority"),
            all_constraints_met=all(r.priority_meets_deadline
                                    for r in figure_rows)))
    return rows


def preemption_ablation(message_set: MessageSet,
                        capacity: float = units.mbps(10),
                        technology_delay: float = units.us(16)
                        ) -> list[PreemptionRow]:
    """Quantify the non-preemptive blocking term of the priority bound."""
    non_preemptive = StrictPriorityMultiplexerAnalysis(
        capacity=capacity, technology_delay=technology_delay)
    preemptive = StrictPriorityMultiplexerAnalysis(
        capacity=capacity, technology_delay=technology_delay, preemptive=True)
    messages = message_set.messages
    non_preemptive_bounds = non_preemptive.class_bounds(messages)
    preemptive_bounds = preemptive.class_bounds(messages)
    rows = []
    for cls in PriorityClass:
        if cls not in non_preemptive_bounds:
            continue
        rows.append(PreemptionRow(
            priority=cls,
            non_preemptive_bound=non_preemptive_bounds[cls].delay,
            preemptive_bound=preemptive_bounds[cls].delay))
    return rows
