"""E5 — analytic bounds vs simulated worst-case delays.

The paper only reports analytic bounds.  A credible reproduction must also
show that those bounds *dominate* what actually happens on the network, so
this experiment:

1. builds the single-switch star topology of the case study and routes every
   message through it,
2. computes the per-flow end-to-end bounds with
   :class:`repro.core.endtoend.EndToEndAnalysis` (FCFS and strict priority),
3. simulates the same network with
   :class:`repro.ethernet.EthernetNetworkSimulator` under the adversarial
   *synchronised release* scenario,
4. reports, per priority class, the analytic worst bound, the worst
   simulated delay and whether the bound holds (it must).

The simulated values are typically well below the bounds (the analysis is a
worst case over every arrival pattern the shapers allow), but they follow the
same ordering across classes and policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.endtoend import EndToEndAnalysis
from repro.ethernet.frame import wire_burst
from repro.ethernet.network_sim import EthernetNetworkSimulator
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass
from repro.topology.builders import single_switch_star
from repro.topology.network import Network

__all__ = [
    "BoundValidationRow",
    "validate_bounds",
    "star_for_message_set",
    "star_for_stations",
    "wire_level_messages",
]


def wire_level_messages(message_set: MessageSet) -> list[Message]:
    """Copies of the messages sized on their on-wire burst.

    The simulator transmits Ethernet frames (padding, headers, preamble and
    inter-frame gap included), so the analytic side of the validation must
    use the same on-wire sizes; otherwise the simulated delays of very small
    messages (padded to the 64-byte Ethernet minimum) could exceed a bound
    computed from their 2-byte payload.
    """
    return [message.with_size(wire_burst(message)) for message in message_set]


@dataclass(frozen=True)
class BoundValidationRow:
    """Bound vs simulation for one (policy, priority class) pair."""

    policy: str
    priority: PriorityClass
    analytic_bound: float
    simulated_worst: float
    simulated_mean: float
    samples: int

    @property
    def bound_holds(self) -> bool:
        """True when the analytic bound dominates the simulated worst case."""
        return self.simulated_worst <= self.analytic_bound + 1e-9

    @property
    def tightness(self) -> float:
        """Simulated worst divided by the bound (1.0 = tight, small = loose)."""
        if self.analytic_bound <= 0:
            return float("nan")
        return self.simulated_worst / self.analytic_bound


def star_for_message_set(message_set: MessageSet,
                         capacity: float = units.mbps(10),
                         technology_delay: float = units.us(16)) -> Network:
    """The single-switch star connecting every station of a message set."""
    stations = message_set.stations()
    network = single_switch_star(station_count=len(stations),
                                 capacity=capacity,
                                 technology_delay=technology_delay)
    # ``single_switch_star`` names stations station-00..station-NN in the
    # same scheme as the workload generator, so the names line up; assert it
    # to fail fast if a custom message set uses different names.
    missing = set(stations) - set(network.stations)
    if missing:
        raise ValueError(
            f"message-set stations {sorted(missing)} are not covered by the "
            f"star topology; build the topology explicitly for custom names")
    return network


def star_for_stations(stations: "list[str] | tuple[str, ...]",
                      capacity: float,
                      technology_delay: float) -> Network:
    """A single-switch star over arbitrary station names.

    Unlike :func:`star_for_message_set` this accepts any station-name
    scheme (the fuzz generator's replicated workloads use ``-rk``
    suffixes the canonical builders do not know about), so it is the
    network behind every fuzz cell and the star path of the bound
    engines.
    """
    network = Network(name=f"fuzz-star-{len(stations)}")
    network.add_switch("switch-0", technology_delay=technology_delay)
    for station in stations:
        network.add_station(station)
        network.add_link(station, "switch-0", capacity=capacity,
                         propagation_delay=0.0)
    network.validate()
    return network


def validate_bounds(message_set: MessageSet,
                    capacity: float = units.mbps(10),
                    technology_delay: float = units.us(16),
                    simulation_duration: float = units.ms(320),
                    seed: int = 1,
                    policies: tuple[str, ...] = ("fcfs", "strict-priority")
                    ) -> list[BoundValidationRow]:
    """Run the bound-vs-simulation validation (experiment E5)."""
    network = star_for_message_set(message_set, capacity=capacity,
                                   technology_delay=technology_delay)
    analysis_messages = wire_level_messages(message_set)
    rows: list[BoundValidationRow] = []
    for policy in policies:
        analysis = EndToEndAnalysis(network, policy=policy)
        analytic = analysis.analyze(analysis_messages)
        worst_per_class = {cls: bound.total_delay
                           for cls, bound in analytic.worst_per_class().items()}

        simulator = EthernetNetworkSimulator(
            network, message_set.messages, policy=policy,
            scenario="synchronized", seed=seed)
        results = simulator.run(duration=simulation_duration)

        for cls, analytic_bound in sorted(worst_per_class.items()):
            summary = results.class_summary(cls)
            if summary.count == 0:
                continue
            rows.append(BoundValidationRow(
                policy=policy,
                priority=cls,
                analytic_bound=analytic_bound,
                simulated_worst=summary.maximum,
                simulated_mean=summary.mean,
                samples=summary.count))
    return rows
