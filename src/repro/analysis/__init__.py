"""Evaluation harness: one module per experiment of DESIGN.md.

Every experiment is a plain function (or small class) that takes a message
set / topology and returns structured rows; the benchmark harness under
``benchmarks/`` and the examples call these functions and render the rows
with :mod:`repro.reporting`.

* :mod:`~repro.analysis.paper_model` — **E1 / Figure 1**: the paper's
  single-multiplexer case study, FCFS vs strict priority, per-class bounds
  against the real-time constraints,
* :mod:`~repro.analysis.violations` — **E2**: FCFS constraint-violation
  table across link capacities,
* :mod:`~repro.analysis.baseline1553` — **E3**: the MIL-STD-1553B baseline
  (schedule feasibility, utilization, simulated response times),
* :mod:`~repro.analysis.comparison` — **E4**: 1553B vs Ethernet-FCFS vs
  Ethernet-priority side-by-side worst-case response times,
* :mod:`~repro.analysis.validation` — **E5**: analytic bound vs simulated
  worst delay on the switched network,
* :mod:`~repro.analysis.jitter` — **E6**: per-class jitter under the two
  Ethernet policies and on the 1553B bus,
* :mod:`~repro.analysis.sensitivity` — **E7**: ablations on ``t_techno``,
  shaper burst sizing and preemption,
* :mod:`~repro.analysis.scalability` — **E8**: feasibility of each
  approach as the case-study traffic is replicated.

The per-experiment entry points above all bound delays with the paper's
network calculus.  The competing WCRT backends live behind the
bound-engine registry (:mod:`~repro.analysis.engines`), re-exported
here: :class:`BoundEngine` is the protocol, :func:`get_engine` /
:func:`resolve_engines` / :func:`engine_names` query the registry
(``calculus``, ``holistic``, ``trajectory``), :func:`register_engine`
adds a backend, and :class:`EngineResult` / :class:`EngineSpec` are the
value types engine verdicts and selections travel as.

To evaluate whole families of configurations (capacities, topologies,
replication ladders) in one batch with shared-intermediate memoization, use
the campaign layer (:mod:`repro.campaigns`) or ``repro campaign`` instead
of looping over these entry points by hand.
"""

from repro.analysis.engines import (
    DEFAULT_ENGINE,
    ENGINE_CHOICES,
    BoundEngine,
    EngineResult,
    EngineSpec,
    all_engines,
    engine_names,
    get_engine,
    register_engine,
    resolve_engines,
)
from repro.analysis.paper_model import (
    ClassBoundRow,
    PaperCaseStudy,
    figure1_rows,
)
from repro.analysis.violations import ViolationRow, fcfs_violation_table
from repro.analysis.baseline1553 import Baseline1553Report, baseline_1553_report
from repro.analysis.comparison import ComparisonRow, technology_comparison
from repro.analysis.validation import BoundValidationRow, validate_bounds
from repro.analysis.jitter import JitterRow, jitter_comparison
from repro.analysis.sensitivity import (
    BurstScalingRow,
    PreemptionRow,
    TechnologyDelayRow,
    burst_scaling_sweep,
    preemption_ablation,
    technology_delay_sweep,
)
from repro.analysis.buffers import (
    PortBufferRequirement,
    buffer_requirements,
    validate_buffer_requirements,
)

__all__ = [
    "PaperCaseStudy",
    "ClassBoundRow",
    "figure1_rows",
    "BoundEngine",
    "EngineResult",
    "EngineSpec",
    "DEFAULT_ENGINE",
    "ENGINE_CHOICES",
    "register_engine",
    "get_engine",
    "engine_names",
    "all_engines",
    "resolve_engines",
    "ViolationRow",
    "fcfs_violation_table",
    "Baseline1553Report",
    "baseline_1553_report",
    "ComparisonRow",
    "technology_comparison",
    "BoundValidationRow",
    "validate_bounds",
    "JitterRow",
    "jitter_comparison",
    "TechnologyDelayRow",
    "BurstScalingRow",
    "PreemptionRow",
    "technology_delay_sweep",
    "burst_scaling_sweep",
    "preemption_ablation",
    "PortBufferRequirement",
    "buffer_requirements",
    "validate_buffer_requirements",
]
