"""E4 — MIL-STD-1553B vs switched Ethernet, side by side.

The paper motivates the migration by contrasting the deterministic but slow,
master-polled 1553B bus with the fast but (natively) non-deterministic
switched Ethernet.  This experiment lines up, per priority class:

* the worst-case response time on the 1553B cyclic schedule (analytic),
* the worst-case delay bound on 10 Mbps switched Ethernet with FCFS
  multiplexing,
* the worst-case delay bound with the four-queue strict-priority
  multiplexing,

against the binding class deadline, so the reader sees at a glance where raw
bandwidth helps, where it does not, and what the priorities add.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.paper_model import PaperCaseStudy
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass, assign_priority
from repro.milstd1553.analysis import Milstd1553Analysis
from repro.milstd1553.schedule import MajorFrameSchedule

__all__ = ["ComparisonRow", "technology_comparison"]


@dataclass(frozen=True)
class ComparisonRow:
    """One priority class compared across the three technologies."""

    priority: PriorityClass
    message_count: int
    deadline: float | None
    #: Analytic worst-case response time on the 1553B cyclic schedule (s).
    milstd1553_bound: float
    #: FCFS delay bound on switched Ethernet (s).
    ethernet_fcfs_bound: float
    #: Strict-priority delay bound on switched Ethernet (s).
    ethernet_priority_bound: float

    @property
    def milstd1553_ok(self) -> bool:
        """True when the 1553B bound respects the class deadline."""
        return self.deadline is None or self.milstd1553_bound <= self.deadline

    @property
    def fcfs_ok(self) -> bool:
        """True when the Ethernet FCFS bound respects the class deadline."""
        return (self.deadline is None
                or self.ethernet_fcfs_bound <= self.deadline)

    @property
    def priority_ok(self) -> bool:
        """True when the Ethernet priority bound respects the class deadline."""
        return (self.deadline is None
                or self.ethernet_priority_bound <= self.deadline)

    @property
    def speedup_over_1553(self) -> float:
        """1553B worst case divided by the Ethernet priority bound."""
        if self.ethernet_priority_bound <= 0:
            return float("inf")
        return self.milstd1553_bound / self.ethernet_priority_bound


def technology_comparison(message_set: MessageSet,
                          capacity: float = units.mbps(10),
                          technology_delay: float = units.us(16)
                          ) -> list[ComparisonRow]:
    """Per-class comparison of 1553B, Ethernet-FCFS and Ethernet-priority."""
    schedule = MajorFrameSchedule(message_set)
    bus_analysis = Milstd1553Analysis(schedule)
    study = PaperCaseStudy(message_set, capacity=capacity,
                           technology_delay=technology_delay)
    fcfs_bounds = study.class_bounds("fcfs")
    priority_bounds = study.class_bounds("strict-priority")
    deadlines = study.class_deadlines()
    grouped = message_set.by_priority()

    milstd_worst: dict[PriorityClass, float] = {}
    for message in message_set:
        cls = assign_priority(message)
        bound = bus_analysis.bound_for(message).bound
        milstd_worst[cls] = max(milstd_worst.get(cls, 0.0), bound)

    rows: list[ComparisonRow] = []
    for cls in PriorityClass:
        if cls not in priority_bounds:
            continue
        rows.append(ComparisonRow(
            priority=cls,
            message_count=len(grouped[cls]),
            deadline=deadlines.get(cls),
            milstd1553_bound=milstd_worst.get(cls, 0.0),
            ethernet_fcfs_bound=fcfs_bounds[cls],
            ethernet_priority_bound=priority_bounds[cls]))
    return rows
