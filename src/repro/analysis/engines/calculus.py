"""The ``calculus`` engine — the paper's network-calculus bounds.

This engine is a thin wrapper around the reproduction's existing
analysis paths and is **bit-identical** to them by construction:

* scenario-level bounds reuse the campaign runner's math — the paper's
  single-point closed forms (:func:`repro.core.multiplexer.
  compute_class_bounds`, as in :class:`~repro.analysis.paper_model.
  PaperCaseStudy`) with the per-extra-multiplexing-point latency term,
  and :class:`~repro.analysis.multihop.GraphPathAnalysis` on graph
  topologies,
* network-level bounds (the fuzz/simulation floor checks) reuse
  :class:`repro.core.endtoend.EndToEndAnalysis` on stars and
  ``GraphPathAnalysis`` on graphs — exactly the code the fuzz harness
  has always validated against the simulator.

Every other engine is measured against this one: ``calculus`` is the
reference both for soundness regressions and for the tightness ranking.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.analysis.engines.base import (EngineResult, ScenarioBoundEngine,
                                         present_classes)
from repro.core.multiplexer import (compute_class_bounds,
                                    compute_service_curve)
from repro.errors import EmptyAggregateError, UnstableSystemError
from repro.flows.priorities import PriorityClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaigns.scenario import Scenario
    from repro.flows.messages import Message
    from repro.topology.graph import GraphTopologySpec
    from repro.topology.network import Network

__all__ = ["CalculusEngine"]


class CalculusEngine(ScenarioBoundEngine):
    """Network-calculus bounds, wrapping the pre-engine analysis paths."""

    name = "calculus"

    def class_bounds(self, scenario: "Scenario",
                     policy: str) -> EngineResult:
        """Scenario-level bounds, identical to the campaign runner's rows."""
        from repro.core.multiplexer import aggregate_flows

        message_set = scenario.workload.build()
        aggregates = aggregate_flows(message_set.messages)
        mapping: dict[PriorityClass, float] = {}
        if scenario.topology.kind == "graph":
            from repro.analysis.multihop import GraphPathAnalysis

            graph_spec = scenario.topology.build_graph(
                scenario.workload.total_stations, scenario.capacity,
                scenario.technology_delay)
            outcome = GraphPathAnalysis(
                graph_spec, policy=policy).analyze(message_set.messages)
            for cls in sorted(aggregates):
                try:
                    mapping[cls] = outcome.class_delay(cls)
                except EmptyAggregateError:
                    continue
            return EngineResult.from_mapping(self.name, policy, mapping)
        bounds = compute_class_bounds(aggregates, scenario.capacity,
                                      scenario.technology_delay, policy)
        for cls in sorted(bounds):
            mux_bound = bounds[cls]
            if mux_bound is None or mux_bound.details.get("unstable"):
                mapping[cls] = math.inf
                continue
            service = compute_service_curve(
                aggregates, scenario.capacity, scenario.technology_delay,
                policy, None if policy == "fcfs" else cls)
            # Pay the bursts once; every extra point adds its latency.
            mapping[cls] = (mux_bound.delay
                            + (scenario.hops - 1) * service.latency)
        return EngineResult.from_mapping(self.name, policy, mapping)

    def network_class_bounds(self, messages: "Iterable[Message]",
                             policy: str, *, network: "Network",
                             graph_spec: "GraphTopologySpec | None" = None
                             ) -> dict[PriorityClass, float]:
        """Network-level bounds, identical to the fuzz harness' floor."""
        messages = list(messages)
        if graph_spec is not None:
            from repro.analysis.multihop import GraphPathAnalysis

            outcome = GraphPathAnalysis(
                graph_spec, policy=policy).analyze(messages)
            return {cls: bound.delay
                    for cls, bound in outcome.worst_per_class().items()}
        from repro.core.endtoend import EndToEndAnalysis

        try:
            analytic = EndToEndAnalysis(
                network, policy=policy).analyze(messages)
        except UnstableSystemError:
            return {cls: math.inf for cls in present_classes(messages)}
        return {cls: bound.total_delay
                for cls, bound in analytic.worst_per_class().items()}
