"""The ``BoundEngine`` protocol and its shared value types.

A bound engine is one self-contained way of bounding worst-case
response times on the reproduced architecture.  Every engine exposes
the same three-method surface:

* ``name`` — the registry key (``"calculus"``, ``"holistic"``,
  ``"trajectory"``),
* ``supports(scenario)`` — whether the engine can bound a campaign
  :class:`~repro.campaigns.scenario.Scenario`,
* ``class_bounds(scenario, policy)`` — per-priority-class worst-case
  delay bounds as an :class:`EngineResult`.

Engines additionally expose ``network_class_bounds(messages, policy,
network=..., graph_spec=...)`` for callers that already hold a concrete
routed network (the fuzz and simulation layers), so the engine's math is
applied to *exactly* the network the simulator runs on.

Results carry per-class bounds with stability flags and a canonical-JSON
fingerprint (:func:`repro.store.fingerprint`), so two processes agree on
the identity of an engine verdict byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol, runtime_checkable

from repro.flows.priorities import PriorityClass
from repro.store import fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.campaigns.scenario import Scenario
    from repro.flows.messages import Message
    from repro.topology.graph import GraphTopologySpec
    from repro.topology.network import Network

__all__ = [
    "EngineClassBound",
    "EngineResult",
    "EngineSpec",
    "BoundEngine",
    "ScenarioBoundEngine",
    "scenario_inputs",
    "present_classes",
]


@dataclass(frozen=True)
class EngineClassBound:
    """One priority class' verdict from one engine run."""

    priority: PriorityClass
    #: Worst-case delay bound in seconds; ``inf`` when the engine could
    #: not bound the class (overload, diverged fixed point).
    bound: float
    #: ``False`` exactly when ``bound`` is not finite.
    stable: bool


@dataclass(frozen=True)
class EngineResult:
    """Per-class bounds of one ``(engine, scenario, policy)`` evaluation."""

    engine: str
    policy: str
    bounds: tuple[EngineClassBound, ...]

    def by_class(self) -> dict[PriorityClass, float]:
        """``{priority: bound}`` over every class the engine saw."""
        return {row.priority: row.bound for row in self.bounds}

    def stable_by_class(self) -> dict[PriorityClass, bool]:
        """``{priority: stable}`` over every class the engine saw."""
        return {row.priority: row.stable for row in self.bounds}

    def bound_for(self, priority: PriorityClass,
                  default: float = math.inf) -> float:
        """The bound of one class (``default`` when the class is absent)."""
        for row in self.bounds:
            if row.priority is priority:
                return row.bound
        return default

    @property
    def stable(self) -> bool:
        """True when every class the engine saw has a finite bound."""
        return all(row.stable for row in self.bounds)

    def to_payload(self) -> dict:
        """JSON-serialisable form (priority by enum name, sorted)."""
        return {
            "engine": self.engine,
            "policy": self.policy,
            "bounds": [{
                "priority": row.priority.name,
                "bound": row.bound,
                "stable": row.stable,
            } for row in self.bounds],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "EngineResult":
        """Rebuild a result from :meth:`to_payload` output."""
        return cls(
            engine=payload["engine"],
            policy=payload["policy"],
            bounds=tuple(EngineClassBound(
                priority=PriorityClass[row["priority"]],
                bound=float(row["bound"]),
                stable=bool(row["stable"]),
            ) for row in payload["bounds"]))

    def fingerprint(self) -> str:
        """Canonical-JSON SHA-256 of the result (machine-independent)."""
        return fingerprint(self.to_payload())

    @classmethod
    def from_mapping(cls, engine: str, policy: str,
                     mapping: Mapping[PriorityClass, float]
                     ) -> "EngineResult":
        """Build a result from ``{priority: bound}``, sorted by class."""
        return cls(
            engine=engine,
            policy=policy,
            bounds=tuple(EngineClassBound(
                priority=priority,
                bound=float(mapping[priority]),
                stable=math.isfinite(mapping[priority]),
            ) for priority in sorted(mapping)))


@dataclass(frozen=True)
class EngineSpec:
    """Value-level engine selection, attachable to campaign/fuzz cells.

    Being a frozen dataclass it canonicalises (and therefore
    fingerprints) cleanly, so a cell keyed on an ``EngineSpec`` gets a
    distinct store identity per engine.
    """

    name: str = "calculus"

    def resolve(self) -> "BoundEngine":
        """The registered engine this spec names.

        Raises
        ------
        UnknownEngineError
            If no engine of that name is registered.
        """
        from repro.analysis.engines import get_engine
        return get_engine(self.name)


@runtime_checkable
class BoundEngine(Protocol):
    """Protocol every registered WCRT bound engine implements."""

    name: str

    def supports(self, scenario: "Scenario") -> bool:
        """Whether the engine can bound ``scenario``."""
        ...  # pragma: no cover - protocol stub

    def class_bounds(self, scenario: "Scenario",
                     policy: str) -> EngineResult:
        """Per-class worst-case delay bounds for one scenario/policy."""
        ...  # pragma: no cover - protocol stub


def present_classes(messages: Iterable) -> list[PriorityClass]:
    """The sorted priority classes that actually carry traffic."""
    from repro.core.multiplexer import priority_of
    return sorted({priority_of(message) for message in messages})


def scenario_inputs(scenario: "Scenario"
                    ) -> "tuple[list[Message], Network, GraphTopologySpec | None]":
    """``(wire messages, network, graph spec)`` behind one scenario.

    This is the shared scenario-to-network lowering of every engine:
    the workload is built, sized at wire level (the simulators transmit
    whole Ethernet frames), and attached to either the scenario's graph
    topology or the same single-switch star the fuzz harness simulates
    — so engine bounds and simulated floors always describe the same
    physical network.
    """
    from repro.analysis.validation import (star_for_stations,
                                           wire_level_messages)

    message_set = scenario.workload.build()
    wire_messages = wire_level_messages(message_set)
    if scenario.topology.kind == "graph":
        graph_spec = scenario.topology.build_graph(
            scenario.workload.total_stations, scenario.capacity,
            scenario.technology_delay)
        return wire_messages, graph_spec.to_network(), graph_spec
    network = star_for_stations(message_set.stations(), scenario.capacity,
                                scenario.technology_delay)
    return wire_messages, network, None


class ScenarioBoundEngine:
    """Shared scenario plumbing of the concrete engines.

    Subclasses implement :meth:`network_class_bounds`; this base class
    lowers a :class:`~repro.campaigns.scenario.Scenario` to wire-level
    messages plus a concrete network and wraps the result.
    """

    name = "abstract"

    def supports(self, scenario: "Scenario") -> bool:
        """Every shipped engine handles every registered topology kind."""
        return True

    def class_bounds(self, scenario: "Scenario",
                     policy: str) -> EngineResult:
        """Per-class bounds of one scenario/policy cell."""
        wire_messages, network, graph_spec = scenario_inputs(scenario)
        mapping = self.network_class_bounds(
            wire_messages, policy, network=network, graph_spec=graph_spec)
        return EngineResult.from_mapping(self.name, policy, mapping)

    def network_class_bounds(self, messages: "Iterable[Message]",
                             policy: str, *, network: "Network",
                             graph_spec: "GraphTopologySpec | None" = None
                             ) -> dict[PriorityClass, float]:
        """Per-class bounds on a concrete routed network (abstract)."""
        raise NotImplementedError  # pragma: no cover - abstract
