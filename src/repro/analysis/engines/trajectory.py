"""The ``trajectory`` engine — per-flow bounds along the flow's trajectory.

The trajectory approach follows one frame of the flow under study along
its path and counts each interfering frame only where it can actually
delay the trajectory.  Adapted to this reproduction's models:

* **higher-priority** interference is paid at every hop, through the
  strict-priority left-over service of the hop (rate ``C - R_hi``,
  latency ``(C*t_techno + blocking + B_hi) / (C - R_hi)``, with the
  largest lower-priority frame as non-preemptive blocking),
* **same-class** interference is paid **once per segment** — a maximal
  run of consecutive hops crossed by the *same* set of same-class flows.
  Frames of a class are served FIFO within the class, so over a segment
  the class aggregate sees the concatenation of the hop left-over
  curves (minimum rate, summed latencies) and the cross traffic is
  charged a single burst term at the segment entrance (pay bursts only
  once),
* the flow's **own burst** is paid once, at the slowest segment rate,
  and store-and-forward packetisation adds one burst serialisation per
  non-final hop (physically unavoidable on a relaying switch).

Upstream burst inflation reuses the shared fixed-point scaffolding
(:mod:`repro.analysis.engines.iteration`): during the iteration each
hop's delay is the plain per-hop left-over bound (as in the multi-hop
calculus), and the segment concatenation is applied in the final
end-to-end composition only — the iteration stays monotone and either
settles or flags the flow unstable.

Under FIFO every competing flow counts as same-class, so the engine
degenerates to blind-multiplexing concatenation per segment; at a
single multiplexing point it essentially matches the calculus bound,
and on longer paths the ranking experiment shows where paying bursts
per segment beats paying them per hop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.analysis.engines.base import ScenarioBoundEngine
from repro.analysis.engines.iteration import (DEFAULT_MAX_ITERATIONS,
                                              PortContext, RoutedFlowState,
                                              build_ports, route_states,
                                              run_fixed_point)
from repro.flows.priorities import PriorityClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flows.messages import Message
    from repro.topology.graph import GraphTopologySpec
    from repro.topology.network import Network

__all__ = ["TrajectoryEngine"]


@dataclass(frozen=True)
class _HopLeftover:
    """Left-over service and same-class company at one hop of a path."""

    #: Rate left after strictly-higher-priority interference.
    rate: float
    #: Latency of the left-over curve (relaying, blocking, higher bursts).
    latency: float
    #: Names of the same-class flows sharing the hop (segment key).
    companions: frozenset[str]
    #: ``(state, hop index)`` of each companion at this hop.
    members: tuple[tuple[RoutedFlowState, int], ...]
    port: PortContext


class TrajectoryEngine(ScenarioBoundEngine):
    """Trajectory-approach bound with per-segment burst accounting."""

    name = "trajectory"

    def __init__(self, max_iterations: int = DEFAULT_MAX_ITERATIONS) -> None:
        self.max_iterations = int(max_iterations)

    def network_class_bounds(self, messages: "Iterable[Message]",
                             policy: str, *, network: "Network",
                             graph_spec: "GraphTopologySpec | None" = None
                             ) -> dict[PriorityClass, float]:
        """Per-class worst of the per-flow trajectory compositions."""
        states = route_states(network, messages)
        if not states:
            return {}
        ports = build_ports(network, states)
        ports_by_hop = {(port.node, port.toward): port for port in ports}

        def single_pass(contexts: list[PortContext]) -> None:
            self._single_pass(contexts, policy)

        run_fixed_point(states, ports, single_pass, self.max_iterations)
        mapping: dict[PriorityClass, float] = {}
        for state in states:
            delay = self._end_to_end(state, ports_by_hop, policy)
            previous = mapping.get(state.priority, 0.0)
            mapping[state.priority] = max(previous, delay)
        return mapping

    # -- upstream iteration --------------------------------------------------

    def _single_pass(self, ports: list[PortContext], policy: str) -> None:
        """Per-hop left-over delays used for upstream burst inflation.

        The conservative per-hop form (every competitor paid at the hop)
        keeps the fixed point monotone; the segment concatenation below
        only sharpens the final composition, never the iterated state.
        """
        for port in ports:
            for state, index in port.members:
                state.delays[index] = self._hop_delay(port, state, index,
                                                      policy)

    def _hop_delay(self, port: PortContext, state: RoutedFlowState,
                   index: int, policy: str) -> float:
        """Left-over delay of one flow at one hop (all competitors paid)."""
        cross_rate = 0.0
        cross_burst = 0.0
        blocking = 0.0
        for other, other_index in port.members:
            if other is state:
                continue
            if policy == "fcfs" or \
                    other.priority.value <= state.priority.value:
                cross_rate += other.flow.rate
                cross_burst += other.burst_at(other_index)
            else:
                blocking = max(blocking, other.burst_at(other_index))
        rate = port.capacity - cross_rate
        burst = state.burst_at(index)
        if rate <= 0 or not math.isfinite(cross_burst) or \
                not math.isfinite(burst) or state.flow.rate > rate:
            return math.inf
        latency = (port.capacity * port.technology_delay
                   + blocking + cross_burst) / rate
        return latency + burst / rate

    # -- final composition ---------------------------------------------------

    def _end_to_end(self, state: RoutedFlowState,
                    ports_by_hop: dict, policy: str) -> float:
        """Segment-concatenated trajectory bound for one routed flow."""
        if state.diverged:
            return math.inf
        leftovers = []
        for index, hop in enumerate(state.hops):
            leftover = self._hop_leftover(ports_by_hop[hop], state, policy)
            if leftover is None:
                return math.inf
            leftovers.append(leftover)

        total_latency = 0.0
        slowest_segment = math.inf
        start = 0
        while start < len(leftovers):
            stop = start
            while stop + 1 < len(leftovers) and \
                    leftovers[stop + 1].companions == \
                    leftovers[start].companions:
                stop += 1
            segment = leftovers[start:stop + 1]
            segment_rate, segment_latency = self._segment(segment)
            if segment_rate <= 0 or not math.isfinite(segment_latency):
                return math.inf
            total_latency += segment_latency
            slowest_segment = min(slowest_segment, segment_rate)
            start = stop + 1
        if state.flow.rate > slowest_segment:
            return math.inf

        # Store-and-forward: each relaying hop re-serialises the burst.
        packetisation = 0.0
        for leftover in leftovers[:-1]:
            local_rate = leftover.rate - sum(
                other.flow.rate for other, _ in leftover.members)
            if local_rate <= 0:
                return math.inf
            packetisation += state.flow.burst / local_rate
        propagation = sum(state.propagation)
        return (total_latency + state.flow.burst / slowest_segment
                + packetisation + propagation)

    def _hop_leftover(self, port: PortContext, state: RoutedFlowState,
                      policy: str) -> "_HopLeftover | None":
        """Strictly-higher-priority left-over at one hop, or ``None``."""
        higher_rate = 0.0
        higher_burst = 0.0
        blocking = 0.0
        companions: list[tuple[RoutedFlowState, int]] = []
        for other, other_index in port.members:
            if other is state:
                continue
            if policy == "fcfs" or \
                    other.priority.value == state.priority.value:
                companions.append((other, other_index))
            elif other.priority.value < state.priority.value:
                burst = other.burst_at(other_index)
                if not math.isfinite(burst):
                    return None
                higher_rate += other.flow.rate
                higher_burst += burst
            else:
                blocking = max(blocking, other.burst_at(other_index))
        rate = port.capacity - higher_rate
        if rate <= 0 or not math.isfinite(blocking):
            return None
        latency = (port.capacity * port.technology_delay
                   + blocking + higher_burst) / rate
        return _HopLeftover(
            rate=rate,
            latency=latency,
            companions=frozenset(other.name for other, _ in companions),
            members=tuple(companions),
            port=port)

    def _segment(self, segment: "list[_HopLeftover]"
                 ) -> tuple[float, float]:
        """(rate, latency) of the flow's left-over over one segment.

        The hop left-overs concatenate (minimum rate, summed latencies)
        for the same-class aggregate; the constant companion set is then
        charged as cross traffic once, at the segment entrance.
        """
        rate = min(leftover.rate for leftover in segment)
        latency = sum(leftover.latency for leftover in segment)
        entrance = segment[0]
        companion_rate = sum(other.flow.rate
                             for other, _ in entrance.members)
        companion_burst = 0.0
        for other, other_index in entrance.members:
            burst = other.burst_at(other_index)
            if not math.isfinite(burst):
                return 0.0, math.inf
            companion_burst += burst
        segment_rate = rate - companion_rate
        if segment_rate <= 0 or not math.isfinite(latency):
            return 0.0, math.inf
        segment_latency = latency + (companion_burst
                                     + companion_rate * latency) \
            / segment_rate
        return segment_rate, segment_latency
