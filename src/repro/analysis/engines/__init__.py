"""Competing WCRT bound engines behind one ``BoundEngine`` API.

The reproduction's network-calculus bound is one of several classical
ways to bound worst-case response times on the paper's architecture.
This package puts the alternatives behind a single registry so every
campaign, simulation, fuzz and report layer can cross-validate them:

* ``calculus`` — the paper's network-calculus bounds (the pre-engine
  analysis paths, wrapped bit-identically), the soundness reference,
* ``holistic`` — iterative busy-period response-time analysis with
  interference inherited along the path,
* ``trajectory`` — per-flow trajectory bounds paying same-class bursts
  once per shared segment.

``resolve_engines`` maps CLI-style selections (``"all"``, comma lists,
``None``) to engine names; :class:`~repro.analysis.engines.base.
EngineSpec` carries a selection as a value (fingerprintable, so stored
cells keyed per engine never collide across backends).  The store's
``engines`` subsystem token hashes this package's import closure, so
editing any backend invalidates exactly the engine-derived results.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.engines.base import (BoundEngine, EngineClassBound,
                                         EngineResult, EngineSpec,
                                         ScenarioBoundEngine,
                                         present_classes, scenario_inputs)
from repro.analysis.engines.calculus import CalculusEngine
from repro.analysis.engines.holistic import HolisticEngine
from repro.analysis.engines.trajectory import TrajectoryEngine
from repro.errors import DuplicateEngineError, UnknownEngineError

__all__ = [
    "BoundEngine",
    "EngineClassBound",
    "EngineResult",
    "EngineSpec",
    "ScenarioBoundEngine",
    "CalculusEngine",
    "HolisticEngine",
    "TrajectoryEngine",
    "DEFAULT_ENGINE",
    "DEFAULT_ENGINES",
    "ENGINE_CHOICES",
    "register_engine",
    "get_engine",
    "engine_names",
    "all_engines",
    "resolve_engines",
    "scenario_inputs",
    "present_classes",
]

#: The engine every layer uses unless told otherwise — the paper's own.
DEFAULT_ENGINE = "calculus"

#: Default engine tuple of every multi-engine call site.
DEFAULT_ENGINES = (DEFAULT_ENGINE,)

_REGISTRY: dict[str, BoundEngine] = {}


def register_engine(engine: BoundEngine, *,
                    replace: bool = False) -> BoundEngine:
    """Add an engine to the registry; rejects duplicates by default."""
    if not engine.name:
        raise UnknownEngineError("an engine needs a non-empty name")
    if not replace and engine.name in _REGISTRY:
        raise DuplicateEngineError(
            f"engine {engine.name!r} is already registered "
            f"(pass replace=True to overwrite)")
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(name: str) -> BoundEngine:
    """Look up an engine by name.

    Raises
    ------
    UnknownEngineError
        If no engine of that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown engine {name!r}; known engines: "
            f"{engine_names()}") from None


def engine_names() -> list[str]:
    """Registered engine names, in registration order."""
    return list(_REGISTRY)


def all_engines() -> list[BoundEngine]:
    """Every registered engine, in registration order."""
    return list(_REGISTRY.values())


def resolve_engines(selection: "str | Sequence[str] | None"
                    ) -> tuple[str, ...]:
    """Resolve a CLI selection to a tuple of registered engine names.

    ``None`` and ``""`` mean the default engine; ``"all"`` (alone or in
    a list) selects every registered engine; otherwise the selection is
    a name, a comma list, or a sequence of names — each validated
    against the registry.

    Raises
    ------
    UnknownEngineError
        If any selected name is not registered.
    """
    if selection is None:
        return DEFAULT_ENGINES
    if isinstance(selection, str):
        selection = [part.strip() for part in selection.split(",")]
    names = [name for name in selection if name]
    if not names:
        return DEFAULT_ENGINES
    if "all" in names:
        if len(names) > 1:
            raise UnknownEngineError(
                "engine selection 'all' cannot be combined with "
                "explicit engine names")
        return tuple(engine_names())
    resolved = []
    for name in names:
        get_engine(name)
        if name not in resolved:
            resolved.append(name)
    return tuple(resolved)


register_engine(CalculusEngine())
register_engine(HolisticEngine())
register_engine(TrajectoryEngine())

#: The CLI's ``--engine`` vocabulary (registered engines plus ``all``).
ENGINE_CHOICES = tuple(engine_names()) + ("all",)
