"""The ``holistic`` engine — iterative busy-period response-time analysis.

Classic holistic schedulability analysis (Tindell & Clark) adapted to
the switched-Ethernet models of this reproduction: each output port is
treated as a non-preemptive static-priority (or FIFO) server, the
worst-case *level-p busy period* at each port bounds the queuing of
every class-``p`` frame crossing it, and an outer fixed point inflates
each flow's burst at hop *k* by its upstream response time (holistic
"jitter inheritance").

Per port and class ``p`` the busy-period recurrence is::

    q_{n+1} = (B_{<=p} + blocking + R_{<=p} * q_n) / C

with ``B``/``R`` the burst/rate sums over the classes at priority ``p``
and higher (every class under FIFO), and ``blocking`` the largest
lower-priority burst (non-preemptive frame in service; zero under
FIFO).  The sequence is monotone from zero, so it either settles, or
``R_{<=p} >= C`` and the class is flagged unstable (``inf``).  The hop
delay is the limit plus the relaying latency ``t_techno``.

Because the denominator ``C - R_{<=p}`` also pays the class' *own*
aggregate rate (which the calculus left-over service keeps), each hop
bound dominates the calculus hop bound — the engine is sound wherever
the calculus engine is, and the tightness ranking shows what that extra
interference term costs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.analysis.engines.base import ScenarioBoundEngine
from repro.analysis.engines.iteration import (DEFAULT_MAX_ITERATIONS,
                                              PortContext, RoutedFlowState,
                                              build_ports, route_states,
                                              run_fixed_point)
from repro.flows.priorities import PriorityClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flows.messages import Message
    from repro.topology.graph import GraphTopologySpec
    from repro.topology.network import Network

__all__ = ["HolisticEngine"]

#: Inner busy-period iterations before falling back to the closed-form
#: limit ``work / (C - rate)`` (the monotone sequence's supremum).
_BUSY_PERIOD_ITERATIONS = 64


def _busy_period(work: float, rate: float, capacity: float) -> float:
    """Limit of the level-``p`` busy-period recurrence, or ``inf``.

    ``work`` is the burst-plus-blocking backlog served at ``capacity``
    while interference keeps arriving at ``rate``; ``rate >= capacity``
    means the recurrence diverges (overload) and the class is unbounded.
    """
    if not math.isfinite(work):
        return math.inf
    if rate >= capacity:
        return math.inf
    backlog = work / capacity
    for _ in range(_BUSY_PERIOD_ITERATIONS):
        refined = (work + rate * backlog) / capacity
        if refined - backlog <= 1e-12 * max(backlog, 1e-9):
            return refined
        backlog = refined
    return work / (capacity - rate)


class HolisticEngine(ScenarioBoundEngine):
    """Iterative fixed-point response-time analysis per output port."""

    name = "holistic"

    def __init__(self, max_iterations: int = DEFAULT_MAX_ITERATIONS) -> None:
        self.max_iterations = int(max_iterations)

    def network_class_bounds(self, messages: "Iterable[Message]",
                             policy: str, *, network: "Network",
                             graph_spec: "GraphTopologySpec | None" = None
                             ) -> dict[PriorityClass, float]:
        """Per-class worst of the per-flow holistic fixed points."""
        states = route_states(network, messages)
        if not states:
            return {}
        ports = build_ports(network, states)

        def single_pass(contexts: list[PortContext]) -> None:
            self._single_pass(contexts, policy)

        run_fixed_point(states, ports, single_pass, self.max_iterations)
        self._single_pass(ports, policy)
        mapping: dict[PriorityClass, float] = {}
        for state in states:
            delay = self._end_to_end(state)
            previous = mapping.get(state.priority, 0.0)
            mapping[state.priority] = max(previous, delay)
        return mapping

    # -- internals -----------------------------------------------------------

    def _single_pass(self, ports: list[PortContext], policy: str) -> None:
        """Refresh every member's per-hop delay from current bursts."""
        for port in ports:
            classes: dict[PriorityClass, list[tuple[RoutedFlowState, int]]]
            classes = {}
            for state, index in port.members:
                classes.setdefault(state.priority, []).append((state, index))
            for priority, members in classes.items():
                delay = self._class_delay(port, priority, policy)
                for state, index in members:
                    state.delays[index] = delay

    def _class_delay(self, port: PortContext, priority: PriorityClass,
                     policy: str) -> float:
        """Busy-period delay of class ``priority`` at one port."""
        work = 0.0
        rate = 0.0
        blocking = 0.0
        for state, index in port.members:
            if policy == "fcfs" or state.priority.value <= priority.value:
                work += state.burst_at(index)
                rate += state.flow.rate
            else:
                blocking = max(blocking, state.burst_at(index))
        queuing = _busy_period(work + blocking, rate, port.capacity)
        return queuing + port.technology_delay

    def _end_to_end(self, state: RoutedFlowState) -> float:
        """Sum of per-hop busy-period delays plus propagation."""
        if state.diverged:
            return math.inf
        total = 0.0
        for index in range(len(state.hops)):
            delay = state.delays[index]
            if not math.isfinite(delay):
                return math.inf
            total += delay + state.propagation[index]
        return total
