"""Shared routed-network fixed-point scaffolding of the iterative engines.

The holistic and trajectory engines both follow the structure of
:class:`repro.analysis.multihop.GraphPathAnalysis`: route every message
along its deterministic shortest path, group the routed flows by
directed output port, iterate per-hop delay bounds to a fixed point
(each flow's burst at hop *k* is inflated by its upstream delay — the
classic time-stopping argument), and declare flows *diverged* when the
iteration fails to settle.  This module factors that scaffolding out so
each engine only supplies its per-port delay rule.

Everything here operates on a concrete :class:`repro.topology.network.
Network`, so the same code serves the paper's star, the dual-switch and
tree ladders, and the arbitrary multi-hop graph topologies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.multiplexer import priority_of
from repro.flows.flow import Flow
from repro.flows.priorities import PriorityClass
from repro.topology.network import Network

__all__ = ["RoutedFlowState", "PortContext", "route_states", "build_ports",
           "run_fixed_point", "DEFAULT_MAX_ITERATIONS"]

#: Outer burst-inflation passes before a flow is declared diverged.
DEFAULT_MAX_ITERATIONS = 16

#: Relative tolerance under which an upstream-delay update counts as
#: settled (absolute for sub-nanosecond values).
_TOLERANCE = 1e-12


@dataclass
class RoutedFlowState:
    """One routed flow plus the per-hop state of the iteration."""

    flow: Flow
    priority: PriorityClass
    hops: tuple[tuple[str, str], ...]
    #: Sum of bound delays (and propagation) accumulated before each hop.
    upstream: list[float] = field(default_factory=list)
    #: Current per-hop delay bound (queuing + relaying, no propagation).
    delays: list[float] = field(default_factory=list)
    #: Propagation delay of each hop's link.
    propagation: tuple[float, ...] = ()
    #: Set when the fixed point failed to settle for this flow; its
    #: bursts (and therefore every bound involving it) become infinite.
    diverged: bool = False

    def burst_at(self, index: int) -> float:
        """Token-bucket burst at hop ``index``, inflated by upstream delay."""
        if self.diverged:
            return math.inf
        upstream = self.upstream[index]
        if not math.isfinite(upstream):
            return math.inf
        return self.flow.burst + self.flow.rate * upstream

    @property
    def name(self) -> str:
        """The routed flow's (message's) unique name."""
        return self.flow.name


@dataclass(frozen=True)
class PortContext:
    """One directed output port and the routed flows crossing it."""

    node: str
    toward: str
    capacity: float
    #: ``t_techno`` of the relaying switch (0 at source stations).
    technology_delay: float
    propagation_delay: float
    #: ``(state, hop index)`` of every flow using this port, in flow-name
    #: order — deterministic by construction.
    members: tuple[tuple[RoutedFlowState, int], ...]


def route_states(network: Network,
                 messages: Iterable) -> list[RoutedFlowState]:
    """Route every message and seed the per-hop iteration state."""
    states: list[RoutedFlowState] = []
    for item in sorted(messages, key=lambda message: message.name):
        flow = network.route_flow(item)
        hops = tuple(flow.hops())
        states.append(RoutedFlowState(
            flow=flow,
            priority=priority_of(flow),
            hops=hops,
            upstream=[0.0] * len(hops),
            delays=[0.0] * len(hops),
            propagation=tuple(
                network.link(node, toward).propagation_delay
                for node, toward in hops)))
    return states


def build_ports(network: Network,
                states: Iterable[RoutedFlowState]) -> list[PortContext]:
    """Group routed flows by directed port, in sorted port order."""
    membership: dict[tuple[str, str], list[tuple[RoutedFlowState, int]]] = {}
    for state in states:
        for index, hop in enumerate(state.hops):
            membership.setdefault(hop, []).append((state, index))
    ports: list[PortContext] = []
    for node, toward in sorted(membership):
        link = network.link(node, toward)
        technology_delay = (network.technology_delay(node)
                            if network.is_switch(node) else 0.0)
        ports.append(PortContext(
            node=node,
            toward=toward,
            capacity=link.capacity,
            technology_delay=technology_delay,
            propagation_delay=link.propagation_delay,
            members=tuple(membership[(node, toward)])))
    return ports


def _accumulate(states: Iterable[RoutedFlowState]) -> set[str]:
    """Refresh upstream prefix sums; names whose upstream state moved."""
    changed: set[str] = set()
    for state in states:
        cumulative = 0.0
        for index in range(len(state.hops)):
            previous = state.upstream[index]
            if not _settled(previous, cumulative):
                state.upstream[index] = cumulative
                changed.add(state.name)
            cumulative += state.delays[index] + state.propagation[index]
    return changed


def _settled(previous: float, current: float) -> bool:
    if previous == current:
        return True
    if math.isinf(previous) and math.isinf(current):
        return True
    return abs(current - previous) <= _TOLERANCE * max(
        1e-9, abs(previous), abs(current))


def run_fixed_point(states: list[RoutedFlowState],
                    ports: list[PortContext],
                    single_pass: Callable[[list[PortContext]], None],
                    max_iterations: int = DEFAULT_MAX_ITERATIONS) -> bool:
    """Iterate ``single_pass`` + accumulation until the bounds settle.

    Returns ``True`` when every flow settled.  Flows still moving after
    ``max_iterations`` passes are marked diverged (their bursts become
    infinite) and a bounded number of absorb passes propagates the
    infinities through every port they share — mirroring
    ``GraphPathAnalysis``'s divergence handling, so an unstable corner
    yields ``inf`` bounds instead of looping forever.
    """
    moving: set[str] = set()
    for _ in range(max_iterations):
        single_pass(ports)
        moving = _accumulate(states)
        if not moving:
            return True
    for state in states:
        if state.name in moving:
            state.diverged = True
    for _ in range(len(states) + 1):
        single_pass(ports)
        if not _accumulate(states):
            break
    return False
