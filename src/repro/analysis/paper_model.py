"""E1 — the paper's case study and Figure 1.

The paper models the system as a set of token-bucket shaped connections
multiplexed in front of a 10 Mbps Full-Duplex Switched Ethernet link (with a
relaying-delay bound ``t_techno``), and compares, per priority class, the
worst-case delay bound obtained with

* the plain **FCFS** multiplexer (one bound for every packet), and
* the **four-queue strict-priority** multiplexer (one bound per class),

against the real-time constraint of the class.  Figure 1 of the paper plots
those bounds; its qualitative findings are:

1. despite the 10× speed advantage over MIL-STD-1553B, the FCFS bound
   violates the 3 ms constraint of the urgent class,
2. with priorities, the urgent class's bound drops below 3 ms,
3. the periodic class's priority bound is smaller than the FCFS bound,
4. every real-time constraint is respected under the priority scheme.

:class:`PaperCaseStudy` reproduces that analysis for any message set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.multiplexer import (
    FcfsMultiplexerAnalysis,
    StrictPriorityMultiplexerAnalysis,
)
from repro.errors import EmptyAggregateError
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass

__all__ = ["ClassBoundRow", "PaperCaseStudy", "figure1_rows"]

#: Default link capacity of the paper: 10 Mbps.
DEFAULT_CAPACITY = units.mbps(10)
#: Default bound on the relaying delay (t_techno): 16 µs.
DEFAULT_TECHNOLOGY_DELAY = units.us(16)


@dataclass(frozen=True)
class ClassBoundRow:
    """One row of Figure 1: a priority class and its two bounds."""

    priority: PriorityClass
    #: Number of messages in the class.
    message_count: int
    #: The binding (smallest) deadline of the class, or ``None``.
    deadline: float | None
    #: Worst-case delay bound with the FCFS multiplexer (seconds).
    fcfs_bound: float
    #: Worst-case delay bound with the strict-priority multiplexer (seconds).
    priority_bound: float

    @property
    def fcfs_meets_deadline(self) -> bool:
        """True when the FCFS bound respects the class constraint."""
        return self.deadline is None or self.fcfs_bound <= self.deadline

    @property
    def priority_meets_deadline(self) -> bool:
        """True when the strict-priority bound respects the class constraint."""
        return self.deadline is None or self.priority_bound <= self.deadline


class PaperCaseStudy:
    """The paper's single-multiplexer analysis of a message set.

    Parameters
    ----------
    message_set:
        The connections flowing through the multiplexer (the whole avionics
        traffic in the paper's case study).
    capacity:
        Link capacity ``C`` (10 Mbps in the paper).
    technology_delay:
        The ``t_techno`` bound on the relaying delay.
    """

    def __init__(self, message_set: MessageSet,
                 capacity: float = DEFAULT_CAPACITY,
                 technology_delay: float = DEFAULT_TECHNOLOGY_DELAY) -> None:
        self.message_set = message_set
        self.capacity = float(capacity)
        self.technology_delay = float(technology_delay)
        self._fcfs = FcfsMultiplexerAnalysis(
            capacity=self.capacity, technology_delay=self.technology_delay)
        self._priority = StrictPriorityMultiplexerAnalysis(
            capacity=self.capacity, technology_delay=self.technology_delay)

    # -- bounds ----------------------------------------------------------------

    def fcfs_bound(self) -> float:
        """The single FCFS bound ``D`` applying to every packet (seconds)."""
        return self._fcfs.bound(self.message_set.messages).delay

    def fcfs_class_bounds(self) -> dict[PriorityClass, float]:
        """The FCFS bound reported for every class present in the set."""
        return {cls: bound.delay for cls, bound in
                self._fcfs.class_bounds(self.message_set.messages).items()}

    def priority_class_bounds(self) -> dict[PriorityClass, float]:
        """The strict-priority bound ``D_p`` of every class present."""
        return {cls: bound.delay for cls, bound in
                self._priority.class_bounds(self.message_set.messages).items()}

    def class_deadlines(self) -> dict[PriorityClass, float | None]:
        """The binding (smallest) deadline of every class present in the set."""
        deadlines: dict[PriorityClass, float | None] = {}
        for cls, messages in self.message_set.by_priority().items():
            if not messages:
                continue
            with_deadline = [m.deadline for m in messages
                             if m.deadline is not None]
            deadlines[cls] = min(with_deadline) if with_deadline else None
        return deadlines

    # -- figure 1 ----------------------------------------------------------------

    def figure1_rows(self) -> list[ClassBoundRow]:
        """The per-class rows of Figure 1, ordered by priority."""
        fcfs = self.fcfs_class_bounds()
        priority = self.priority_class_bounds()
        deadlines = self.class_deadlines()
        grouped = self.message_set.by_priority()
        rows = []
        for cls in PriorityClass:
            if cls not in priority:
                continue
            rows.append(ClassBoundRow(
                priority=cls,
                message_count=len(grouped[cls]),
                deadline=deadlines.get(cls),
                fcfs_bound=fcfs[cls],
                priority_bound=priority[cls]))
        if not rows:
            raise EmptyAggregateError("the message set is empty")
        return rows

    # -- headline claims -----------------------------------------------------------

    def fcfs_violates_constraints(self) -> bool:
        """Paper claim 1: the FCFS bound violates at least one constraint."""
        return any(not row.fcfs_meets_deadline for row in self.figure1_rows())

    def priority_meets_all_constraints(self) -> bool:
        """Paper claim 4: every constraint is respected with priorities."""
        return all(row.priority_meets_deadline for row in self.figure1_rows())

    def urgent_priority_bound_below_3ms(self) -> bool:
        """Paper claim 2: the urgent class's priority bound is below 3 ms."""
        bounds = self.priority_class_bounds()
        if PriorityClass.URGENT not in bounds:
            return False
        return bounds[PriorityClass.URGENT] < units.ms(3)

    def periodic_priority_bound_below_fcfs(self) -> bool:
        """Paper claim 3: the periodic class improves over the FCFS bound."""
        priority = self.priority_class_bounds()
        if PriorityClass.PERIODIC not in priority:
            return False
        return priority[PriorityClass.PERIODIC] < self.fcfs_bound()


def figure1_rows(message_set: MessageSet,
                 capacity: float = DEFAULT_CAPACITY,
                 technology_delay: float = DEFAULT_TECHNOLOGY_DELAY
                 ) -> list[ClassBoundRow]:
    """Convenience wrapper returning Figure 1's rows for a message set."""
    return PaperCaseStudy(message_set, capacity=capacity,
                          technology_delay=technology_delay).figure1_rows()
