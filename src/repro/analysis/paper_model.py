"""E1 — the paper's case study and Figure 1.

The paper models the system as a set of token-bucket shaped connections
multiplexed in front of a 10 Mbps Full-Duplex Switched Ethernet link (with a
relaying-delay bound ``t_techno``), and compares, per priority class, the
worst-case delay bound obtained with

* the plain **FCFS** multiplexer (one bound for every packet), and
* the **four-queue strict-priority** multiplexer (one bound per class),

against the real-time constraint of the class.  Figure 1 of the paper plots
those bounds; its qualitative findings are:

1. despite the 10× speed advantage over MIL-STD-1553B, the FCFS bound
   violates the 3 ms constraint of the urgent class,
2. with priorities, the urgent class's bound drops below 3 ms,
3. the periodic class's priority bound is smaller than the FCFS bound,
4. every real-time constraint is respected under the priority scheme.

:class:`PaperCaseStudy` reproduces that analysis for any message set.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from repro import units
from repro.core.multiplexer import (
    ClassAggregate,
    FcfsMultiplexerAnalysis,
    StrictPriorityMultiplexerAnalysis,
    aggregate_flows,
    compute_class_bounds,
)
from repro.errors import ConfigurationError, EmptyAggregateError
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass

__all__ = ["ClassBoundRow", "PaperCaseStudy", "figure1_rows"]

#: Default link capacity of the paper: 10 Mbps.
DEFAULT_CAPACITY = units.mbps(10)
#: Default bound on the relaying delay (t_techno): 16 µs.
DEFAULT_TECHNOLOGY_DELAY = units.us(16)


@dataclass(frozen=True)
class ClassBoundRow:
    """One row of Figure 1: a priority class and its two bounds.

    Overloaded populations follow the campaign runner's unbounded-row
    convention: the affected bound is ``math.inf`` and the matching
    ``*_stable`` flag is ``False`` — the row reports the overload instead of
    the analysis raising on it.
    """

    priority: PriorityClass
    #: Number of messages in the class.
    message_count: int
    #: The binding (smallest) deadline of the class, or ``None``.
    deadline: float | None
    #: Worst-case delay bound with the FCFS multiplexer (seconds); ``inf``
    #: when the aggregate overruns the link.
    fcfs_bound: float
    #: Worst-case delay bound with the strict-priority multiplexer
    #: (seconds); ``inf`` when the class is unstable.
    priority_bound: float
    #: False when the FCFS bound is not a valid worst case (overload).
    fcfs_stable: bool = True
    #: False when the strict-priority bound is not a valid worst case.
    priority_stable: bool = True

    @property
    def fcfs_meets_deadline(self) -> bool:
        """True when the FCFS bound respects the class constraint."""
        return self.deadline is None or self.fcfs_bound <= self.deadline

    @property
    def priority_meets_deadline(self) -> bool:
        """True when the strict-priority bound respects the class constraint."""
        return self.deadline is None or self.priority_bound <= self.deadline

    @property
    def fcfs_feasible(self) -> bool:
        """Stable *and* within the constraint — the campaign convention."""
        return self.fcfs_stable and self.fcfs_meets_deadline

    @property
    def priority_feasible(self) -> bool:
        """Stable *and* within the constraint — the campaign convention."""
        return self.priority_stable and self.priority_meets_deadline


class PaperCaseStudy:
    """The paper's single-multiplexer analysis of a message set.

    Parameters
    ----------
    message_set:
        The connections flowing through the multiplexer (the whole avionics
        traffic in the paper's case study).
    capacity:
        Link capacity ``C`` (10 Mbps in the paper).
    technology_delay:
        The ``t_techno`` bound on the relaying delay.
    """

    def __init__(self, message_set: MessageSet,
                 capacity: float = DEFAULT_CAPACITY,
                 technology_delay: float = DEFAULT_TECHNOLOGY_DELAY) -> None:
        self.message_set = message_set
        self.capacity = float(capacity)
        self.technology_delay = float(technology_delay)
        self._fcfs = FcfsMultiplexerAnalysis(
            capacity=self.capacity, technology_delay=self.technology_delay)
        self._priority = StrictPriorityMultiplexerAnalysis(
            capacity=self.capacity, technology_delay=self.technology_delay)
        self._aggregates_cache: dict[PriorityClass, ClassAggregate] | None = \
            None
        self._aggregates_version: int | None = None

    # -- aggregates ------------------------------------------------------------

    def aggregates(self) -> dict[PriorityClass, ClassAggregate]:
        """Per-class sufficient statistics of the set, computed once.

        Goes through the set's struct-of-arrays view (or the arithmetic
        replication shortcut for lazily replicated sets), so every bound of
        the study shares a single O(messages) pass.  The cache is keyed on
        the set's mutation counter, so adding messages after construction
        refreshes every bound, like the per-call reference analysis did.
        """
        version = self.message_set.version
        if self._aggregates_cache is None \
                or self._aggregates_version != version:
            self._aggregates_cache = aggregate_flows(self.message_set)
            self._aggregates_version = version
        return self._aggregates_cache

    # -- bounds ----------------------------------------------------------------

    def fcfs_bound(self) -> float:
        """The single FCFS bound ``D`` applying to every packet (seconds)."""
        return self._fcfs.bound_from_aggregates(self.aggregates()).delay

    def class_bounds(self, policy: str) -> dict[PriorityClass, float]:
        """Per-class worst-case delay bound under one scheduling policy.

        This is the policy-parametric surface the bound-engine registry
        uses (``repro.analysis.engines``): ``'fcfs'`` reports the single
        FCFS bound for every class present, ``'strict-priority'`` the
        per-class bound ``D_p``.

        Raises
        ------
        ConfigurationError
            If ``policy`` names neither multiplexer.
        """
        if policy == "fcfs":
            analysis = self._fcfs
        elif policy == "strict-priority":
            analysis = self._priority
        else:
            raise ConfigurationError(
                f"unknown policy {policy!r}; known policies: 'fcfs', "
                f"'strict-priority'")
        return {cls: bound.delay for cls, bound in
                analysis.class_bounds_from_aggregates(
                    self.aggregates()).items()}

    def fcfs_class_bounds(self) -> dict[PriorityClass, float]:
        """Deprecated spelling of :meth:`class_bounds` (``'fcfs'``).

        .. deprecated::
            Use ``class_bounds('fcfs')``, or the engine registry
            (``repro.analysis.engines.get_engine('calculus')``) when the
            bound should be comparable across competing engines.
        """
        warnings.warn(
            "PaperCaseStudy.fcfs_class_bounds() is deprecated; use "
            "PaperCaseStudy.class_bounds('fcfs') or the bound-engine "
            "registry (repro.analysis.engines)",
            DeprecationWarning, stacklevel=2)
        return self.class_bounds("fcfs")

    def priority_class_bounds(self) -> dict[PriorityClass, float]:
        """Deprecated spelling of :meth:`class_bounds` (strict priority).

        .. deprecated::
            Use ``class_bounds('strict-priority')``, or the engine
            registry (``repro.analysis.engines.get_engine('calculus')``).
        """
        warnings.warn(
            "PaperCaseStudy.priority_class_bounds() is deprecated; use "
            "PaperCaseStudy.class_bounds('strict-priority') or the "
            "bound-engine registry (repro.analysis.engines)",
            DeprecationWarning, stacklevel=2)
        return self.class_bounds("strict-priority")

    def class_deadlines(self) -> dict[PriorityClass, float | None]:
        """The binding (smallest) deadline of every class present in the set."""
        return self.message_set.class_deadlines()

    # -- figure 1 ----------------------------------------------------------------

    def figure1_rows(self) -> list[ClassBoundRow]:
        """The per-class rows of Figure 1, ordered by priority.

        Overloaded sets do not raise: following the campaign runner's
        convention, a class whose bound is not a valid worst case gets an
        ``inf`` bound with the matching stability flag cleared (see
        :func:`repro.core.multiplexer.compute_class_bounds`).
        """
        aggregates = self.aggregates()
        if not any(a.count for a in aggregates.values()):
            raise EmptyAggregateError("the message set is empty")
        fcfs = compute_class_bounds(aggregates, self.capacity,
                                    self.technology_delay, "fcfs")
        priority = compute_class_bounds(aggregates, self.capacity,
                                        self.technology_delay,
                                        "strict-priority")
        deadlines = self.class_deadlines()
        rows = []
        for cls in PriorityClass:
            if cls not in priority:
                continue
            fcfs_bound = fcfs.get(cls)
            priority_bound = priority[cls]
            fcfs_stable = (fcfs_bound is not None
                           and not fcfs_bound.details.get("unstable"))
            priority_stable = (priority_bound is not None
                               and not priority_bound.details.get("unstable"))
            rows.append(ClassBoundRow(
                priority=cls,
                message_count=aggregates[cls].count,
                deadline=deadlines.get(cls),
                fcfs_bound=fcfs_bound.delay if fcfs_stable else math.inf,
                priority_bound=(priority_bound.delay if priority_stable
                                else math.inf),
                fcfs_stable=fcfs_stable,
                priority_stable=priority_stable))
        return rows

    # -- headline claims -----------------------------------------------------------

    def fcfs_violates_constraints(self) -> bool:
        """Paper claim 1: the FCFS bound violates at least one constraint.

        An unstable (overloaded) class counts as a violation, like an
        infeasible campaign row.
        """
        return any(not row.fcfs_feasible for row in self.figure1_rows())

    def priority_meets_all_constraints(self) -> bool:
        """Paper claim 4: every constraint is respected with priorities.

        Requires every class to be stable *and* within its constraint — the
        campaign runner's feasibility convention.
        """
        return all(row.priority_feasible for row in self.figure1_rows())

    def urgent_priority_bound_below_3ms(self) -> bool:
        """Paper claim 2: the urgent class's priority bound is below 3 ms."""
        rows = {row.priority: row for row in self.figure1_rows()}
        row = rows.get(PriorityClass.URGENT)
        return (row is not None and row.priority_stable
                and row.priority_bound < units.ms(3))

    def periodic_priority_bound_below_fcfs(self) -> bool:
        """Paper claim 3: the periodic class improves over the FCFS bound."""
        rows = {row.priority: row for row in self.figure1_rows()}
        row = rows.get(PriorityClass.PERIODIC)
        return (row is not None and row.priority_stable
                and row.priority_bound < row.fcfs_bound)


def figure1_rows(message_set: MessageSet,
                 capacity: float = DEFAULT_CAPACITY,
                 technology_delay: float = DEFAULT_TECHNOLOGY_DELAY
                 ) -> list[ClassBoundRow]:
    """Deprecated wrapper around :meth:`PaperCaseStudy.figure1_rows`.

    .. deprecated::
        Construct a :class:`PaperCaseStudy` and call its
        ``figure1_rows()`` method, or go through the bound-engine
        registry (``repro.analysis.engines``) for policy-parametric,
        cross-engine-comparable bounds.
    """
    warnings.warn(
        "repro.analysis.figure1_rows() is deprecated; use "
        "PaperCaseStudy(message_set).figure1_rows() or the bound-engine "
        "registry (repro.analysis.engines)",
        DeprecationWarning, stacklevel=2)
    return PaperCaseStudy(message_set, capacity=capacity,
                          technology_delay=technology_delay).figure1_rows()
