"""E8 — scalability: how much more traffic can each approach absorb?

The paper motivates switched Ethernet by its "expandability for future
investment": unlike the 1 Mbps shared bus, a switched network should keep
absorbing new subsystems.  This experiment quantifies that claim by
replicating the case-study traffic ``k`` times (``k`` times as many stations
emitting the same kind of messages through the shared analysis point) and
recording, for each scale factor:

* whether the MIL-STD-1553B cyclic schedule is still feasible,
* whether plain-FCFS switched Ethernet still meets every constraint,
* whether prioritised switched Ethernet still meets every constraint,
* the aggregate utilisation of the 1553B bus and of the Ethernet link.

The expected shape: the 1553B schedule saturates first (it is already near
its limit at scale 1), FCFS Ethernet is broken from the start (the 3 ms
class), and the prioritised Ethernet keeps every constraint until the urgent
class's own burst accumulation catches up, several scale factors later.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.paper_model import PaperCaseStudy
from repro.flows.message_set import MessageSet
from repro.milstd1553.schedule import MajorFrameSchedule
from repro.workloads.sweeps import scale_station_count

__all__ = ["ScalabilityRow", "scalability_sweep", "max_feasible_scale"]


@dataclass(frozen=True)
class ScalabilityRow:
    """Feasibility of every approach at one traffic scale factor."""

    #: Replication factor applied to the baseline message set.
    scale: int
    #: Number of messages at this scale.
    message_count: int
    #: Worst-case minor-frame utilisation of the 1553B schedule (may exceed 1).
    milstd1553_utilization: float
    #: True when the 1553B cyclic schedule still fits its minor frames.
    milstd1553_feasible: bool
    #: Aggregate long-term utilisation of the Ethernet link.
    ethernet_utilization: float
    #: True when plain FCFS meets every constraint.
    fcfs_feasible: bool
    #: True when the strict-priority scheme meets every constraint.
    priority_feasible: bool


def _ethernet_feasibility(message_set: MessageSet, capacity: float,
                          technology_delay: float) -> tuple[bool, bool]:
    """(FCFS ok, priority ok) for a message set, tolerating overload.

    Overloaded sets no longer need exception handling: Figure 1's rows
    follow the campaign runner's unbounded-row convention, so an unstable
    class simply makes the corresponding approach infeasible.
    """
    if message_set.total_rate() >= capacity:
        return False, False
    study = PaperCaseStudy(message_set, capacity=capacity,
                           technology_delay=technology_delay)
    return (not study.fcfs_violates_constraints(),
            study.priority_meets_all_constraints())


def scalability_sweep(message_set: MessageSet,
                      scales: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
                      capacity: float = units.mbps(10),
                      technology_delay: float = units.us(16)
                      ) -> list[ScalabilityRow]:
    """Feasibility of the three approaches as the traffic is replicated."""
    rows: list[ScalabilityRow] = []
    for scale in scales:
        scaled = scale_station_count(message_set, scale)
        schedule = MajorFrameSchedule(scaled)
        fcfs_ok, priority_ok = _ethernet_feasibility(scaled, capacity,
                                                     technology_delay)
        rows.append(ScalabilityRow(
            scale=scale,
            message_count=len(scaled),
            milstd1553_utilization=max(schedule.utilizations()),
            milstd1553_feasible=schedule.is_feasible(),
            ethernet_utilization=scaled.utilization(capacity),
            fcfs_feasible=fcfs_ok,
            priority_feasible=priority_ok))
    return rows


def max_feasible_scale(message_set: MessageSet, approach: str,
                       capacity: float = units.mbps(10),
                       technology_delay: float = units.us(16),
                       limit: int = 32) -> int:
    """Largest replication factor an approach supports (0 if none).

    ``approach`` is ``"mil-std-1553b"``, ``"ethernet-fcfs"`` or
    ``"ethernet-priority"``.  Scales are probed upward one by one until the
    approach breaks or ``limit`` is reached.
    """
    if approach not in ("mil-std-1553b", "ethernet-fcfs",
                        "ethernet-priority"):
        raise ValueError(f"unknown approach {approach!r}")
    best = 0
    for scale in range(1, limit + 1):
        scaled = scale_station_count(message_set, scale)
        if approach == "mil-std-1553b":
            feasible = MajorFrameSchedule(scaled).is_feasible()
        else:
            fcfs_ok, priority_ok = _ethernet_feasibility(
                scaled, capacity, technology_delay)
            feasible = fcfs_ok if approach == "ethernet-fcfs" else priority_ok
        if not feasible:
            break
        best = scale
    return best
