"""Content-addressed result store and incremental-execution layer.

PRs 1–4 made single runs fast; this package makes *repeat* runs cheap.
Every unit of work the heavy pipelines execute — an analytic campaign
scenario, a Monte-Carlo simulation cell, a report experiment — is given
a stable :func:`fingerprint` hashed from its value-level spec plus the
:mod:`code-version token <repro.store.versions>` of the subsystem that
computes it.  Results are persisted as JSON records in a disk store
(:class:`ResultStore`, ``.repro-store/`` by default) with atomic writes
safe under ``--jobs N`` process fan-out, so:

* a warm ``repro report`` re-run recomputes **zero** experiments,
* ``repro campaign/simulate/report --resume`` skips every cell finished
  before an interruption,
* ``repro report --check`` only rebuilds experiments whose fingerprint
  (spec or code) actually changed,
* CI caches the store between workflow runs keyed on the code-version
  tokens (``repro store key``), recomputing only invalidated cells.

``repro store stats | gc | clear`` manage the store from the CLI;
hit/miss/write statistics are surfaced after every store-enabled run.
"""

from repro.store.fingerprint import canonical, canonical_json, fingerprint
from repro.store.store import (
    DEFAULT_STORE_DIR,
    STORE_DIR_ENV,
    ResultStore,
    StoreEntry,
    StoreStats,
)
from repro.store.versions import (
    SUBSYSTEMS,
    ModuleGraph,
    all_code_versions,
    code_version,
    combined_token,
)

__all__ = [
    "ResultStore",
    "StoreStats",
    "StoreEntry",
    "STORE_DIR_ENV",
    "DEFAULT_STORE_DIR",
    "canonical",
    "canonical_json",
    "fingerprint",
    "ModuleGraph",
    "SUBSYSTEMS",
    "code_version",
    "all_code_versions",
    "combined_token",
]
