"""Stable content fingerprints for units of work.

A fingerprint is a SHA-256 digest of a *canonical JSON* encoding of a
spec: dataclasses become ``{"__dataclass__": name, "fields": {...}}``
maps, enums become ``{"__enum__": class, "name": member}`` maps, tuples
and lists are interchangeable, and dictionaries are sorted — so the
digest depends only on the **values** of the spec, never on object
identity, dict insertion order, or ``PYTHONHASHSEED``.  Two processes
(or two CI runs on different machines) computing the fingerprint of the
same scenario/cell/experiment spec always agree, which is what lets the
result store address results by content across process restarts.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

__all__ = ["canonical", "canonical_json", "fingerprint"]


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Supported inputs: JSON scalars, lists/tuples, sets/frozensets,
    dictionaries (any canonicalisable keys), enums and dataclass
    *instances* (recursively, via their declared fields).  Anything else
    raises ``TypeError`` — fingerprinting an object the store cannot
    represent faithfully would silently collide.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                "fields": {field.name: canonical(getattr(obj, field.name))
                           for field in dataclasses.fields(obj)}}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonical(item) for item in obj]
        return {"__set__": sorted(items, key=_sort_key)}
    if isinstance(obj, dict):
        pairs = [[canonical(key), canonical(value)]
                 for key, value in obj.items()]
        return {"__dict__": sorted(pairs, key=lambda kv: _sort_key(kv[0]))}
    raise TypeError(f"cannot canonicalise {type(obj).__name__!r} "
                    f"for fingerprinting: {obj!r}")


def _sort_key(value: Any) -> str:
    """Total order over canonical forms (via their JSON encoding)."""
    return json.dumps(value, sort_keys=True, allow_nan=True)


def canonical_json(obj: Any) -> str:
    """The canonical JSON text whose digest is the fingerprint."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True,
                      allow_nan=True)


def fingerprint(obj: Any) -> str:
    """The SHA-256 hex fingerprint of ``obj``'s canonical form."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8"))
    return digest.hexdigest()
