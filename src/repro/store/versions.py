"""Code-version tokens: hash the source closure behind each subsystem.

A stored result is only reusable while the code that produced it is
unchanged.  Rather than a hand-bumped version constant (easy to forget)
or hashing the whole tree (every edit invalidates everything), each
subsystem's token is the SHA-256 of the **import closure** of its entry
modules: :class:`ModuleGraph` AST-parses every ``repro.*`` module for its
intra-package imports, walks the transitive closure from the subsystem's
roots, and hashes the sorted ``(module, source bytes)`` pairs.  Editing
``repro/simulation/engine.py`` therefore invalidates the simulation and
report cells (both closures reach it) but leaves analytic campaign cells
untouched; editing a docstring still invalidates (bytes changed) — the
store prefers recomputing over ever serving a stale result.

The same tokens key the CI result-store cache (``repro store key``), so
a push that only touches docs restores a fully warm store.
"""

from __future__ import annotations

import ast
import functools
import hashlib
from pathlib import Path
from typing import Iterable

__all__ = ["ModuleGraph", "SUBSYSTEMS", "code_version", "all_code_versions",
           "combined_token", "environment_token"]

#: Entry modules whose import closure defines each subsystem's token.
#: The closures are intentionally overlapping: a report experiment runs
#: campaigns and simulations, so its token must cover both.
SUBSYSTEMS: dict[str, tuple[str, ...]] = {
    # repro.analysis.multihop is an explicit campaigns root because the
    # runner imports it lazily (cycle break) and lazy imports are outside
    # the closure walk — without it, editing the multi-hop analysis would
    # not invalidate stored graph-scenario campaign cells.
    "campaigns": ("repro.campaigns.runner", "repro.campaigns.registry",
                  "repro.analysis.multihop"),
    "simulation": ("repro.simulation.campaign",),
    "fuzz": ("repro.fuzz.campaign", "repro.fuzz.generator"),
    "reports": ("repro.reports.pipeline", "repro.reports.experiments"),
    "topology": ("repro.topology.graph", "repro.topology.routing"),
    # The serve engine's cached snapshots embed the campaign closed forms
    # and the multi-hop fallback, so its roots cover both.
    "serve": ("repro.serve.engine", "repro.analysis.multihop"),
    # The bound-engine registry: repro.analysis.multihop is an explicit
    # root because the calculus engine reaches it lazily (cycle break).
    "engines": ("repro.analysis.engines", "repro.analysis.multihop"),
}


def _module_level_nodes(tree: ast.Module):
    """Every AST node outside function bodies.

    Imports inside functions are deliberate *lazy* dependencies (used to
    break import cycles); following them — in particular a lazy ``import
    repro`` — would collapse every subsystem closure into the whole tree
    via the top-level package's convenience re-exports.
    """
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                stack.append(child)


class ModuleGraph:
    """Import graph of one source tree, rooted at a package directory.

    ``src_root`` is the directory *containing* the package (so the module
    ``repro.flows`` lives at ``src_root/repro/flows/__init__.py``).  The
    graph only follows imports inside ``package`` — third-party and
    standard-library modules are versioned by the environment, not the
    store.
    """

    def __init__(self, src_root: str | Path, package: str = "repro") -> None:
        self.src_root = Path(src_root)
        self.package = package
        self._imports_cache: dict[str, frozenset[str]] = {}

    # -- module <-> file -----------------------------------------------------

    def module_file(self, module: str) -> Path | None:
        """The source file of ``module``, or ``None`` if it is not ours."""
        if module != self.package and \
                not module.startswith(self.package + "."):
            return None
        relative = Path(*module.split("."))
        package_init = self.src_root / relative / "__init__.py"
        if package_init.is_file():
            return package_init
        plain = self.src_root / relative.with_suffix(".py")
        return plain if plain.is_file() else None

    # -- imports -------------------------------------------------------------

    def imports_of(self, module: str) -> frozenset[str]:
        """Modules of :attr:`package` that ``module`` imports (direct)."""
        cached = self._imports_cache.get(module)
        if cached is not None:
            return cached
        path = self.module_file(module)
        found: set[str] = set()
        if path is not None:
            tree = ast.parse(path.read_bytes(), filename=str(path))
            for node in _module_level_nodes(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._add(found, alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_from(module, node)
                    if base is not None:
                        # ``from pkg import name``: when every name is a
                        # submodule, depend on the submodules only — the
                        # top-level ``repro`` __init__ re-imports the whole
                        # tree, and following it would collapse every
                        # subsystem closure into "everything".
                        submodules = [f"{base}.{alias.name}"
                                      for alias in node.names
                                      if self.module_file(
                                          f"{base}.{alias.name}")
                                      is not None]
                        if len(submodules) != len(node.names):
                            self._add(found, base)
                        found.update(submodules)
        result = frozenset(found)
        self._imports_cache[module] = result
        return result

    def _resolve_from(self, module: str,
                      node: ast.ImportFrom) -> str | None:
        """The absolute module a ``from ... import`` statement targets."""
        if node.level == 0:
            return node.module
        # Relative import: climb from the importing module's package.
        parts = module.split(".")
        if self.module_file(module) is not None and \
                self.module_file(module).name != "__init__.py":
            parts = parts[:-1]
        parts = parts[:len(parts) - (node.level - 1)]
        if node.module:
            parts += node.module.split(".")
        return ".".join(parts) if parts else None

    def _add(self, found: set[str], candidate: str | None) -> None:
        """Record ``candidate`` if it names a module of this tree."""
        if candidate and self.module_file(candidate) is not None:
            found.add(candidate)

    # -- closure and token ---------------------------------------------------

    def closure(self, roots: Iterable[str]) -> list[str]:
        """Transitive import closure of ``roots``, sorted by module name."""
        seen: set[str] = set()
        frontier = [root for root in roots
                    if self.module_file(root) is not None]
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            frontier.extend(self.imports_of(module) - seen)
        return sorted(seen)

    def token(self, roots: Iterable[str]) -> str:
        """SHA-256 over the sorted (module, source bytes) of the closure."""
        digest = hashlib.sha256()
        for module in self.closure(roots):
            digest.update(module.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(self.module_file(module).read_bytes())
            digest.update(b"\x00")
        return digest.hexdigest()


@functools.lru_cache(maxsize=1)
def _installed_graph() -> ModuleGraph:
    """The graph of the running ``repro`` package's source tree."""
    # This file lives at <src_root>/repro/store/versions.py; deriving the
    # root from __file__ (rather than importing repro) keeps the store
    # itself out of the import-cycle picture.
    return ModuleGraph(Path(__file__).resolve().parents[2], package="repro")


@functools.lru_cache(maxsize=1)
def environment_token() -> str:
    """Digest of the compute environment the results depend on.

    A numpy upgrade can legitimately move floating-point results, so the
    interpreter version and the numeric dependencies' versions are mixed
    into every subsystem token — otherwise a store (or a CI cache) warmed
    under one environment would satisfy lookups under another and mask
    real drift.
    """
    import platform

    import networkx
    import numpy
    parts = [f"python={platform.python_version()}",
             f"numpy={numpy.__version__}",
             f"networkx={networkx.__version__}"]
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def code_version(subsystem: str) -> str:
    """The current code-version token of one named subsystem.

    Source closure (``ModuleGraph.token``) plus the environment token —
    either moving invalidates the subsystem's stored results.
    """
    try:
        roots = SUBSYSTEMS[subsystem]
    except KeyError:
        raise KeyError(f"unknown subsystem {subsystem!r}; known: "
                       f"{sorted(SUBSYSTEMS)}") from None
    digest = hashlib.sha256()
    digest.update(_installed_graph().token(roots).encode("utf-8"))
    digest.update(environment_token().encode("utf-8"))
    return digest.hexdigest()


def all_code_versions() -> dict[str, str]:
    """Current token of every subsystem, by name."""
    return {name: code_version(name) for name in sorted(SUBSYSTEMS)}


def combined_token() -> str:
    """One digest over every subsystem token (the CI cache key)."""
    digest = hashlib.sha256()
    for name, token in sorted(all_code_versions().items()):
        digest.update(f"{name}={token}\n".encode("utf-8"))
    return digest.hexdigest()
