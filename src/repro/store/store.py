"""The content-addressed, disk-backed result store.

Layout under the store root (``.repro-store/`` by default, overridable
with the ``REPRO_STORE_DIR`` environment variable or the CLI ``--store``
flag)::

    .repro-store/
      objects/<aa>/<fingerprint>.json    one self-describing record per
                                         unit of work (scenario cell,
                                         simulation cell, experiment)
      index.jsonl                        append-only inventory, one JSON
                                         line per write (rebuilt by gc)

Every record carries its subsystem, the code-version token it was
computed under, its kind and its payload, so the store can be audited,
garbage-collected (``repro store gc`` drops records whose token no
longer matches the current code) and summarised (``repro store stats``)
without any external bookkeeping.  Writes are atomic — payloads land in
a unique temporary file and are ``os.replace``d into place, and index
lines are single appended writes — so ``--jobs N`` process fan-out can
share one store: concurrent writers of the *same* fingerprint write
identical bytes and the last rename wins.

Neither reads nor writes ever trust the disk blindly: a missing,
truncated or corrupt record is a miss (the unit of work is recomputed
and rewritten), a corrupt ``index.jsonl`` line is skipped and counted,
and a write that fails with ``OSError`` (EIO, ENOSPC, a failed
``os.replace``) degrades to a logged unpersisted result — the campaign
keeps its in-memory value and continues; only the cache entry is lost.
Durability-sensitive deployments can opt into ``fsync`` mode
(constructor flag or ``REPRO_STORE_FSYNC=1``), which fsyncs every record
and index append before reporting the write done.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.exec import faults
from repro.store.fingerprint import fingerprint
from repro.store.versions import all_code_versions, code_version

__all__ = ["ResultStore", "StoreStats", "StoreEntry",
           "STORE_DIR_ENV", "DEFAULT_STORE_DIR", "STORE_FSYNC_ENV"]

#: Environment variable naming the store root (CI points it at the cache).
STORE_DIR_ENV = "REPRO_STORE_DIR"
#: Store root used when neither ``--store`` nor the env var is set.
DEFAULT_STORE_DIR = ".repro-store"
#: Environment variable switching on fsync durability (``1``/``true``).
STORE_FSYNC_ENV = "REPRO_STORE_FSYNC"

_LOG = logging.getLogger("repro.store")

_OBJECTS_DIR = "objects"
_INDEX_NAME = "index.jsonl"

#: A payload can legitimately be ``None``; misses are signalled with this.
_MISS = object()

_tmp_counter = 0
_tmp_lock = threading.Lock()


@dataclass
class StoreStats:
    """Hit/miss/write counters of one store handle (one run)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Writes that failed with ``OSError`` and were degraded to a logged
    #: unpersisted result (the run continued with its in-memory value).
    write_errors: int = 0
    #: Unreadable records encountered by lookups (each was dropped and
    #: counted as a miss).
    corrupt_records: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` lookups."""
        return self.hits + self.misses

    def describe(self) -> str:
        """One human line, e.g. ``'11 hits, 0 misses, 0 writes'``.

        The degradation counters only appear when nonzero, so the healthy
        path reads exactly as before.
        """
        text = (f"{self.hits} hits, {self.misses} misses, "
                f"{self.writes} writes")
        if self.write_errors:
            text += f", {self.write_errors} write errors"
        if self.corrupt_records:
            text += f", {self.corrupt_records} corrupt records"
        return text


@dataclass(frozen=True)
class StoreEntry:
    """One record found on disk (used by stats/gc, not the hot path)."""

    fingerprint: str
    subsystem: str
    token: str
    kind: str
    path: Path
    size_bytes: int


class ResultStore:
    """Content-addressed result store shared by every campaign runner.

    Parameters
    ----------
    root:
        The store directory.  ``None`` resolves ``$REPRO_STORE_DIR`` and
        falls back to ``.repro-store`` in the current working directory.
    fsync:
        Opt-in durability: fsync every record (and index append) before
        reporting the write done, so a power loss cannot leave a record
        the rename published but the disk never persisted.  ``None``
        (default) resolves ``$REPRO_STORE_FSYNC``; the store is crash
        *consistent* either way — fsync only upgrades how much of the
        recent history survives.
    """

    def __init__(self, root: str | Path | None = None, *,
                 fsync: bool | None = None) -> None:
        if root is None:
            root = os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR
        if fsync is None:
            fsync = os.environ.get(STORE_FSYNC_ENV, "").lower() in (
                "1", "true", "yes", "on")
        self.root = Path(root)
        self.fsync = bool(fsync)
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the content-addressed records."""
        return self.root / _OBJECTS_DIR

    @property
    def index_path(self) -> Path:
        """The append-only inventory file."""
        return self.root / _INDEX_NAME

    def _blob_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}.json"

    # -- fingerprints --------------------------------------------------------

    def fingerprint_for(self, kind: str, key: Any, *, subsystem: str,
                        token: str | None = None) -> str:
        """The content address of one unit of work.

        The fingerprint covers the work's ``kind`` (namespace), its
        value-level ``key`` (spec), and the subsystem's current
        code-version token — so editing the code behind a subsystem
        moves every one of its fingerprints and old records simply stop
        being found (until ``gc`` sweeps them).
        """
        if token is None:
            token = code_version(subsystem)
        # The key rides raw: fingerprint() canonicalises the whole
        # envelope in one traversal.
        return fingerprint({"kind": kind, "subsystem": subsystem,
                            "token": token, "key": key})

    # -- record I/O ----------------------------------------------------------

    def get_payload(self, digest: str) -> Any:
        """The stored payload, or the module-level miss sentinel.

        Returns :data:`_MISS` (compare with :meth:`is_miss`) when the
        record is absent or unreadable; a corrupt record is removed so
        the next write replaces it.
        """
        path = self._blob_path(digest)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            payload = record["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return _MISS
        except (OSError, ValueError, KeyError, TypeError) as error:
            self.stats.misses += 1
            self.stats.corrupt_records += 1
            _LOG.warning("store: corrupt record %s (%s: %s); treating as "
                         "a miss", path.name, type(error).__name__, error)
            try:  # corrupt record: drop it, the caller will recompute
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return _MISS
        self.stats.hits += 1
        return payload

    @staticmethod
    def is_miss(payload: Any) -> bool:
        """True when :meth:`get_payload` found no usable record."""
        return payload is _MISS

    def put_payload(self, digest: str, payload: Any, *, subsystem: str,
                    kind: str, token: str | None = None) -> None:
        """Atomically write one record and append its index line.

        A write that fails with ``OSError`` (EIO, ENOSPC, a failed
        ``os.replace``) is degraded to a logged unpersisted result and
        counted on ``stats.write_errors`` — the caller keeps its
        in-memory value and the run continues; only the cache entry is
        lost.  The :mod:`repro.exec.faults` hooks sit on every disk
        operation so the chaos suite can inject each failure mode at a
        chosen cell.
        """
        if token is None:
            token = code_version(subsystem)
        record = {"fingerprint": digest, "subsystem": subsystem,
                  "token": token, "kind": kind, "payload": payload}
        data = json.dumps(record, allow_nan=True, sort_keys=True)
        path = self._blob_path(digest)
        global _tmp_counter
        with _tmp_lock:
            _tmp_counter += 1
            serial = _tmp_counter
        tmp = path.parent / f".{digest[:16]}.{os.getpid()}.{serial}.tmp"
        try:
            faults.store_fault("write")
            path.parent.mkdir(parents=True, exist_ok=True)
            existed = path.exists()
            try:
                tmp.write_text(faults.corrupt_record(data),
                               encoding="utf-8")
                if self.fsync:
                    self._fsync_path(tmp)
                faults.store_fault("replace")
                os.replace(tmp, path)
            finally:
                if tmp.exists():
                    tmp.unlink()
            if self.fsync:
                self._fsync_path(path.parent)
        except OSError as error:
            self.stats.write_errors += 1
            _LOG.warning("store: write of %s failed (%s); result not "
                         "persisted, run continues", path.name, error)
            return
        if not existed:
            # Only new records earn an index line, so rewriting the same
            # cell run after run does not grow the inventory unboundedly
            # (gc rebuilds it exactly either way).
            line = faults.corrupt_index_line(json.dumps(
                {"fingerprint": digest, "subsystem": subsystem,
                 "token": token, "kind": kind, "bytes": len(data)},
                sort_keys=True))
            try:
                with self.index_path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    if self.fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
            except OSError as error:
                # The record itself is safely in place; only its
                # inventory line is lost, and gc rebuilds the index from
                # the records anyway.
                self.stats.write_errors += 1
                _LOG.warning("store: index append for %s failed (%s); "
                             "record kept, inventory line lost",
                             digest[:16], error)
        self.stats.writes += 1

    @staticmethod
    def _fsync_path(path: Path) -> None:
        """fsync one file or directory (the opt-in durability mode)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def cached(self, kind: str, key: Any, compute: Callable[[], Any], *,
               subsystem: str, encode: Callable[[Any], Any] | None = None,
               decode: Callable[[Any], Any] | None = None,
               token: str | None = None,
               reuse: bool = True) -> tuple[Any, bool]:
        """Fetch-or-compute one unit of work — the store's one protocol.

        Returns ``(value, from_store)``.  ``encode``/``decode`` map the
        computed value to/from its JSON payload (identity when omitted);
        a ``decode`` that raises ``KeyError``/``TypeError``/``ValueError``
        marks the record unreadable, which is a miss (recompute and
        rewrite).  ``reuse=False`` skips the read entirely — the
        write-only mode campaigns use when not ``--resume``-ing, so their
        reported timings stay honest.
        """
        digest = self.fingerprint_for(kind, key, subsystem=subsystem,
                                      token=token)
        if reuse:
            payload = self.get_payload(digest)
            if not self.is_miss(payload):
                try:
                    return (decode(payload) if decode else payload), True
                except (KeyError, TypeError, ValueError):
                    self.stats.hits -= 1
                    self.stats.misses += 1
        value = compute()
        self.put_payload(digest, encode(value) if encode else value,
                         subsystem=subsystem, kind=kind, token=token)
        return value, False

    # -- maintenance (repro store stats / gc / clear) ------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Every readable record on disk (unreadable files are skipped)."""
        for entry, _ in self._scan():
            if entry is not None:
                yield entry

    def _scan(self) -> Iterator[tuple[StoreEntry | None, Path]]:
        """Every record file as ``(entry-or-None, path)``.

        ``None`` flags an unreadable (torn/corrupt) record — the callers
        decide whether to skip (stats), count (audit) or remove (gc) it.
        """
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                yield StoreEntry(
                    fingerprint=str(record["fingerprint"]),
                    subsystem=str(record["subsystem"]),
                    token=str(record["token"]),
                    kind=str(record["kind"]),
                    path=path,
                    size_bytes=path.stat().st_size), path
            except (OSError, ValueError, KeyError, TypeError):
                yield None, path

    def index_entries(self) -> tuple[list[dict], int]:
        """``(parsed index lines, corrupt lines skipped)``.

        A truncated or otherwise unparseable line (a torn append) is
        never an error: it is skipped and counted, exactly like a corrupt
        record is a miss.  The index is advisory — gc rebuilds it from
        the records themselves.
        """
        if not self.index_path.is_file():
            return [], 0
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except OSError:  # pragma: no cover - unreadable index file
            return [], 0
        parsed: list[dict] = []
        corrupt = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "fingerprint" not in record:
                    raise ValueError("not an index record")
            except (ValueError, TypeError):
                corrupt += 1
                continue
            parsed.append(record)
        if corrupt:
            _LOG.warning("store: skipped %d corrupt index line(s) in %s",
                         corrupt, self.index_path)
        return parsed, corrupt

    def audit(self) -> dict[str, int]:
        """Disk-level health counters for ``repro store stats``.

        Scans every record file and index line, reporting what a reader
        would silently skip: ``corrupt_records`` unreadable record files
        and ``corrupt_index_lines`` unparseable inventory lines.
        """
        records = corrupt_records = 0
        for entry, _ in self._scan():
            records += 1
            if entry is None:
                corrupt_records += 1
        index_lines, corrupt_lines = self.index_entries()
        return {"records": records,
                "corrupt_records": corrupt_records,
                "index_lines": len(index_lines) + corrupt_lines,
                "corrupt_index_lines": corrupt_lines}

    def health(self, *, audit: bool = False) -> dict:
        """The store's integrity counters, one shape for every surface.

        ``repro store stats`` and the ``repro serve`` health endpoint
        both report this dict, so the keys (``write_errors``,
        ``corrupt_records``, ``degraded``) can never drift between the
        CLI and the service.  The default is the live handle's counters
        — O(1), safe on a hot path; ``audit=True`` additionally scans
        the disk and folds in record files *any* reader would find
        corrupt (the handle may simply not have touched them yet), so
        ``corrupt_records`` becomes the larger of the two views.
        """
        stats = self.stats
        counters = {"hits": stats.hits,
                    "misses": stats.misses,
                    "writes": stats.writes,
                    "write_errors": stats.write_errors,
                    "corrupt_records": stats.corrupt_records}
        if audit:
            disk = self.audit()
            counters["corrupt_records"] = max(counters["corrupt_records"],
                                              disk["corrupt_records"])
            counters["corrupt_index_lines"] = disk["corrupt_index_lines"]
        counters["degraded"] = bool(counters["write_errors"]
                                    or counters["corrupt_records"])
        return counters

    def size_bytes(self) -> int:
        """Total bytes of every object record."""
        if not self.objects_dir.is_dir():
            return 0
        return sum(path.stat().st_size
                   for path in self.objects_dir.glob("*/*.json"))

    def gc(self, tokens: dict[str, str] | None = None
           ) -> tuple[int, int, int]:
        """Drop records whose token no longer matches the current code.

        Returns ``(kept, removed, freed_bytes)``.  ``tokens`` defaults to
        the live subsystem tokens; records of *unknown* subsystems are
        removed too (they can never be looked up again), as are
        unreadable (torn/corrupt) record files — a reader would only ever
        skip them.  The index is rebuilt to exactly the surviving
        records.
        """
        if tokens is None:
            tokens = all_code_versions()
        kept: list[StoreEntry] = []
        removed = freed = 0
        for entry, path in self._scan():
            if entry is not None and tokens.get(entry.subsystem) == \
                    entry.token:
                kept.append(entry)
                continue
            removed += 1
            try:
                freed += path.stat().st_size
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
        self._rewrite_index(kept)
        self._prune_empty_dirs()
        return len(kept), removed, freed

    def clear(self) -> int:
        """Remove every record (and the index); returns the count."""
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing unlink
                    pass
        if self.index_path.is_file():
            self.index_path.unlink()
        self._prune_empty_dirs()
        return removed

    def _rewrite_index(self, entries: list[StoreEntry]) -> None:
        lines = [json.dumps(
            {"fingerprint": entry.fingerprint, "subsystem": entry.subsystem,
             "token": entry.token, "kind": entry.kind,
             "bytes": entry.size_bytes}, sort_keys=True)
            for entry in entries]
        if not lines and not self.root.is_dir():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path.write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8")

    def _prune_empty_dirs(self) -> None:
        if not self.objects_dir.is_dir():
            return
        for bucket in self.objects_dir.iterdir():
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        if not any(self.objects_dir.iterdir()):
            self.objects_dir.rmdir()
