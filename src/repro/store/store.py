"""The content-addressed, disk-backed result store.

Layout under the store root (``.repro-store/`` by default, overridable
with the ``REPRO_STORE_DIR`` environment variable or the CLI ``--store``
flag)::

    .repro-store/
      objects/<aa>/<fingerprint>.json    one self-describing record per
                                         unit of work (scenario cell,
                                         simulation cell, experiment)
      index.jsonl                        append-only inventory, one JSON
                                         line per write (rebuilt by gc)

Every record carries its subsystem, the code-version token it was
computed under, its kind and its payload, so the store can be audited,
garbage-collected (``repro store gc`` drops records whose token no
longer matches the current code) and summarised (``repro store stats``)
without any external bookkeeping.  Writes are atomic — payloads land in
a unique temporary file and are ``os.replace``d into place, and index
lines are single appended writes — so ``--jobs N`` process fan-out can
share one store: concurrent writers of the *same* fingerprint write
identical bytes and the last rename wins.

Reads never trust the disk blindly: a missing, truncated or corrupt
record is a miss (the unit of work is recomputed and rewritten), never
an error.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.store.fingerprint import fingerprint
from repro.store.versions import all_code_versions, code_version

__all__ = ["ResultStore", "StoreStats", "StoreEntry",
           "STORE_DIR_ENV", "DEFAULT_STORE_DIR"]

#: Environment variable naming the store root (CI points it at the cache).
STORE_DIR_ENV = "REPRO_STORE_DIR"
#: Store root used when neither ``--store`` nor the env var is set.
DEFAULT_STORE_DIR = ".repro-store"

_OBJECTS_DIR = "objects"
_INDEX_NAME = "index.jsonl"

#: A payload can legitimately be ``None``; misses are signalled with this.
_MISS = object()

_tmp_counter = 0
_tmp_lock = threading.Lock()


@dataclass
class StoreStats:
    """Hit/miss/write counters of one store handle (one run)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` lookups."""
        return self.hits + self.misses

    def describe(self) -> str:
        """One human line, e.g. ``'11 hits, 0 misses, 0 writes'``."""
        return f"{self.hits} hits, {self.misses} misses, {self.writes} writes"


@dataclass(frozen=True)
class StoreEntry:
    """One record found on disk (used by stats/gc, not the hot path)."""

    fingerprint: str
    subsystem: str
    token: str
    kind: str
    path: Path
    size_bytes: int


class ResultStore:
    """Content-addressed result store shared by every campaign runner.

    Parameters
    ----------
    root:
        The store directory.  ``None`` resolves ``$REPRO_STORE_DIR`` and
        falls back to ``.repro-store`` in the current working directory.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR
        self.root = Path(root)
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Directory holding the content-addressed records."""
        return self.root / _OBJECTS_DIR

    @property
    def index_path(self) -> Path:
        """The append-only inventory file."""
        return self.root / _INDEX_NAME

    def _blob_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / f"{digest}.json"

    # -- fingerprints --------------------------------------------------------

    def fingerprint_for(self, kind: str, key: Any, *, subsystem: str,
                        token: str | None = None) -> str:
        """The content address of one unit of work.

        The fingerprint covers the work's ``kind`` (namespace), its
        value-level ``key`` (spec), and the subsystem's current
        code-version token — so editing the code behind a subsystem
        moves every one of its fingerprints and old records simply stop
        being found (until ``gc`` sweeps them).
        """
        if token is None:
            token = code_version(subsystem)
        # The key rides raw: fingerprint() canonicalises the whole
        # envelope in one traversal.
        return fingerprint({"kind": kind, "subsystem": subsystem,
                            "token": token, "key": key})

    # -- record I/O ----------------------------------------------------------

    def get_payload(self, digest: str) -> Any:
        """The stored payload, or the module-level miss sentinel.

        Returns :data:`_MISS` (compare with :meth:`is_miss`) when the
        record is absent or unreadable; a corrupt record is removed so
        the next write replaces it.
        """
        path = self._blob_path(digest)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            payload = record["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return _MISS
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            try:  # corrupt record: drop it, the caller will recompute
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return _MISS
        self.stats.hits += 1
        return payload

    @staticmethod
    def is_miss(payload: Any) -> bool:
        """True when :meth:`get_payload` found no usable record."""
        return payload is _MISS

    def put_payload(self, digest: str, payload: Any, *, subsystem: str,
                    kind: str, token: str | None = None) -> None:
        """Atomically write one record and append its index line."""
        if token is None:
            token = code_version(subsystem)
        record = {"fingerprint": digest, "subsystem": subsystem,
                  "token": token, "kind": kind, "payload": payload}
        data = json.dumps(record, allow_nan=True, sort_keys=True)
        path = self._blob_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        global _tmp_counter
        with _tmp_lock:
            _tmp_counter += 1
            serial = _tmp_counter
        tmp = path.parent / f".{digest[:16]}.{os.getpid()}.{serial}.tmp"
        try:
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        if not existed:
            # Only new records earn an index line, so rewriting the same
            # cell run after run does not grow the inventory unboundedly
            # (gc rebuilds it exactly either way).
            line = json.dumps(
                {"fingerprint": digest, "subsystem": subsystem,
                 "token": token, "kind": kind, "bytes": len(data)},
                sort_keys=True)
            with self.index_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        self.stats.writes += 1

    def cached(self, kind: str, key: Any, compute: Callable[[], Any], *,
               subsystem: str, encode: Callable[[Any], Any] | None = None,
               decode: Callable[[Any], Any] | None = None,
               token: str | None = None,
               reuse: bool = True) -> tuple[Any, bool]:
        """Fetch-or-compute one unit of work — the store's one protocol.

        Returns ``(value, from_store)``.  ``encode``/``decode`` map the
        computed value to/from its JSON payload (identity when omitted);
        a ``decode`` that raises ``KeyError``/``TypeError``/``ValueError``
        marks the record unreadable, which is a miss (recompute and
        rewrite).  ``reuse=False`` skips the read entirely — the
        write-only mode campaigns use when not ``--resume``-ing, so their
        reported timings stay honest.
        """
        digest = self.fingerprint_for(kind, key, subsystem=subsystem,
                                      token=token)
        if reuse:
            payload = self.get_payload(digest)
            if not self.is_miss(payload):
                try:
                    return (decode(payload) if decode else payload), True
                except (KeyError, TypeError, ValueError):
                    self.stats.hits -= 1
                    self.stats.misses += 1
        value = compute()
        self.put_payload(digest, encode(value) if encode else value,
                         subsystem=subsystem, kind=kind, token=token)
        return value, False

    # -- maintenance (repro store stats / gc / clear) ------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Every readable record on disk (unreadable files are skipped)."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                yield StoreEntry(
                    fingerprint=str(record["fingerprint"]),
                    subsystem=str(record["subsystem"]),
                    token=str(record["token"]),
                    kind=str(record["kind"]),
                    path=path,
                    size_bytes=path.stat().st_size)
            except (OSError, ValueError, KeyError, TypeError):
                continue

    def size_bytes(self) -> int:
        """Total bytes of every object record."""
        if not self.objects_dir.is_dir():
            return 0
        return sum(path.stat().st_size
                   for path in self.objects_dir.glob("*/*.json"))

    def gc(self, tokens: dict[str, str] | None = None
           ) -> tuple[int, int, int]:
        """Drop records whose token no longer matches the current code.

        Returns ``(kept, removed, freed_bytes)``.  ``tokens`` defaults to
        the live subsystem tokens; records of *unknown* subsystems are
        removed too (they can never be looked up again).  The index is
        rebuilt to exactly the surviving records.
        """
        if tokens is None:
            tokens = all_code_versions()
        kept: list[StoreEntry] = []
        removed = freed = 0
        for entry in self.entries():
            if tokens.get(entry.subsystem) == entry.token:
                kept.append(entry)
                continue
            removed += 1
            freed += entry.size_bytes
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
        self._rewrite_index(kept)
        self._prune_empty_dirs()
        return len(kept), removed, freed

    def clear(self) -> int:
        """Remove every record (and the index); returns the count."""
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing unlink
                    pass
        if self.index_path.is_file():
            self.index_path.unlink()
        self._prune_empty_dirs()
        return removed

    def _rewrite_index(self, entries: list[StoreEntry]) -> None:
        lines = [json.dumps(
            {"fingerprint": entry.fingerprint, "subsystem": entry.subsystem,
             "token": entry.token, "kind": entry.kind,
             "bytes": entry.size_bytes}, sort_keys=True)
            for entry in entries]
        if not lines and not self.root.is_dir():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path.write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8")

    def _prune_empty_dirs(self) -> None:
        if not self.objects_dir.is_dir():
            return
        for bucket in self.objects_dir.iterdir():
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        if not any(self.objects_dir.iterdir()):
            self.objects_dir.rmdir()
