"""AFDX-style virtual links.

The paper motivates switched Ethernet for military avionics by the civil
success of the A380's AFDX network.  In AFDX (ARINC 664 part 7) a flow is
described as a *virtual link* (VL) with a **Bandwidth Allocation Gap** (BAG)
and a maximal frame size ``s_max``; the VL shaper guarantees that two
consecutive frames of the VL leave the end system at least one BAG apart.

A VL is therefore just another way to express the paper's token bucket:
``b = s_max`` and ``r = s_max / BAG``.  :class:`VirtualLink` offers the AFDX
vocabulary and converts to the library's :class:`~repro.flows.messages.Message`
and token-bucket representations, so users coming from the AFDX world can use
the library with their native parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import InvalidMessageError
from repro.flows.messages import Message, MessageKind

__all__ = ["VirtualLink", "STANDARD_BAGS"]

#: The BAG values allowed by ARINC 664 part 7: 1, 2, 4, ... 128 ms.
STANDARD_BAGS = tuple(units.ms(2 ** k) for k in range(8))


@dataclass(frozen=True)
class VirtualLink:
    """An AFDX virtual link (BAG, s_max).

    Attributes
    ----------
    name:
        VL identifier.
    bag:
        Bandwidth Allocation Gap in seconds — the minimal spacing between two
        consecutive frames of the VL at the output of the end system.
    max_frame_size:
        Maximal frame size ``s_max`` in bits.
    source / destination:
        End-system names.
    deadline:
        Optional maximal response time (seconds).
    """

    name: str
    bag: float
    max_frame_size: float
    source: str
    destination: str
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.bag <= 0:
            raise InvalidMessageError(
                f"virtual link {self.name!r}: BAG must be positive")
        if self.max_frame_size <= 0:
            raise InvalidMessageError(
                f"virtual link {self.name!r}: s_max must be positive")

    @property
    def is_standard_bag(self) -> bool:
        """True when the BAG is one of the ARINC 664 values (1..128 ms)."""
        return any(abs(self.bag - bag) < 1e-12 for bag in STANDARD_BAGS)

    @property
    def burst(self) -> float:
        """Equivalent token-bucket burst (bits)."""
        return self.max_frame_size

    @property
    def rate(self) -> float:
        """Equivalent token-bucket rate (bits per second)."""
        return self.max_frame_size / self.bag

    def to_message(self) -> Message:
        """Convert the VL into the library's sporadic message representation.

        AFDX traffic is sporadic from the network's point of view (the BAG is
        a minimal inter-arrival time, not a period), so the conversion uses
        :attr:`MessageKind.SPORADIC`.
        """
        return Message(name=self.name, kind=MessageKind.SPORADIC,
                       period=self.bag, size=self.max_frame_size,
                       source=self.source, destination=self.destination,
                       deadline=self.deadline,
                       metadata={"virtual_link": True})

    @classmethod
    def from_message(cls, message: Message) -> "VirtualLink":
        """Describe a message as a virtual link (BAG = period, s_max = size)."""
        return cls(name=message.name, bag=message.period,
                   max_frame_size=message.size, source=message.source,
                   destination=message.destination,
                   deadline=message.deadline)
