"""Message characterisation: periodic and sporadic avionics messages.

A :class:`Message` is the unit of traffic characterisation used throughout
the library, matching the paper's notation:

* a **periodic** message ``i`` is ``(T_i, b_i)`` with ``T_i`` the period and
  ``b_i`` the message length,
* a **sporadic** message ``j`` is ``(T_j, b_j)`` with ``T_j`` the minimal
  inter-arrival time between two consecutive instances and ``b_j`` its
  length.

Both kinds therefore reduce to the same token-bucket characterisation
``(b, r = b / T)`` used by the traffic shapers and the network-calculus
bounds; the distinction matters for the priority assignment policy, for the
MIL-STD-1553B schedule construction (periodic messages go into the major
frame transaction table, sporadic messages are polled) and for the traffic
generators of the simulators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import InvalidMessageError

__all__ = ["MessageKind", "Message"]


class MessageKind(enum.Enum):
    """Whether a message is periodic or sporadic."""

    PERIODIC = "periodic"
    SPORADIC = "sporadic"


@dataclass(frozen=True)
class Message:
    """An avionics message stream.

    Attributes
    ----------
    name:
        Unique identifier of the message within a :class:`MessageSet`.
    kind:
        Periodic or sporadic.
    period:
        For periodic messages, the transfer period ``T_i``; for sporadic
        messages, the minimal inter-arrival time ``T_j``.  Seconds.
    size:
        Message length ``b_i`` in bits (application payload; technology
        specific overheads are added by the Ethernet / 1553B models).
    source:
        Name of the emitting station.
    destination:
        Name of the receiving station.
    deadline:
        Requested maximal response time in seconds, or ``None`` when the
        message has no hard constraint (background traffic).
    metadata:
        Free-form annotations (subsystem name, 1553B sub-address...).
    """

    name: str
    kind: MessageKind
    period: float
    size: float
    source: str
    destination: str
    deadline: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidMessageError("message name must not be empty")
        if self.period <= 0:
            raise InvalidMessageError(
                f"message {self.name!r}: period must be positive, "
                f"got {self.period!r}")
        if self.size <= 0:
            raise InvalidMessageError(
                f"message {self.name!r}: size must be positive, "
                f"got {self.size!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidMessageError(
                f"message {self.name!r}: deadline must be positive or None, "
                f"got {self.deadline!r}")
        if not self.source or not self.destination:
            raise InvalidMessageError(
                f"message {self.name!r}: source and destination must be set")
        if self.source == self.destination:
            raise InvalidMessageError(
                f"message {self.name!r}: source and destination must differ")

    # -- derived quantities -------------------------------------------------

    @property
    def is_periodic(self) -> bool:
        """True for periodic messages."""
        return self.kind is MessageKind.PERIODIC

    @property
    def is_sporadic(self) -> bool:
        """True for sporadic messages."""
        return self.kind is MessageKind.SPORADIC

    @property
    def rate(self) -> float:
        """Long-term rate ``r = b / T`` in bits per second.

        This is exactly the token-bucket rate the paper assigns to the
        message's traffic shaper.
        """
        return self.size / self.period

    @property
    def burst(self) -> float:
        """Token-bucket burst ``b`` in bits (the message length)."""
        return self.size

    def utilization(self, capacity: float) -> float:
        """Fraction of a link of ``capacity`` (bps) consumed by this message."""
        if capacity <= 0:
            raise InvalidMessageError(
                f"capacity must be positive, got {capacity!r}")
        return self.rate / capacity

    def transmission_time(self, capacity: float) -> float:
        """Serialisation time of one instance on a link of ``capacity`` bps."""
        if capacity <= 0:
            raise InvalidMessageError(
                f"capacity must be positive, got {capacity!r}")
        return self.size / capacity

    # -- convenience constructors -------------------------------------------

    @classmethod
    def periodic(cls, name: str, period: float, size: float, source: str,
                 destination: str, deadline: float | None = None,
                 **metadata: Any) -> "Message":
        """Create a periodic message ``(T, b)``.

        When ``deadline`` is omitted it defaults to the period, the usual
        implicit-deadline assumption for periodic avionics data.
        """
        if deadline is None:
            deadline = period
        return cls(name=name, kind=MessageKind.PERIODIC, period=period,
                   size=size, source=source, destination=destination,
                   deadline=deadline, metadata=dict(metadata))

    @classmethod
    def sporadic(cls, name: str, min_interarrival: float, size: float,
                 source: str, destination: str,
                 deadline: float | None = None, **metadata: Any) -> "Message":
        """Create a sporadic message ``(T, b)`` with minimal inter-arrival T."""
        return cls(name=name, kind=MessageKind.SPORADIC,
                   period=min_interarrival, size=size, source=source,
                   destination=destination, deadline=deadline,
                   metadata=dict(metadata))

    def with_deadline(self, deadline: float | None) -> "Message":
        """Return a copy of this message with a different deadline."""
        return replace(self, deadline=deadline)

    def with_size(self, size: float) -> "Message":
        """Return a copy of this message with a different size (bits)."""
        return replace(self, size=size)
