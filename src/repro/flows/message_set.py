"""Message sets: validated collections of messages with useful views.

A :class:`MessageSet` is the unit the evaluation harness works with: the
synthetic "real case" workload is a message set, the 1553B schedule builder
consumes a message set, and the Ethernet analysis groups a message set by
source station and by priority class.

Two scale-sensitive companions live here as well:

* every set exposes a lazily built struct-of-arrays view
  (:meth:`MessageSet.arrays`, invalidated on mutation) that the analytic
  paths consume instead of per-message loops,
* :class:`ReplicatedMessageSet` models the scalability ladder's ``k``-fold
  station replication *arithmetically*: aggregate quantities scale by ``k``
  without materialising the replicas, which only happens when a consumer
  (e.g. the 1553B schedule builder) actually iterates the messages.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator

from repro.errors import InvalidWorkloadError
from repro.flows.arrays import MessageArrays
from repro.flows.messages import Message, MessageKind
from repro.flows.priorities import PriorityClass, assign_priority

__all__ = ["MessageSet", "ReplicatedMessageSet"]


class MessageSet:
    """An ordered, name-indexed collection of messages.

    Parameters
    ----------
    messages:
        The messages to include.  Names must be unique.
    name:
        Optional label for reports.

    Raises
    ------
    InvalidWorkloadError
        If two messages share a name.
    """

    def __init__(self, messages: Iterable[Message] = (),
                 name: str = "message-set") -> None:
        self.name = name
        self._messages: dict[str, Message] = {}
        self._arrays: MessageArrays | None = None
        self._version = 0
        for message in messages:
            self.add(message)

    # -- collection protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages.values())

    def __contains__(self, name: str) -> bool:
        return name in self._messages

    def __getitem__(self, name: str) -> Message:
        return self._messages[name]

    def add(self, message: Message) -> None:
        """Add a message; its name must not already be present."""
        if message.name in self._messages:
            raise InvalidWorkloadError(
                f"duplicate message name {message.name!r} in set {self.name!r}")
        self._messages[message.name] = message
        self._arrays = None
        self._version += 1

    def extend(self, messages: Iterable[Message]) -> None:
        """Add several messages."""
        for message in messages:
            self.add(message)

    @property
    def messages(self) -> list[Message]:
        """All messages, in insertion order."""
        return list(self._messages.values())

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every :meth:`add`.

        Consumers that cache derived results (struct-of-arrays views,
        per-class aggregates, response-time contexts) key them on this
        counter so a mutated set never serves stale analysis.
        """
        return self._version

    # -- array backend ---------------------------------------------------------

    def arrays(self) -> MessageArrays:
        """The struct-of-arrays view of this set, built lazily.

        The view is cached until the set is mutated (:meth:`add` /
        :meth:`extend` invalidate it), so repeated analytic passes share one
        column extraction.
        """
        if self._arrays is None:
            self._arrays = MessageArrays(self._messages.values())
        return self._arrays

    @property
    def arithmetic_replication(self) -> "tuple[MessageSet, int] | None":
        """``(base_set, k)`` when this set is a pristine ``k``-fold replica.

        Consumers whose aggregates scale linearly with the population (the
        per-class :class:`~repro.core.multiplexer.ClassAggregate` sums) use
        this to work on the base set and scale arithmetically instead of
        materialising the replicas.  Plain sets return ``None``.
        """
        return None

    # -- views ----------------------------------------------------------------

    def periodic(self) -> list[Message]:
        """The periodic messages."""
        return [m for m in self if m.kind is MessageKind.PERIODIC]

    def sporadic(self) -> list[Message]:
        """The sporadic messages."""
        return [m for m in self if m.kind is MessageKind.SPORADIC]

    def by_source(self) -> dict[str, list[Message]]:
        """Messages grouped by emitting station."""
        grouped: dict[str, list[Message]] = defaultdict(list)
        for message in self:
            grouped[message.source].append(message)
        return dict(grouped)

    def by_destination(self) -> dict[str, list[Message]]:
        """Messages grouped by receiving station."""
        grouped: dict[str, list[Message]] = defaultdict(list)
        for message in self:
            grouped[message.destination].append(message)
        return dict(grouped)

    def by_priority(self) -> dict[PriorityClass, list[Message]]:
        """Messages grouped by the paper's priority classes.

        Every class is present in the result, possibly with an empty list,
        so callers can iterate over all four classes unconditionally.
        """
        grouped: dict[PriorityClass, list[Message]] = {
            cls: [] for cls in PriorityClass}
        for message in self:
            grouped[assign_priority(message)].append(message)
        return grouped

    def filter(self, predicate: Callable[[Message], bool],
               name: str | None = None) -> "MessageSet":
        """A new message set containing the messages matching ``predicate``."""
        return MessageSet((m for m in self if predicate(m)),
                          name=name or f"{self.name}-filtered")

    def from_station(self, station: str) -> "MessageSet":
        """The messages emitted by ``station``."""
        return self.filter(lambda m: m.source == station,
                           name=f"{self.name}@{station}")

    def sources(self) -> list[str]:
        """Sorted list of all emitting stations."""
        return sorted({m.source for m in self})

    def destinations(self) -> list[str]:
        """Sorted list of all receiving stations."""
        return sorted({m.destination for m in self})

    def stations(self) -> list[str]:
        """Sorted list of every station that emits or receives."""
        return sorted({m.source for m in self} | {m.destination for m in self})

    # -- aggregate quantities --------------------------------------------------

    def total_rate(self) -> float:
        """Sum of the token-bucket rates ``r_i`` (bits per second)."""
        return self.arrays().total_rate()

    def total_burst(self) -> float:
        """Sum of the token-bucket bursts ``b_i`` (bits)."""
        return self.arrays().total_burst()

    def max_burst(self) -> float:
        """Largest single burst ``b_i`` (bits); 0 for an empty set."""
        return self.arrays().max_burst()

    def class_deadlines(self) -> dict[PriorityClass, float | None]:
        """Binding (smallest) deadline of every class present in the set."""
        return self.arrays().class_deadlines()

    def utilization(self, capacity: float) -> float:
        """Aggregate long-term utilization of a link of ``capacity`` bps."""
        if capacity <= 0:
            raise InvalidWorkloadError(
                f"capacity must be positive, got {capacity!r}")
        return self.total_rate() / capacity

    def smallest_period(self) -> float:
        """The smallest period / inter-arrival in the set.

        Raises
        ------
        InvalidWorkloadError
            If the set is empty.
        """
        if not self._messages:
            raise InvalidWorkloadError("empty message set has no period")
        return min(m.period for m in self)

    def largest_period(self) -> float:
        """The largest period / inter-arrival in the set."""
        if not self._messages:
            raise InvalidWorkloadError("empty message set has no period")
        return max(m.period for m in self)

    def summary(self) -> dict[str, float | int]:
        """A dictionary of headline figures used by the reports."""
        by_priority = self.by_priority()
        return {
            "messages": len(self),
            "periodic": len(self.periodic()),
            "sporadic": len(self.sporadic()),
            "stations": len(self.stations()),
            "total_rate_bps": self.total_rate(),
            "total_burst_bits": self.total_burst(),
            **{f"class_{cls.value}": len(msgs)
               for cls, msgs in by_priority.items()},
        }


class ReplicatedMessageSet(MessageSet):
    """A ``k``-fold station replication of a base set, materialised lazily.

    Replica ``j > 0`` gets its own stations and message names (suffix
    ``-rj``), exactly like the eager replication the sweeps module used to
    build — but the copies are only created when a consumer iterates or
    indexes the set (the 1553B schedule builder does; the Ethernet analytic
    path does not).  Until then:

    * ``len``, :meth:`total_rate`, :meth:`total_burst`, :meth:`max_burst`
      and :meth:`class_deadlines` are derived arithmetically from the base,
    * :attr:`arithmetic_replication` advertises ``(base, k)`` so flow
      aggregation can scale the base's per-class sums instead of walking
      ``k`` copies of every message.

    Materialisation snapshots the base: from that point on the replica is
    self-contained (the arithmetic shortcuts are dropped so every quantity
    is derived from the frozen copy, never from a base that may have
    mutated since), and :meth:`add` works like on a plain
    :class:`MessageSet` holding the replicated messages.
    """

    def __init__(self, base: MessageSet, replication: int,
                 name: str | None = None) -> None:
        if replication < 1:
            raise InvalidWorkloadError(
                f"replication must be at least 1, got {replication!r}")
        self.name = name or f"{base.name}-r{replication}"
        self.base = base
        self.replication = int(replication)
        self._materialized: dict[str, Message] | None = None
        self._arrays = None
        self._version = 0

    # -- lazy materialisation --------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; base-set mutations count until materialisation."""
        if self._materialized is None:
            return self._version + self.base.version
        return self._version

    @property
    def _messages(self) -> dict[str, Message]:
        if self._materialized is None:
            materialized: dict[str, Message] = {}
            for replica in range(self.replication):
                suffix = "" if replica == 0 else f"-r{replica}"
                for message in self.base:
                    replicated = Message(
                        name=f"{message.name}{suffix}",
                        kind=message.kind,
                        period=message.period,
                        size=message.size,
                        source=f"{message.source}{suffix}",
                        destination=f"{message.destination}{suffix}",
                        deadline=message.deadline,
                        metadata=dict(message.metadata))
                    if replicated.name in materialized:
                        # Same duplicate guard eager replication had (via
                        # MessageSet.add), e.g. a base already containing
                        # replica-suffixed names.
                        raise InvalidWorkloadError(
                            f"duplicate message name {replicated.name!r} "
                            f"in set {self.name!r}")
                    materialized[replicated.name] = replicated
            self._materialized = materialized
            # Freeze the inherited version component: base mutations no
            # longer reach the materialised copy, and the counter must not
            # jump backwards to a previously observed value.
            self._version += self.base.version
        return self._materialized

    @property
    def is_materialized(self) -> bool:
        """True once the replicas have actually been built."""
        return self._materialized is not None

    def add(self, message: Message) -> None:
        """Add a message; materialises the replicas first."""
        self._messages  # force materialisation before departing from k x base
        super().add(message)

    # -- arithmetic shortcuts --------------------------------------------------
    # Only valid while unmaterialised: once the replicas are snapshot, the
    # base may mutate independently, so every quantity must come from the
    # frozen copy to stay consistent with iteration and the version counter.

    @property
    def arithmetic_replication(self) -> "tuple[MessageSet, int] | None":
        """``(base, k)`` while unmaterialised; ``None`` after a snapshot."""
        if self._materialized is not None:
            return None
        return (self.base, self.replication)

    def __len__(self) -> int:
        if self._materialized is not None:
            return len(self._messages)
        return len(self.base) * self.replication

    def total_rate(self) -> float:
        """Sum of the token-bucket rates: ``k`` times the base's sum."""
        if self._materialized is not None:
            return super().total_rate()
        return self.base.total_rate() * self.replication

    def total_burst(self) -> float:
        """Sum of the token-bucket bursts: ``k`` times the base's sum."""
        if self._materialized is not None:
            return super().total_burst()
        return self.base.total_burst() * self.replication

    def max_burst(self) -> float:
        """Replicating flows never changes the largest individual burst."""
        if self._materialized is not None:
            return super().max_burst()
        return self.base.max_burst()

    def class_deadlines(self) -> dict[PriorityClass, float | None]:
        """Deadlines are copied verbatim to every replica."""
        if self._materialized is not None:
            return super().class_deadlines()
        return self.base.class_deadlines()
