"""Message sets: validated collections of messages with useful views.

A :class:`MessageSet` is the unit the evaluation harness works with: the
synthetic "real case" workload is a message set, the 1553B schedule builder
consumes a message set, and the Ethernet analysis groups a message set by
source station and by priority class.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator

from repro.errors import InvalidWorkloadError
from repro.flows.messages import Message, MessageKind
from repro.flows.priorities import PriorityClass, assign_priority

__all__ = ["MessageSet"]


class MessageSet:
    """An ordered, name-indexed collection of messages.

    Parameters
    ----------
    messages:
        The messages to include.  Names must be unique.
    name:
        Optional label for reports.

    Raises
    ------
    InvalidWorkloadError
        If two messages share a name.
    """

    def __init__(self, messages: Iterable[Message] = (),
                 name: str = "message-set") -> None:
        self.name = name
        self._messages: dict[str, Message] = {}
        for message in messages:
            self.add(message)

    # -- collection protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages.values())

    def __contains__(self, name: str) -> bool:
        return name in self._messages

    def __getitem__(self, name: str) -> Message:
        return self._messages[name]

    def add(self, message: Message) -> None:
        """Add a message; its name must not already be present."""
        if message.name in self._messages:
            raise InvalidWorkloadError(
                f"duplicate message name {message.name!r} in set {self.name!r}")
        self._messages[message.name] = message

    def extend(self, messages: Iterable[Message]) -> None:
        """Add several messages."""
        for message in messages:
            self.add(message)

    @property
    def messages(self) -> list[Message]:
        """All messages, in insertion order."""
        return list(self._messages.values())

    # -- views ----------------------------------------------------------------

    def periodic(self) -> list[Message]:
        """The periodic messages."""
        return [m for m in self if m.kind is MessageKind.PERIODIC]

    def sporadic(self) -> list[Message]:
        """The sporadic messages."""
        return [m for m in self if m.kind is MessageKind.SPORADIC]

    def by_source(self) -> dict[str, list[Message]]:
        """Messages grouped by emitting station."""
        grouped: dict[str, list[Message]] = defaultdict(list)
        for message in self:
            grouped[message.source].append(message)
        return dict(grouped)

    def by_destination(self) -> dict[str, list[Message]]:
        """Messages grouped by receiving station."""
        grouped: dict[str, list[Message]] = defaultdict(list)
        for message in self:
            grouped[message.destination].append(message)
        return dict(grouped)

    def by_priority(self) -> dict[PriorityClass, list[Message]]:
        """Messages grouped by the paper's priority classes.

        Every class is present in the result, possibly with an empty list,
        so callers can iterate over all four classes unconditionally.
        """
        grouped: dict[PriorityClass, list[Message]] = {
            cls: [] for cls in PriorityClass}
        for message in self:
            grouped[assign_priority(message)].append(message)
        return grouped

    def filter(self, predicate: Callable[[Message], bool],
               name: str | None = None) -> "MessageSet":
        """A new message set containing the messages matching ``predicate``."""
        return MessageSet((m for m in self if predicate(m)),
                          name=name or f"{self.name}-filtered")

    def from_station(self, station: str) -> "MessageSet":
        """The messages emitted by ``station``."""
        return self.filter(lambda m: m.source == station,
                           name=f"{self.name}@{station}")

    def sources(self) -> list[str]:
        """Sorted list of all emitting stations."""
        return sorted({m.source for m in self})

    def destinations(self) -> list[str]:
        """Sorted list of all receiving stations."""
        return sorted({m.destination for m in self})

    def stations(self) -> list[str]:
        """Sorted list of every station that emits or receives."""
        return sorted({m.source for m in self} | {m.destination for m in self})

    # -- aggregate quantities --------------------------------------------------

    def total_rate(self) -> float:
        """Sum of the token-bucket rates ``r_i`` (bits per second)."""
        return sum(m.rate for m in self)

    def total_burst(self) -> float:
        """Sum of the token-bucket bursts ``b_i`` (bits)."""
        return sum(m.burst for m in self)

    def max_burst(self) -> float:
        """Largest single burst ``b_i`` (bits); 0 for an empty set."""
        return max((m.burst for m in self), default=0.0)

    def utilization(self, capacity: float) -> float:
        """Aggregate long-term utilization of a link of ``capacity`` bps."""
        if capacity <= 0:
            raise InvalidWorkloadError(
                f"capacity must be positive, got {capacity!r}")
        return self.total_rate() / capacity

    def smallest_period(self) -> float:
        """The smallest period / inter-arrival in the set.

        Raises
        ------
        InvalidWorkloadError
            If the set is empty.
        """
        if not self._messages:
            raise InvalidWorkloadError("empty message set has no period")
        return min(m.period for m in self)

    def largest_period(self) -> float:
        """The largest period / inter-arrival in the set."""
        if not self._messages:
            raise InvalidWorkloadError("empty message set has no period")
        return max(m.period for m in self)

    def summary(self) -> dict[str, float | int]:
        """A dictionary of headline figures used by the reports."""
        by_priority = self.by_priority()
        return {
            "messages": len(self),
            "periodic": len(self.periodic()),
            "sporadic": len(self.sporadic()),
            "stations": len(self.stations()),
            "total_rate_bps": self.total_rate(),
            "total_burst_bits": self.total_burst(),
            **{f"class_{cls.value}": len(msgs)
               for cls, msgs in by_priority.items()},
        }
