"""Priority classes and the paper's priority-assignment policy.

The paper (Section 2) maps every message onto one of four IEEE 802.1p
priority classes handled by a strict-priority multiplexer with four queues:

* **priority 0** — urgent sporadic messages with a requested maximal response
  time of 3 ms,
* **priority 1** — periodic messages,
* **priority 2** — sporadic messages with a requested maximal response time
  between 20 ms and 160 ms,
* **priority 3** — sporadic messages with a maximal response time larger
  than 160 ms.

Priority 0 is the most urgent (served first); larger numeric values are less
urgent, exactly as in the paper's `D_p` formula where the sums range over
``q <= p`` (equal or higher priority) and ``q > p`` (lower priority).
"""

from __future__ import annotations

import enum

from repro import units
from repro.flows.messages import Message, MessageKind

__all__ = [
    "PriorityClass",
    "assign_priority",
    "DEADLINE_URGENT",
    "PERIOD_MINOR_FRAME",
    "PERIOD_MAJOR_FRAME",
]

#: Maximal response time of the urgent sporadic class (3 ms).
DEADLINE_URGENT = units.ms(3)
#: The 1553B minor frame (20 ms) — also the smallest message period.
PERIOD_MINOR_FRAME = units.ms(20)
#: The 1553B major frame (160 ms) — also the biggest message period.
PERIOD_MAJOR_FRAME = units.ms(160)


class PriorityClass(enum.IntEnum):
    """The four 802.1p classes used by the paper (0 = most urgent)."""

    URGENT = 0
    PERIODIC = 1
    SPORADIC = 2
    BACKGROUND = 3

    @property
    def label(self) -> str:
        """Human-readable label used in reports and figures."""
        return _LABELS[self]

    def is_higher_or_equal(self, other: "PriorityClass") -> bool:
        """True when this class is served no later than ``other``.

        Numerically smaller values are more urgent.
        """
        return self.value <= other.value


_LABELS = {
    PriorityClass.URGENT: "P0 urgent sporadic (3 ms)",
    PriorityClass.PERIODIC: "P1 periodic",
    PriorityClass.SPORADIC: "P2 sporadic (20-160 ms)",
    PriorityClass.BACKGROUND: "P3 sporadic (> 160 ms)",
}


def assign_priority(message: Message) -> PriorityClass:
    """Assign the paper's 802.1p priority class to a message.

    The rules are exactly those of Section 2 of the paper:

    * periodic messages get priority 1,
    * sporadic messages with a deadline of at most 3 ms get priority 0,
    * sporadic messages with a deadline in (3 ms, 160 ms] get priority 2,
    * sporadic messages with a deadline above 160 ms (or no deadline at all)
      get priority 3.

    Parameters
    ----------
    message:
        The message to classify.  Its :attr:`~Message.deadline` may be
        ``None`` for best-effort sporadic traffic.
    """
    if message.kind is MessageKind.PERIODIC:
        return PriorityClass.PERIODIC
    deadline = message.deadline
    if deadline is None:
        return PriorityClass.BACKGROUND
    if deadline <= DEADLINE_URGENT:
        return PriorityClass.URGENT
    if deadline <= PERIOD_MAJOR_FRAME:
        return PriorityClass.SPORADIC
    return PriorityClass.BACKGROUND
