"""Message and flow model.

The paper characterises the avionics traffic as a set of *messages*:

* **periodic** messages ``(T_i, b_i)`` where ``T_i`` is the transfer period
  and ``b_i`` the message length,
* **sporadic** messages ``(T_j, b_j)`` where ``T_j`` is the minimal
  inter-arrival time between two consecutive instances and ``b_j`` the
  length; at most one sporadic message of each type is generated per station
  per 20 ms minor frame.

Each message carries a real-time constraint (maximal response time) and is
mapped to one of the four 802.1p priority classes the paper defines.  A
*flow* is a message routed from its source station to a destination through
the switched network.

Public API
----------
* :class:`Message`, :class:`MessageKind` — the traffic characterisation,
* :class:`PriorityClass`, :func:`assign_priority` — the paper's class policy,
* :class:`Flow` — a routed message,
* :class:`MessageSet` — a validated collection with per-station /
  per-priority views and utilization accounting,
* :class:`ReplicatedMessageSet` — lazy ``k``-fold station replication with
  arithmetic aggregate shortcuts (the scalability ladder's workhorse),
* :class:`MessageArrays` — struct-of-arrays numeric view consumed by the
  vectorised analytic paths (:func:`sequential_sum` is its bit-exact
  reduction helper),
* :class:`VirtualLink` — AFDX-style (BAG, s_max) description of a shaped
  flow, convertible to a token bucket.
"""

from repro.flows.messages import Message, MessageKind
from repro.flows.priorities import (
    DEADLINE_URGENT,
    PERIOD_MAJOR_FRAME,
    PERIOD_MINOR_FRAME,
    PriorityClass,
    assign_priority,
)
from repro.flows.arrays import MessageArrays, sequential_sum
from repro.flows.flow import Flow
from repro.flows.message_set import MessageSet, ReplicatedMessageSet
from repro.flows.virtual_link import VirtualLink

__all__ = [
    "Message",
    "MessageKind",
    "PriorityClass",
    "assign_priority",
    "DEADLINE_URGENT",
    "PERIOD_MINOR_FRAME",
    "PERIOD_MAJOR_FRAME",
    "Flow",
    "MessageSet",
    "ReplicatedMessageSet",
    "MessageArrays",
    "sequential_sum",
    "VirtualLink",
]
