"""Flows: messages routed through the switched network.

A :class:`Flow` binds a :class:`~repro.flows.messages.Message` to the
sequence of network elements it traverses (source station egress port, one or
more switch output ports, destination station).  The end-to-end analysis in
:mod:`repro.core.endtoend` walks this path and accumulates the per-hop delay
bounds; the Ethernet simulator uses the same path to forward frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import InvalidFlowError
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass, assign_priority

__all__ = ["Flow"]


@dataclass(frozen=True)
class Flow:
    """A message routed from its source to its destination.

    Attributes
    ----------
    message:
        The traffic characterisation ``(T, b)`` plus deadline.
    priority:
        The 802.1p class used when the network runs the strict-priority
        multiplexer.  Defaults to the paper's assignment policy.
    path:
        Ordered list of node names the flow traverses, starting with the
        source station and ending with the destination station, e.g.
        ``["station-3", "switch-0", "station-7"]``.  May be empty until the
        routing step fills it in.
    metadata:
        Free-form annotations.
    """

    message: Message
    priority: PriorityClass = None  # type: ignore[assignment]
    path: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.priority is None:
            object.__setattr__(self, "priority", assign_priority(self.message))
        if not isinstance(self.priority, PriorityClass):
            object.__setattr__(self, "priority",
                               PriorityClass(self.priority))
        if self.path:
            if self.path[0] != self.message.source:
                raise InvalidFlowError(
                    f"flow {self.name!r}: path starts at {self.path[0]!r}, "
                    f"expected source {self.message.source!r}")
            if self.path[-1] != self.message.destination:
                raise InvalidFlowError(
                    f"flow {self.name!r}: path ends at {self.path[-1]!r}, "
                    f"expected destination {self.message.destination!r}")
            if len(self.path) < 2:
                raise InvalidFlowError(
                    f"flow {self.name!r}: a path needs at least two nodes")

    # -- proxies to the message ---------------------------------------------

    @property
    def name(self) -> str:
        """The flow is named after its message."""
        return self.message.name

    @property
    def source(self) -> str:
        """Source station name."""
        return self.message.source

    @property
    def destination(self) -> str:
        """Destination station name."""
        return self.message.destination

    @property
    def burst(self) -> float:
        """Token-bucket burst ``b`` (bits)."""
        return self.message.burst

    @property
    def rate(self) -> float:
        """Token-bucket rate ``r = b / T`` (bits per second)."""
        return self.message.rate

    @property
    def deadline(self) -> float | None:
        """Requested maximal response time (seconds), if any."""
        return self.message.deadline

    # -- routing -------------------------------------------------------------

    def with_path(self, path: list[str] | tuple[str, ...]) -> "Flow":
        """Return a copy of this flow with its route filled in."""
        return Flow(message=self.message, priority=self.priority,
                    path=tuple(path), metadata=dict(self.metadata))

    def hops(self) -> list[tuple[str, str]]:
        """The (upstream, downstream) node pairs along the path."""
        if len(self.path) < 2:
            return []
        return list(zip(self.path[:-1], self.path[1:]))

    def switches(self) -> list[str]:
        """Names of the intermediate nodes (everything but the endpoints)."""
        return list(self.path[1:-1])
