"""Struct-of-arrays view of a message population.

The analytic paths (flow aggregation, the closed-form multiplexer bounds,
the scalability sweep) only need the numeric columns of a message set —
periods, sizes, token-bucket bursts and rates, priority classes, deadlines.
:class:`MessageArrays` exposes exactly those columns as numpy arrays so the
hot loops become vectorised reductions instead of per-message Python
iterations.  A :class:`~repro.flows.message_set.MessageSet` builds its view
lazily (:meth:`MessageSet.arrays`) and invalidates it on mutation.

Numerical contract: every reduction used for bound computation goes through
:func:`sequential_sum`, a left-to-right accumulation that is bit-identical
to Python's builtin ``sum`` over the same values — so the array backend
reproduces the per-message reference loops exactly, not merely
approximately.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass, assign_priority

__all__ = ["MessageArrays", "sequential_sum"]


def sequential_sum(values: np.ndarray | Iterable[float]) -> float:
    """Left-to-right float sum, bit-identical to ``sum()`` over the values.

    ``np.add.accumulate`` applies the ufunc sequentially (unlike ``np.sum``,
    which sums pairwise and may differ in the last ulp), so the result
    matches the Python reference loops the analytic formulas were validated
    against.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0
    return float(np.add.accumulate(array)[-1])


class MessageArrays:
    """Numeric columns of a message population, in insertion order.

    Attributes
    ----------
    names:
        Message names (tuple of str, aligned with every column).
    periods / sizes:
        Period ``T_i`` (seconds) and length ``b_i`` (bits) per message.
    rates:
        Token-bucket rates ``r_i = b_i / T_i`` (bits per second).
    deadlines:
        Deadlines in seconds; ``NaN`` encodes "no deadline".
    priorities:
        802.1p class codes (:class:`PriorityClass` values) per message;
        under the paper's policy ``priorities == PriorityClass.PERIODIC``
        is also the periodic-message mask.
    """

    __slots__ = ("names", "periods", "sizes", "rates", "deadlines",
                 "priorities")

    def __init__(self, messages: Iterable[Message]) -> None:
        population = list(messages)
        self.names: tuple[str, ...] = tuple(m.name for m in population)
        self.periods = np.array([m.period for m in population], dtype=float)
        self.sizes = np.array([m.size for m in population], dtype=float)
        # Elementwise division is the same IEEE operation as Message.rate
        # (periods are validated positive at message construction).
        self.rates = self.sizes / self.periods
        self.deadlines = np.array(
            [np.nan if m.deadline is None else m.deadline
             for m in population], dtype=float)
        self.priorities = np.array(
            [assign_priority(m).value for m in population], dtype=np.int8)

    def __len__(self) -> int:
        return len(self.names)

    # -- views ----------------------------------------------------------------

    @property
    def bursts(self) -> np.ndarray:
        """Token-bucket bursts ``b_i`` (bits) — the message sizes."""
        return self.sizes

    def class_mask(self, priority: PriorityClass) -> np.ndarray:
        """Boolean mask selecting the messages of one priority class."""
        return self.priorities == PriorityClass(priority).value

    def present_classes(self) -> list[PriorityClass]:
        """The priority classes with at least one message, most urgent first."""
        present = np.unique(self.priorities)
        return [PriorityClass(int(code)) for code in present]

    # -- aggregate quantities --------------------------------------------------

    def total_rate(self) -> float:
        """Sum of the token-bucket rates ``r_i`` (bits per second)."""
        return sequential_sum(self.rates)

    def total_burst(self) -> float:
        """Sum of the token-bucket bursts ``b_i`` (bits)."""
        return sequential_sum(self.sizes)

    def max_burst(self) -> float:
        """Largest single burst ``b_i`` (bits); 0 for an empty population."""
        return float(self.sizes.max()) if len(self) else 0.0

    def class_deadlines(self) -> dict[PriorityClass, float | None]:
        """Binding (smallest) deadline of every class present.

        Classes whose messages carry no deadline at all map to ``None``,
        matching the per-message reference scan.
        """
        deadlines: dict[PriorityClass, float | None] = {}
        for cls in self.present_classes():
            values = self.deadlines[self.class_mask(cls)]
            finite = values[~np.isnan(values)]
            deadlines[cls] = float(finite.min()) if finite.size else None
        return deadlines
