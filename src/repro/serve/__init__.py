"""The admission-control query service (``repro serve``).

The paper's core question — *do all flows meet their deadlines on this
network?* — is exactly an admission-control query, and this package
turns the analysis into a long-lived query engine:

* :class:`~repro.serve.engine.AdmissionEngine` — the incremental
  analysis core.  Admitting or removing one flow re-derives only the
  per-class aggregates it touches; the resulting bounds are
  **bit-identical** to a from-scratch recompute (a property the engine
  can assert about itself via :meth:`~repro.serve.engine.
  AdmissionEngine.verify`).
* :class:`~repro.serve.journal.AdmissionJournal` — crash safety: an
  append-only admission journal plus atomic ``os.replace`` checkpoints,
  so a SIGKILL mid-stream recovers to a byte-identical flow table.
* :class:`~repro.serve.server.AdmissionServer` — the HTTP/JSON front
  end with per-request deadline budgets (degrading to the last
  committed bound instead of hanging), a bounded admission queue with
  load shedding (503 + ``Retry-After``) and a graceful SIGTERM drain.
* :class:`~repro.serve.client.ServeClient` — a stdlib client used by
  the tests, the benchmarks and the CI smoke storm.

See DESIGN.md §14 and the ``repro serve`` section of README.md.
"""

from repro.serve.client import ServeClient
from repro.serve.engine import (
    AdmissionDecision,
    AdmissionEngine,
    EngineSnapshot,
    message_from_payload,
    message_to_payload,
)
from repro.serve.journal import AdmissionJournal, JournalState
from repro.serve.server import AdmissionServer, ServeConfig

__all__ = [
    "AdmissionDecision",
    "AdmissionEngine",
    "AdmissionJournal",
    "AdmissionServer",
    "EngineSnapshot",
    "JournalState",
    "ServeClient",
    "ServeConfig",
    "message_from_payload",
    "message_to_payload",
]
