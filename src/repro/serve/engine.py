"""The incremental admission-control analysis core.

An :class:`AdmissionEngine` holds a *flow table* — an insertion-ordered
population of :class:`~repro.flows.messages.Message` streams — over one
campaign :class:`~repro.campaigns.scenario.Scenario`, and answers the
admission-control question: *can this flow be added without breaking
any deadline?*

**Incrementality.**  For the single-multiplexer topologies (star,
dual-switch, tree) the closed-form bounds only depend on the per-class
:class:`~repro.core.multiplexer.ClassAggregate` sufficient statistics.
Admitting a flow appends it to its class and derives the class's new
aggregate in O(1) — ``burst + b``, ``rate + r``, ``max(max_burst, b)``,
``count + 1`` — which is **bit-identical** to re-aggregating the member
list left-to-right, because floating-point addition at the end of the
sequence is exactly what the from-scratch ``aggregate_flows`` loop
would do.  Removing a flow re-aggregates *only the touched class* (a
mid-sequence subtraction would not be bit-identical, so the engine
never subtracts).  Every other class keeps its committed aggregate
untouched, and the per-class closed forms are re-evaluated in
O(classes).

**Fallback.**  Multi-hop ``"graph"`` scenarios couple every flow
sharing a port through the burst-propagation fixed point, so the
per-class-aggregate invariant cannot be preserved across a mutation;
the engine falls back to a full
:class:`~repro.analysis.multihop.GraphPathAnalysis` recompute (reusing
the scenario's routing engine, whose per-destination Dijkstra caches
persist across mutations).  Incremental and fallback paths are
indistinguishable to callers — both commit a snapshot that equals the
from-scratch answer byte for byte.

**Caching.**  With a result store attached, every committed snapshot is
content-addressed by the (scenario, policy, flow-table) fingerprint, so
a restarted server — or another worker sharing the store — warm-hits
bounds it has seen before instead of recomputing them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaigns.scenario import Scenario
from repro.core.multiplexer import (
    ClassAggregate,
    aggregate_flows,
    compute_arrival_curve,
    compute_class_bounds,
    compute_service_curve,
)
from repro.core.netcalc.bounds import backlog_bound
from repro.errors import ConfigurationError, UnstableSystemError
from repro.flows.messages import Message, MessageKind
from repro.flows.priorities import PriorityClass, assign_priority
from repro.store.fingerprint import fingerprint

__all__ = ["AdmissionEngine", "AdmissionDecision", "EngineSnapshot",
           "ClassBound", "message_to_payload", "message_from_payload"]


# ---------------------------------------------------------------------------
# Message <-> JSON payloads (the wire and journal format of one flow)
# ---------------------------------------------------------------------------

def message_to_payload(message: Message) -> dict:
    """One flow as the JSON object used on the wire and in the journal.

    Numeric fields are canonicalised to ``float`` so a payload that
    round-tripped through JSON fingerprints identically to one taken
    from a freshly built workload (whose sizes may be ``int``).
    """
    return {"name": message.name,
            "kind": message.kind.value,
            "period": float(message.period),
            "size": float(message.size),
            "source": message.source,
            "destination": message.destination,
            "deadline": (None if message.deadline is None
                         else float(message.deadline))}


def message_from_payload(payload: dict) -> Message:
    """Parse one flow payload, validating field names and values.

    Raises :class:`~repro.errors.ConfigurationError` on unknown or
    missing fields so the server can answer a 400 instead of crashing a
    worker; value-level validation is the :class:`Message` contract.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"a flow must be a JSON object, got {type(payload).__name__}")
    allowed = {"name", "kind", "period", "size", "source", "destination",
               "deadline"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown flow field(s) {unknown}; allowed: {sorted(allowed)}")
    missing = sorted({"name", "period", "size", "source", "destination"}
                     - set(payload))
    if missing:
        raise ConfigurationError(f"flow is missing field(s) {missing}")
    try:
        kind = MessageKind(payload.get("kind", "sporadic"))
    except ValueError:
        raise ConfigurationError(
            f"flow kind must be 'periodic' or 'sporadic', "
            f"got {payload.get('kind')!r}") from None
    try:
        return Message(name=str(payload["name"]), kind=kind,
                       period=float(payload["period"]),
                       size=float(payload["size"]),
                       source=str(payload["source"]),
                       destination=str(payload["destination"]),
                       deadline=(None if payload.get("deadline") is None
                                 else float(payload["deadline"])))
    except (TypeError, ValueError) as error:
        raise ConfigurationError(f"bad flow payload: {error}") from None


# ---------------------------------------------------------------------------
# Snapshots and decisions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClassBound:
    """One class's committed bound inside an :class:`EngineSnapshot`."""

    priority: PriorityClass
    #: Flows of the class currently in the table.
    count: int
    #: Binding (smallest) deadline of the class, or ``None``.
    deadline: float | None
    #: End-to-end worst-case delay bound (seconds, ``inf`` if unstable).
    bound: float
    #: Aggregate backlog bound at the analysis point (bits).
    backlog_bits: float
    #: False when the bound is not a valid worst case (overload).
    stable: bool

    @property
    def ok(self) -> bool:
        """Stable and within the class deadline (if it has one)."""
        return self.stable and (self.deadline is None
                                or self.bound <= self.deadline)

    def to_payload(self) -> dict:
        """The JSON object served to clients."""
        return {"class": self.priority.name, "count": self.count,
                "deadline": self.deadline, "bound": self.bound,
                "backlog_bits": self.backlog_bits, "stable": self.stable,
                "ok": self.ok}


@dataclass(frozen=True)
class EngineSnapshot:
    """The committed answer after one mutation (or the initial load)."""

    #: Per-class bounds, most-urgent first.
    classes: tuple[ClassBound, ...]
    #: Number of flows in the table.
    flow_count: int
    #: The policy the bounds were computed under.
    policy: str
    #: ``True`` when every class with a deadline is stable and meets it.
    feasible: bool
    #: Content fingerprint of the flow table (order-sensitive).
    state_fingerprint: str
    #: ``"incremental"`` or ``"recompute"`` — which path produced it.
    mode: str

    def to_payload(self) -> dict:
        """The JSON object served to clients (and fingerprinted)."""
        return {"classes": [bound.to_payload() for bound in self.classes],
                "flow_count": self.flow_count,
                "policy": self.policy,
                "feasible": self.feasible,
                "state_fingerprint": self.state_fingerprint,
                "mode": self.mode}

    def bounds_fingerprint(self) -> str:
        """Content fingerprint of the bounds themselves."""
        payload = self.to_payload()
        payload.pop("mode")  # identical bounds, whichever path derived them
        return fingerprint(payload)

    def violations(self) -> list[str]:
        """One human line per class missing its deadline (or unstable)."""
        problems = []
        for bound in self.classes:
            if bound.ok:
                continue
            if not bound.stable:
                problems.append(f"class {bound.priority.name} is unstable "
                                f"(no finite bound)")
            else:
                problems.append(
                    f"class {bound.priority.name} bound "
                    f"{bound.bound * 1e3:.3f} ms exceeds its deadline "
                    f"{bound.deadline * 1e3:.3f} ms")
        return problems


@dataclass(frozen=True)
class AdmissionDecision:
    """The engine's answer to one ``admit``/``remove``/``check`` query."""

    #: ``"admit"``, ``"remove"`` or ``"check"``.
    operation: str
    #: True when the mutation was applied (always True for ``check``).
    applied: bool
    #: Name of the flow the query was about (``None`` for bare checks).
    flow: str | None
    #: The bounds the decision rests on: the committed snapshot after an
    #: applied mutation, the hypothetical snapshot for a rejected admit
    #: or a what-if check.
    snapshot: EngineSnapshot
    #: Why a mutation was rejected (deadline misses, duplicate name...).
    reasons: tuple[str, ...] = ()

    def to_payload(self) -> dict:
        """The JSON object served to clients."""
        return {"operation": self.operation, "applied": self.applied,
                "flow": self.flow, "reasons": list(self.reasons),
                "snapshot": self.snapshot.to_payload()}


# ---------------------------------------------------------------------------
# Per-class committed state
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ClassState:
    """Committed sufficient statistics of one priority class."""

    aggregate: ClassAggregate
    #: Binding (smallest) deadline among the members, or ``None``.
    deadline: float | None
    #: Member flow names, in table insertion order.
    members: tuple[str, ...] = ()


def _tighter(current: float | None, candidate: float | None) -> float | None:
    """The binding deadline after adding one more member."""
    if candidate is None:
        return current
    if current is None:
        return candidate
    return min(current, candidate)


def _class_state_of(messages: list[Message]) -> _ClassState:
    """Re-aggregate one class from its member list (the reference loop)."""
    burst = rate = max_burst = 0.0
    deadline: float | None = None
    names = []
    for message in messages:
        value = float(message.burst)
        burst += value
        rate += float(message.rate)
        max_burst = max(max_burst, value)
        deadline = _tighter(deadline, message.deadline)
        names.append(message.name)
    return _ClassState(
        aggregate=ClassAggregate(burst=burst, rate=rate,
                                 max_burst=max_burst, count=len(messages)),
        deadline=deadline, members=tuple(names))


class AdmissionEngine:
    """The long-lived admission-control analysis over one scenario.

    Parameters
    ----------
    scenario:
        The loaded scenario: its workload is the initial flow table, its
        topology/capacity/technology delay parameterise the bounds.
    policy:
        The multiplexing policy admission is decided under; defaults to
        the scenario's first policy.
    store:
        Optional :class:`~repro.store.ResultStore` used as a warm
        cross-worker bound cache.
    preload:
        ``False`` starts with an empty flow table (the journal-recovery
        path re-admits the journaled flows instead).
    """

    def __init__(self, scenario: Scenario, policy: str | None = None,
                 store=None, *, preload: bool = True) -> None:
        policy = policy if policy is not None else scenario.policies[0]
        if policy not in scenario.policies:
            raise ConfigurationError(
                f"policy {policy!r} is not one of the scenario's "
                f"policies {scenario.policies}")
        if scenario.workload.replication != 1 and preload:
            raise ConfigurationError(
                "the admission engine mutates individual flows and does "
                "not support lazily replicated workloads; use "
                "replication=1")
        self.scenario = scenario
        self.policy = policy
        self.store = store
        self._flows: dict[str, Message] = {}
        self._classes: dict[PriorityClass, _ClassState] = {}
        self._graph_spec = None
        self._graph_analysis = None
        #: Mutations served by the incremental path since construction.
        self.incremental_hits = 0
        #: Mutations that fell back to a full recompute.
        self.full_recomputes = 0
        if scenario.topology.kind == "graph":
            from repro.analysis.multihop import GraphPathAnalysis
            self._graph_spec = scenario.topology.build_graph(
                scenario.workload.total_stations, scenario.capacity,
                scenario.technology_delay)
            # One analysis instance for the engine's lifetime: its
            # routing engine's per-destination Dijkstra caches persist
            # across mutations, which is the incremental piece the
            # fixed-point fallback still reuses.
            self._graph_analysis = GraphPathAnalysis(self._graph_spec,
                                                     policy=self.policy)
        if preload:
            for message in scenario.workload.build().messages:
                self._apply_admit(message)
        self._snapshot = self._compute_snapshot(self._classes,
                                                mode="recompute")

    # -- introspection -----------------------------------------------------

    def flow_names(self) -> tuple[str, ...]:
        """The flow table's names, in insertion order."""
        return tuple(self._flows)

    def flow_payloads(self) -> list[dict]:
        """The flow table as JSON payloads, in insertion order."""
        return [message_to_payload(message)
                for message in self._flows.values()]

    def flow_payload(self, name: str) -> dict:
        """One admitted flow as its JSON payload (KeyError if absent)."""
        return message_to_payload(self._flows[name])

    def state_fingerprint(self) -> str:
        """Content fingerprint of (scenario, policy, flow table)."""
        return self._state_fingerprint(list(self._flows.values()))

    def _state_fingerprint(self, messages: list[Message]) -> str:
        return fingerprint({
            "scenario": self.scenario,
            "policy": self.policy,
            "flows": [message_to_payload(message) for message in messages]})

    def snapshot(self) -> EngineSnapshot:
        """The committed snapshot (the last committed cached bound)."""
        return self._snapshot

    # -- queries -----------------------------------------------------------

    def check(self, payload: dict | None = None) -> AdmissionDecision:
        """The committed bounds; with a flow payload, the what-if bounds.

        A what-if check runs the same tentative derivation as
        :meth:`admit` but never commits, whatever the outcome.
        """
        if payload is None:
            return AdmissionDecision(operation="check", applied=True,
                                     flow=None, snapshot=self._snapshot)
        message = message_from_payload(payload)
        if message.name in self._flows:
            return AdmissionDecision(
                operation="check", applied=True, flow=message.name,
                snapshot=self._snapshot,
                reasons=(f"flow {message.name!r} is already admitted",))
        tentative, snapshot = self._tentative_admit(message)
        del tentative
        return AdmissionDecision(
            operation="check", applied=True, flow=message.name,
            snapshot=snapshot, reasons=tuple(snapshot.violations()))

    def admit(self, payload: dict, *, force: bool = False
              ) -> AdmissionDecision:
        """Admit one flow iff every deadline still holds afterwards.

        The tentative bounds are derived incrementally (or via the graph
        fallback), compared against every class deadline, and committed
        only on success — a rejected admit leaves the committed state
        untouched.  ``force=True`` commits regardless (operator
        override); the decision still reports the violations.
        """
        message = message_from_payload(payload)
        if message.name in self._flows:
            return AdmissionDecision(
                operation="admit", applied=False, flow=message.name,
                snapshot=self._snapshot,
                reasons=(f"flow {message.name!r} is already admitted",))
        tentative, snapshot = self._tentative_admit(message)
        reasons = tuple(snapshot.violations())
        if reasons and not force:
            return AdmissionDecision(operation="admit", applied=False,
                                     flow=message.name, snapshot=snapshot,
                                     reasons=reasons)
        self._flows[message.name] = message
        self._classes = tentative
        self._snapshot = snapshot
        return AdmissionDecision(operation="admit", applied=True,
                                 flow=message.name, snapshot=snapshot,
                                 reasons=reasons)

    def remove(self, name: str) -> AdmissionDecision:
        """Remove one flow by name (always succeeds when present).

        Removing a flow can only shrink every other bound (burst sums
        and blocking terms shrink, residual rates grow), so removal
        needs no feasibility gate — but the touched class is
        re-aggregated from its remaining members, never derived by
        subtraction, to keep the committed aggregates bit-identical to
        a from-scratch pass.
        """
        message = self._flows.get(name)
        if message is None:
            return AdmissionDecision(
                operation="remove", applied=False, flow=name,
                snapshot=self._snapshot,
                reasons=(f"flow {name!r} is not admitted",))
        del self._flows[name]
        cls = assign_priority(message)
        classes = dict(self._classes)
        remaining = [self._flows[member]
                     for member in self._classes[cls].members
                     if member != name]
        if remaining:
            classes[cls] = _class_state_of(remaining)
        else:
            del classes[cls]
        self._classes = classes
        self._snapshot = self._compute_snapshot(
            classes, mode=self._mode())
        return AdmissionDecision(operation="remove", applied=True,
                                 flow=name, snapshot=self._snapshot)

    # -- the incremental derivation ---------------------------------------

    def _mode(self) -> str:
        return "recompute" if self._graph_analysis is not None \
            else "incremental"

    def _tentative_admit(self, message: Message
                         ) -> tuple[dict[PriorityClass, _ClassState],
                                    EngineSnapshot]:
        """The would-be class states and snapshot after admitting."""
        cls = assign_priority(message)
        classes = dict(self._classes)
        current = classes.get(cls)
        burst = float(message.burst)
        if current is None:
            classes[cls] = _ClassState(
                aggregate=ClassAggregate(burst=burst,
                                         rate=float(message.rate),
                                         max_burst=burst, count=1),
                deadline=message.deadline, members=(message.name,))
        else:
            # Appending at the end of the member sequence: the new sums
            # are exactly what the from-scratch left-to-right loop would
            # produce, so the aggregate stays bit-identical.
            aggregate = current.aggregate
            classes[cls] = _ClassState(
                aggregate=ClassAggregate(
                    burst=aggregate.burst + burst,
                    rate=aggregate.rate + float(message.rate),
                    max_burst=max(aggregate.max_burst, burst),
                    count=aggregate.count + 1),
                deadline=_tighter(current.deadline, message.deadline),
                members=current.members + (message.name,))
        snapshot = self._compute_snapshot(classes, mode=self._mode(),
                                          extra=message)
        return classes, snapshot

    # -- snapshot computation ----------------------------------------------

    def _compute_snapshot(self, classes: dict[PriorityClass, _ClassState],
                          *, mode: str,
                          extra: Message | None = None) -> EngineSnapshot:
        """Bounds for a (possibly tentative) class-state mapping.

        ``extra`` is the not-yet-committed flow of a tentative admit —
        the graph fallback needs the actual member list, the aggregate
        path only the statistics.
        """
        messages = list(self._flows.values())
        if extra is not None:
            messages.append(extra)
        state_digest = self._state_fingerprint(messages)
        if mode == "incremental":
            self.incremental_hits += 1
        else:
            self.full_recomputes += 1
        if self.store is None:
            return self._derive_snapshot(classes, messages, mode,
                                         state_digest)
        payload, _from_store = self.store.cached(
            "serve-snapshot", {"state": state_digest},
            lambda: self._derive_snapshot(classes, messages, mode,
                                          state_digest).to_payload(),
            subsystem="serve")
        return _snapshot_from_payload(payload, mode=mode)

    def _derive_snapshot(self, classes: dict[PriorityClass, _ClassState],
                         messages: list[Message], mode: str,
                         state_digest: str) -> EngineSnapshot:
        if self._graph_analysis is not None:
            bounds = self._graph_bounds(classes, messages)
        else:
            bounds = self._aggregate_bounds(classes)
        feasible = all(bound.ok for bound in bounds
                       if bound.deadline is not None) and \
            all(bound.stable for bound in bounds)
        return EngineSnapshot(classes=tuple(bounds),
                              flow_count=len(messages),
                              policy=self.policy,
                              feasible=feasible,
                              state_fingerprint=state_digest,
                              mode=mode)

    def _aggregate_bounds(self, classes: dict[PriorityClass, _ClassState]
                          ) -> list[ClassBound]:
        """The campaign runner's per-class row, from the aggregates."""
        scenario = self.scenario
        aggregates = {cls: state.aggregate
                      for cls, state in sorted(classes.items())}
        if not aggregates:
            return []
        bounds = compute_class_bounds(aggregates, scenario.capacity,
                                      scenario.technology_delay,
                                      self.policy)
        rows: list[ClassBound] = []
        for cls in sorted(bounds):
            mux_bound = bounds[cls]
            stable = (mux_bound is not None
                      and not mux_bound.details.get("unstable"))
            if not stable:
                bound = backlog = math.inf
            else:
                up_to = None if self.policy == "fcfs" else cls
                arrival = compute_arrival_curve(aggregates, up_to)
                service = compute_service_curve(
                    aggregates, scenario.capacity,
                    scenario.technology_delay, self.policy, up_to)
                bound = mux_bound.delay \
                    + (scenario.hops - 1) * service.latency
                try:
                    backlog = backlog_bound(arrival, service, strict=False)
                except UnstableSystemError:  # pragma: no cover
                    backlog = math.inf
            state = classes[cls]
            rows.append(ClassBound(
                priority=cls, count=state.aggregate.count,
                deadline=state.deadline, bound=bound,
                backlog_bits=backlog, stable=stable))
        return rows

    def _graph_bounds(self, classes: dict[PriorityClass, _ClassState],
                      messages: list[Message]) -> list[ClassBound]:
        """The multi-hop fallback: route and bound the full population."""
        from repro.errors import EmptyAggregateError

        if not messages:
            return []
        outcome = self._graph_analysis.analyze(messages)
        rows: list[ClassBound] = []
        for cls in sorted(classes):
            state = classes[cls]
            try:
                bound = outcome.class_delay(cls)
                backlog = outcome.class_backlog(cls)
            except EmptyAggregateError:  # pragma: no cover - defensive
                continue
            rows.append(ClassBound(
                priority=cls, count=state.aggregate.count,
                deadline=state.deadline, bound=bound,
                backlog_bits=backlog, stable=math.isfinite(bound)))
        return rows

    # -- journal-recovery entry points -------------------------------------

    def _apply_admit(self, message: Message) -> None:
        """Append one flow without recomputing bounds (bulk load)."""
        if message.name in self._flows:
            raise ConfigurationError(
                f"duplicate flow name {message.name!r} in the workload")
        cls = assign_priority(message)
        current = self._classes.get(cls)
        members = [] if current is None else \
            [self._flows[name] for name in current.members]
        members.append(message)
        self._flows[message.name] = message
        self._classes[cls] = _class_state_of(members)

    def replay(self, operations: list[dict]) -> None:
        """Re-apply journaled operations, then recompute the snapshot.

        Used by journal recovery: operations are applied without
        per-step bound derivations (the journal only ever records
        *committed* mutations, so re-deriving per step would repeat
        decisions already taken), and one snapshot recompute at the end
        restores the committed bounds byte-identically.
        """
        for operation in operations:
            if operation.get("op") == "admit":
                self._apply_admit(message_from_payload(operation["flow"]))
            elif operation.get("op") == "remove":
                name = operation.get("name")
                message = self._flows.pop(name, None)
                if message is None:
                    continue
                cls = assign_priority(message)
                remaining = [self._flows[member]
                             for member in self._classes[cls].members
                             if member != name]
                if remaining:
                    self._classes[cls] = _class_state_of(remaining)
                else:
                    del self._classes[cls]
            else:
                raise ConfigurationError(
                    f"unknown journal operation {operation.get('op')!r}")
        self._snapshot = self._compute_snapshot(self._classes,
                                                mode="recompute")

    # -- self-verification --------------------------------------------------

    def verify(self) -> bool:
        """Assert the committed state equals a from-scratch recompute.

        Re-aggregates the whole flow table with the reference
        :func:`~repro.core.multiplexer.aggregate_flows` loop and
        re-derives the snapshot; every committed aggregate and the
        committed bounds fingerprint must match **exactly** (bit
        identity, not tolerance).  Returns ``True`` on success and
        raises ``AssertionError`` otherwise — callers treat any failure
        as a bug, never a rounding artefact.
        """
        messages = list(self._flows.values())
        reference = aggregate_flows(messages) if messages else {}
        committed = {cls: state.aggregate
                     for cls, state in self._classes.items()}
        assert committed == reference, (
            f"incremental aggregates diverged from the reference: "
            f"{committed} != {reference}")
        fresh = self._derive_snapshot(self._classes, messages,
                                      "recompute",
                                      self._state_fingerprint(messages))
        assert fresh.bounds_fingerprint() == \
            self._snapshot.bounds_fingerprint(), (
            "incremental bounds diverged from the from-scratch recompute")
        return True


def _snapshot_from_payload(payload: dict, *, mode: str) -> EngineSnapshot:
    """Rebuild a snapshot from its stored JSON payload."""
    classes = tuple(ClassBound(
        priority=PriorityClass[row["class"]],
        count=int(row["count"]),
        deadline=row["deadline"],
        bound=float(row["bound"]),
        backlog_bits=float(row["backlog_bits"]),
        stable=bool(row["stable"])) for row in payload["classes"])
    return EngineSnapshot(classes=classes,
                          flow_count=int(payload["flow_count"]),
                          policy=str(payload["policy"]),
                          feasible=bool(payload["feasible"]),
                          state_fingerprint=str(
                              payload["state_fingerprint"]),
                          mode=mode)
