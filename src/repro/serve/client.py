"""A stdlib HTTP client for the admission-control service.

Used by the test-suite, the benchmarks and the CI smoke storm; thin on
purpose — one keep-alive-friendly request helper plus one method per
endpoint, each returning ``(status, payload, headers)`` so callers can
assert on shed responses (503 + ``Retry-After``) as easily as on
successes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServeClient"]


class ServeClient:
    """Client for one :class:`~repro.serve.server.AdmissionServer`.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8787"`` (no trailing slash needed).
    timeout:
        Socket timeout in seconds — a client-side backstop strictly
        above the server's deadline budget, so the server's watchdog
        (not the socket) is what bounds a slow request.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str, payload: dict | None = None
                ) -> tuple[int, dict, dict]:
        """One round-trip; returns ``(status, payload, headers)``.

        Non-2xx responses are returned, not raised — the service speaks
        JSON on every status code it emits.
        """
        body = None if payload is None else \
            json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return (response.status,
                        json.loads(response.read().decode("utf-8")),
                        dict(response.headers))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8")
            try:
                decoded = json.loads(raw)
            except json.JSONDecodeError:
                decoded = {"error": raw}
            return error.code, decoded, dict(error.headers or {})

    # -- endpoints ---------------------------------------------------------

    def health(self) -> tuple[int, dict, dict]:
        """``GET /health``."""
        return self.request("GET", "/health")

    def stats(self) -> tuple[int, dict, dict]:
        """``GET /stats``."""
        return self.request("GET", "/stats")

    def check(self, flow: dict | None = None) -> tuple[int, dict, dict]:
        """``POST /check`` — committed bounds, or a what-if with a flow."""
        return self.request("POST", "/check",
                            {} if flow is None else {"flow": flow})

    def admit(self, flow: dict, *, force: bool = False
              ) -> tuple[int, dict, dict]:
        """``POST /admit``."""
        return self.request("POST", "/admit",
                            {"flow": flow, "force": force})

    def remove(self, name: str) -> tuple[int, dict, dict]:
        """``POST /remove``."""
        return self.request("POST", "/remove", {"name": name})

    # -- readiness ---------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``/health`` until the server answers; returns the body.

        Raises ``TimeoutError`` when the server never comes up — the
        smoke tests use this as the readiness gate after (re)start.
        """
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                status, payload, _ = self.health()
                if status == 200:
                    return payload
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError) as error:
                last_error = error
            time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.base_url} not ready after {timeout:g}s "
            f"(last error: {last_error})")
