"""The HTTP/JSON admission-control server (stdlib only).

One :class:`AdmissionServer` fronts one
:class:`~repro.serve.engine.AdmissionEngine` with the robustness
contract the service promises:

* **Serialised engine access.**  Handler threads never touch the engine
  for mutations; they enqueue jobs on a *bounded* queue drained by a
  single worker thread, so every admit/remove/check is totally ordered
  and the incremental invariants can never race.
* **Per-request deadline budget.**  Each request carries a watchdog: if
  the worker has not answered within the budget, the handler stops
  waiting and degrades to the last *committed* snapshot, flagged
  ``"degraded": true`` — a request is answered, degraded, or shed, but
  never hangs.  An un-started job whose deadline passed is abandoned
  (compare-and-swap ``PENDING -> ABANDONED``) so the worker skips it
  instead of burning budget on a response nobody is waiting for.
* **Load shedding.**  Once queue depth or the rolling p99 latency
  crosses its threshold the request is shed immediately with ``503``
  and a ``Retry-After`` header — backpressure instead of collapse.
* **Write-ahead durability.**  Committed mutations are journaled before
  the response goes out; a journal append failure (including an
  injected ``journal-eio``) rolls the engine mutation back and answers
  ``500``, so acknowledged state and journaled state never diverge.
* **Graceful drain.**  SIGTERM stops accepting work (``503`` on new
  requests), drains the in-flight queue, folds a final checkpoint and
  exits 0.  SIGKILL needs no cooperation: recovery replays the journal.

Chaos testing hooks: a :class:`~repro.exec.faults.FaultPlan` makes the
worker wrap each job in :class:`~repro.exec.faults.request_context`
keyed by the request sequence number, so ``req-slow``/``req-exc`` (and
the store/journal fault kinds) fire deterministically at chosen
requests.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Full, Queue

from repro.analysis.engines import DEFAULT_ENGINE
from repro.errors import ConfigurationError
from repro.exec.faults import FaultInjectedError, FaultPlan, request_context
from repro.serve.engine import AdmissionEngine
from repro.serve.journal import AdmissionJournal
from repro.store import code_version

__all__ = ["AdmissionServer", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Robustness knobs of one server instance (see DESIGN.md §14)."""

    #: Bind address.
    host: str = "127.0.0.1"
    #: Bind port; 0 lets the kernel pick (the bound port is reported by
    #: :attr:`AdmissionServer.port` and on stdout by the CLI).
    port: int = 0
    #: Per-request deadline budget in seconds — the watchdog that turns
    #: a slow analysis into a degraded (cached) answer.
    deadline: float = 0.25
    #: Bounded admission-queue depth; a full queue sheds with 503.
    queue_depth: int = 64
    #: Shed new work once the rolling p99 latency (seconds) crosses
    #: this; ``None`` defaults to twice the deadline budget.
    shed_p99: float | None = None
    #: Seconds clients are told to back off when shed (``Retry-After``).
    retry_after: int = 1
    #: Fold the journal into a checkpoint every this many appends.
    checkpoint_every: int = 256
    #: Bound engine behind the served admission bounds.  The incremental
    #: admission math is calculus-only, so the CLI rejects any other
    #: selection; ``/health`` reports the name with the ``engines``
    #: code-version token so clients can tell which bound implementation
    #: (and source revision) produced their answers.
    engine: str = DEFAULT_ENGINE

    def effective_shed_p99(self) -> float:
        """The p99 shedding threshold actually applied."""
        return self.shed_p99 if self.shed_p99 is not None \
            else 2.0 * self.deadline


# Job lifecycle: PENDING -> RUNNING -> DONE, or PENDING -> ABANDONED
# when the watchdog gave up before the worker picked the job up.
_PENDING, _RUNNING, _DONE, _ABANDONED = "pending", "running", "done", \
    "abandoned"

_STOP = object()


class _Job:
    """One queued engine operation with its watchdog handshake."""

    __slots__ = ("seq", "op", "payload", "force", "state", "status",
                 "result", "lock", "done")

    def __init__(self, seq: int, op: str, payload, force: bool = False
                 ) -> None:
        self.seq = seq
        self.op = op
        self.payload = payload
        self.force = force
        self.state = _PENDING
        self.status = 500
        self.result = None
        self.lock = threading.Lock()
        self.done = threading.Event()

    def try_abandon(self) -> bool:
        """CAS ``PENDING -> ABANDONED``; False if the worker got there."""
        with self.lock:
            if self.state == _PENDING:
                self.state = _ABANDONED
                return True
            return False

    def try_start(self) -> bool:
        """CAS ``PENDING -> RUNNING``; False if the watchdog gave up."""
        with self.lock:
            if self.state == _PENDING:
                self.state = _RUNNING
                return True
            return False


class AdmissionServer:
    """The long-lived service; see the module docstring for the contract.

    Parameters
    ----------
    engine:
        The (already recovered) admission engine to serve.
    config:
        Robustness knobs.
    journal:
        Write-ahead journal, or ``None`` to run without persistence.
    faults:
        Deterministic chaos plan applied per request sequence number.
    """

    def __init__(self, engine: AdmissionEngine,
                 config: ServeConfig | None = None,
                 journal: AdmissionJournal | None = None,
                 faults: FaultPlan | None = None) -> None:
        self.engine = engine
        self.config = config or ServeConfig()
        self.journal = journal
        self.faults = faults
        self.draining = False
        self._queue: Queue = Queue(maxsize=self.config.queue_depth)
        self._seq_lock = threading.Lock()
        self._seq = 0
        self._latencies: deque = deque(maxlen=512)
        self._counters = {"served": 0, "degraded": 0, "shed": 0,
                          "errors": 0, "abandoned": 0}
        self._counters_lock = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self._worker: threading.Thread | None = None
        self._started = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[1]

    def start(self) -> None:
        """Bind the socket and start the worker + acceptor threads."""
        server = self

        class _Handler(_RequestHandler):
            serve_ref = server

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="serve-worker", daemon=True)
        self._worker.start()
        self._acceptor = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-acceptor", daemon=True)
        self._acceptor.start()

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting, finish queued work, checkpoint; True if clean.

        This is the SIGTERM path: already-accepted requests are answered
        (or degraded by their own watchdogs), then the final flow table
        is checkpointed so the next start recovers instantly.
        """
        self.draining = True
        deadline = time.monotonic() + timeout
        clean = True
        while not self._queue.empty():
            if time.monotonic() >= deadline:
                clean = False
                break
            time.sleep(0.01)
        self._queue.put(_STOP)
        if self._worker is not None:
            self._worker.join(timeout=max(0.1,
                                          deadline - time.monotonic()))
            clean = clean and not self._worker.is_alive()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self.journal is not None:
            self.journal.checkpoint(self.engine.flow_payloads())
            self.journal.close()
        return clean

    # -- the single engine worker ------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            if not job.try_start():
                self._bump("abandoned")
                continue
            started = time.monotonic()
            try:
                if self.faults is not None:
                    with request_context(self.faults, job.seq):
                        status, payload = self._dispatch(job)
                else:
                    status, payload = self._dispatch(job)
            except FaultInjectedError as error:
                status, payload = 500, {"error": str(error),
                                        "injected": True}
            except ConfigurationError as error:
                status, payload = 400, {"error": str(error)}
            except OSError as error:
                status, payload = 500, {"error": f"journal append "
                                        f"failed: {error}"}
            except Exception as error:  # never kill the worker
                status, payload = 500, {"error": f"internal error: "
                                        f"{error}"}
            self._latencies.append(time.monotonic() - started)
            job.status = status
            job.result = payload
            with job.lock:
                job.state = _DONE
            job.done.set()

    def _dispatch(self, job: _Job) -> tuple[int, dict]:
        engine, journal = self.engine, self.journal
        if job.op == "check":
            decision = engine.check(job.payload)
            return 200, decision.to_payload()
        if job.op == "admit":
            decision = engine.admit(job.payload, force=job.force)
            if decision.applied and journal is not None:
                flow = engine.flow_payload(decision.flow)
                try:
                    journal.append({"op": "admit", "flow": flow})
                except OSError:
                    # Roll back so acknowledged state == journaled
                    # state; removal restores the pre-admit aggregates
                    # bit-identically (the metamorphic property).
                    engine.remove(decision.flow)
                    raise
                journal.maybe_checkpoint(engine.flow_payloads())
            return (200 if decision.applied else 409), \
                decision.to_payload()
        if job.op == "remove":
            name = job.payload
            rollback = engine.flow_payload(name) \
                if name in engine.flow_names() else None
            decision = engine.remove(name)
            if decision.applied and journal is not None:
                try:
                    journal.append({"op": "remove", "name": name})
                except OSError:
                    engine.admit(rollback, force=True)
                    raise
                journal.maybe_checkpoint(engine.flow_payloads())
            return (200 if decision.applied else 404), \
                decision.to_payload()
        return 400, {"error": f"unknown operation {job.op!r}"}

    # -- request-side helpers ----------------------------------------------

    def next_seq(self) -> int:
        """The request sequence number (doubles as the fault cell)."""
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _bump(self, counter: str) -> None:
        with self._counters_lock:
            self._counters[counter] += 1

    def p99_latency(self) -> float:
        """Rolling p99 of worker-side latencies (seconds)."""
        sample = sorted(self._latencies)
        if not sample:
            return 0.0
        return sample[min(len(sample) - 1,
                          int(0.99 * (len(sample) - 1) + 0.5))]

    def should_shed(self) -> str | None:
        """A human reason to shed the request right now, or ``None``."""
        if self.draining:
            return "server is draining"
        if self._queue.qsize() >= self.config.queue_depth:
            return "admission queue is full"
        if self.p99_latency() > self.config.effective_shed_p99():
            return "rolling p99 latency over threshold"
        return None

    def submit(self, op: str, payload, *, force: bool = False
               ) -> tuple[int, dict, dict]:
        """Enqueue one engine operation and await it under the budget.

        Returns ``(status, payload, extra_headers)``.  Every path is
        bounded: shed (503), answered (worker), or degraded (watchdog).
        """
        seq = self.next_seq()
        reason = self.should_shed()
        if reason is None:
            job = _Job(seq, op, payload, force)
            try:
                self._queue.put_nowait(job)
            except Full:
                reason = "admission queue is full"
        if reason is not None:
            self._bump("shed")
            return 503, {"error": reason, "shed": True,
                         "request_seq": seq}, \
                {"Retry-After": str(self.config.retry_after)}
        if job.done.wait(timeout=self.config.deadline):
            self._bump("served")
            body = dict(job.result)
            body["degraded"] = False
            body["request_seq"] = seq
            if job.status >= 500:
                self._bump("errors")
            return job.status, body, {}
        # Watchdog fired: degrade to the last committed snapshot.
        job.try_abandon()
        self._bump("degraded")
        snapshot = self.engine.snapshot()
        return 200, {"operation": op, "applied": False, "flow": None,
                     "degraded": True, "request_seq": seq,
                     "reasons": [f"deadline budget "
                                 f"{self.config.deadline:g}s exceeded; "
                                 f"returning last committed bounds"],
                     "snapshot": snapshot.to_payload()}, {}

    def health_payload(self) -> dict:
        """The ``GET /health`` body (also the CLI's readiness probe)."""
        snapshot = self.engine.snapshot()
        store = self.engine.store
        body = {
            "status": "draining" if self.draining else "ok",
            "ready": not self.draining,
            "flow_count": snapshot.flow_count,
            "feasible": snapshot.feasible,
            "policy": snapshot.policy,
            "engine": {"name": self.config.engine,
                       "token": code_version("engines")},
            "state_fingerprint": snapshot.state_fingerprint,
            "bounds_fingerprint": snapshot.bounds_fingerprint(),
        }
        if store is not None:
            body["store"] = store.health()
            if store.health()["degraded"]:
                body["status"] = "degraded"
        if self.journal is not None:
            body["journal"] = {"path": str(self.journal.journal_path),
                               "seq": self.journal._seq}
        return body

    def stats_payload(self) -> dict:
        """The ``GET /stats`` body."""
        with self._counters_lock:
            counters = dict(self._counters)
        counters.update({
            "queue_depth": self._queue.qsize(),
            "p99_latency": self.p99_latency(),
            "deadline": self.config.deadline,
            "incremental_hits": self.engine.incremental_hits,
            "full_recomputes": self.engine.full_recomputes,
            "uptime": time.monotonic() - self._started,
        })
        return counters


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the server; no engine access in here."""

    serve_ref: AdmissionServer = None  # patched per server instance
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the access log is the stats endpoint, not stderr

    def _respond(self, status: int, payload: dict,
                 headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ConfigurationError(f"request body is not valid JSON: "
                                     f"{error}") from None
        if not isinstance(payload, dict):
            raise ConfigurationError("request body must be a JSON object")
        return payload

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        server = self.serve_ref
        if self.path == "/health":
            self._respond(200, server.health_payload())
        elif self.path == "/stats":
            self._respond(200, server.stats_payload())
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        server = self.serve_ref
        route = self.path.rstrip("/")
        if route not in ("/admit", "/remove", "/check"):
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            body = self._read_body()
        except ConfigurationError as error:
            self._respond(400, {"error": str(error)})
            return
        if route == "/admit":
            status, payload, headers = server.submit(
                "admit", body.get("flow"), force=bool(body.get("force")))
        elif route == "/remove":
            name = body.get("name")
            if not isinstance(name, str) or not name:
                self._respond(400, {"error": "remove needs a non-empty "
                                    "'name' string"})
                return
            status, payload, headers = server.submit("remove", name)
        else:
            status, payload, headers = server.submit(
                "check", body.get("flow"))
        self._respond(status, payload, headers)
