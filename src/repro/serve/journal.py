"""Crash-safe persistence of the admission flow table.

The server journals every *committed* mutation write-ahead into an
append-only ``journal.jsonl`` (one JSON object per line, each carrying a
monotonically increasing ``seq``), and periodically folds the journal
into an atomic ``checkpoint.json`` written with the temp-file +
``os.replace`` pattern — the same discipline the result store uses, so a
reader can never observe a half-written checkpoint.

Recovery composes the two: load the checkpoint's flow table, then replay
every journal operation with ``seq`` greater than the checkpoint's.
Unparseable journal lines — the torn tail a SIGKILL mid-append leaves
behind, or an injected ``journal-torn`` fault — are skipped and counted,
never fatal: everything *before* the torn line was durable, and the torn
operation never got its response out, so dropping it is exactly the
at-most-once semantics a client observes from a crashed server.

The write path runs under the deterministic fault hooks of
:mod:`repro.exec.faults`: ``journal-eio`` turns one append into an
``OSError`` (the server answers 500 and does **not** apply the
mutation), ``journal-torn`` truncates one record on disk while the
in-memory state moves on — the recovery test then proves the replay
skips it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.exec.faults import corrupt_journal_line, journal_fault

__all__ = ["AdmissionJournal", "JournalState"]

_JOURNAL_NAME = "journal.jsonl"
_CHECKPOINT_NAME = "checkpoint.json"


@dataclass(frozen=True)
class JournalState:
    """What :meth:`AdmissionJournal.recover` found on disk.

    ``flows`` is the checkpointed flow table (payload dicts, insertion
    order); ``operations`` the journal tail to replay on top of it.
    """

    flows: tuple[dict, ...] = ()
    operations: tuple[dict, ...] = ()
    #: ``seq`` the checkpoint folded up to (0 = no checkpoint).
    checkpoint_seq: int = 0
    #: Highest ``seq`` seen anywhere (the journal resumes after it).
    last_seq: int = 0
    #: Unparseable journal lines skipped during replay (torn tail).
    corrupt_lines: int = 0
    #: True when a checkpoint file existed but could not be parsed.
    corrupt_checkpoint: bool = False

    @property
    def empty(self) -> bool:
        """True when there was no recoverable state at all."""
        return not self.flows and not self.operations


class AdmissionJournal:
    """Write-ahead journal + atomic checkpoints under one directory.

    Parameters
    ----------
    root:
        Directory holding ``journal.jsonl`` and ``checkpoint.json``
        (created on first use).
    fsync:
        Push every append and checkpoint to stable storage before
        reporting it done.  Without it the journal still survives a
        process SIGKILL (the write reached the kernel), just not a
        power loss — the same opt-in contract as the result store.
    checkpoint_every:
        Fold the journal into a checkpoint after this many appends
        (0 disables automatic checkpoints).
    """

    def __init__(self, root: str | Path, *, fsync: bool = False,
                 checkpoint_every: int = 256) -> None:
        self.root = Path(root)
        self.fsync = bool(fsync)
        self.checkpoint_every = int(checkpoint_every)
        self._seq = 0
        self._since_checkpoint = 0
        self._handle = None

    # -- paths ---------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        """The append-only operation log."""
        return self.root / _JOURNAL_NAME

    @property
    def checkpoint_path(self) -> Path:
        """The atomically replaced checkpoint."""
        return self.root / _CHECKPOINT_NAME

    # -- write path ----------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.journal_path, "a", encoding="utf-8")
        return self._handle

    def append(self, operation: dict) -> int:
        """Journal one committed mutation; returns its ``seq``.

        Write-ahead contract: callers append *before* applying the
        mutation to the engine, and abort the mutation if the append
        raises (``journal-eio`` injects exactly that ``OSError``).
        """
        seq = self._seq + 1
        record = {"seq": seq}
        record.update(operation)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        journal_fault()  # injected EIO fires before anything is written
        handle = self._open()
        handle.write(corrupt_journal_line(line) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._seq = seq
        self._since_checkpoint += 1
        return seq

    def maybe_checkpoint(self, flows: list[dict]) -> bool:
        """Checkpoint when enough appends accumulated; returns True if so."""
        if not self.checkpoint_every \
                or self._since_checkpoint < self.checkpoint_every:
            return False
        self.checkpoint(flows)
        return True

    def checkpoint(self, flows: list[dict]) -> None:
        """Fold the current flow table into an atomic checkpoint.

        The checkpoint is published with ``os.replace`` first; only then
        is the journal compacted (truncated).  A crash between the two
        steps merely leaves journal entries the next recovery filters
        out by ``seq`` — never a window where state is lost.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"seq": self._seq, "flows": list(flows)}
        tmp = self.checkpoint_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True,
                      separators=(",", ":"))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)
        # Compact: atomically swap in an empty journal.  Entries <= seq
        # are subsumed by the checkpoint just published.
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp_journal = self.journal_path.with_suffix(".tmp")
        with open(tmp_journal, "w", encoding="utf-8") as handle:
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_journal, self.journal_path)
        self._since_checkpoint = 0

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- recovery ------------------------------------------------------------

    def recover(self) -> JournalState:
        """Read checkpoint + journal tail; resume ``seq`` numbering.

        Never raises on corrupt state: a broken checkpoint is ignored
        (and flagged), broken journal lines are skipped and counted.
        """
        flows: tuple[dict, ...] = ()
        checkpoint_seq = 0
        corrupt_checkpoint = False
        if self.checkpoint_path.exists():
            try:
                payload = json.loads(
                    self.checkpoint_path.read_text(encoding="utf-8"))
                flows = tuple(payload["flows"])
                checkpoint_seq = int(payload["seq"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    OSError):
                corrupt_checkpoint = True
        operations: list[dict] = []
        corrupt_lines = 0
        last_seq = checkpoint_seq
        if self.journal_path.exists():
            try:
                text = self.journal_path.read_text(encoding="utf-8")
            except OSError:
                text = ""
                corrupt_lines += 1
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    seq = int(record.pop("seq"))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    corrupt_lines += 1
                    continue
                last_seq = max(last_seq, seq)
                if seq > checkpoint_seq:
                    operations.append(record)
        self._seq = last_seq
        self._since_checkpoint = len(operations)
        return JournalState(flows=flows, operations=tuple(operations),
                            checkpoint_seq=checkpoint_seq,
                            last_seq=last_seq,
                            corrupt_lines=corrupt_lines,
                            corrupt_checkpoint=corrupt_checkpoint)
