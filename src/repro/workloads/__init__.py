"""Workload generation.

The paper evaluates its approach on a "real case" military avionics traffic
that is not published (DGA-sponsored program).  This package generates a
**synthetic equivalent** from the structural parameters the paper does give
(see DESIGN.md, Section 2): periods and minimal inter-arrival times drawn
from the 20 / 40 / 80 / 160 ms family, MIL-STD-1553B-scale message sizes
(data words of 16 bits), four deadline classes (3 ms urgent sporadic,
periodic with implicit deadlines, 20–160 ms sporadic, background), and a
station population typical of a federated avionics suite.

* :mod:`~repro.workloads.realcase` — the seeded default case study used by
  every experiment,
* :mod:`~repro.workloads.sweeps` — parametric transformations (size scaling,
  station-count scaling, class-mix changes) used by the sensitivity and
  scalability experiments,
* :mod:`~repro.workloads.traces` — CSV export/import of message sets so a
  user with access to a real (classified or proprietary) message set can run
  the same experiments on it.
"""

from repro.workloads.realcase import RealCaseParameters, generate_real_case
from repro.workloads.sweeps import (
    scale_message_sizes,
    scale_station_count,
    with_capacity_profile,
)
from repro.workloads.traces import load_message_set_csv, save_message_set_csv

__all__ = [
    "RealCaseParameters",
    "generate_real_case",
    "scale_message_sizes",
    "scale_station_count",
    "with_capacity_profile",
    "load_message_set_csv",
    "save_message_set_csv",
]
