"""CSV export / import of message sets.

Users with access to a real (proprietary) avionics message set can run every
experiment of this library on it by exporting their interface control
document to the simple CSV schema below; conversely the synthetic case study
can be exported for inspection or for use by external tools.

Schema (one message per row)::

    name,kind,period_ms,size_bits,source,destination,deadline_ms

``kind`` is ``periodic`` or ``sporadic``; ``deadline_ms`` may be empty for
messages without a hard constraint.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro import units
from repro.errors import InvalidWorkloadError
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message, MessageKind

__all__ = ["save_message_set_csv", "load_message_set_csv"]

_FIELDS = ["name", "kind", "period_ms", "size_bits", "source", "destination",
           "deadline_ms"]


def save_message_set_csv(message_set: MessageSet, path: str | Path) -> None:
    """Write ``message_set`` to ``path`` in the CSV schema above."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for message in message_set:
            writer.writerow({
                "name": message.name,
                "kind": message.kind.value,
                "period_ms": repr(units.to_ms(message.period)),
                "size_bits": repr(message.size),
                "source": message.source,
                "destination": message.destination,
                "deadline_ms": ("" if message.deadline is None
                                else repr(units.to_ms(message.deadline))),
            })


def load_message_set_csv(path: str | Path,
                         name: str | None = None) -> MessageSet:
    """Read a message set from a CSV file in the schema above.

    Raises
    ------
    InvalidWorkloadError
        If the file misses columns or contains malformed rows.
    """
    path = Path(path)
    message_set = MessageSet(name=name or path.stem)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise InvalidWorkloadError(
                f"{path}: missing columns {sorted(missing)}")
        for line_number, row in enumerate(reader, start=2):
            try:
                kind = MessageKind(row["kind"].strip())
                deadline_field = row["deadline_ms"].strip()
                message_set.add(Message(
                    name=row["name"].strip(),
                    kind=kind,
                    period=units.ms(float(row["period_ms"])),
                    size=float(row["size_bits"]),
                    source=row["source"].strip(),
                    destination=row["destination"].strip(),
                    deadline=(None if not deadline_field
                              else units.ms(float(deadline_field))),
                ))
            except (KeyError, ValueError) as error:
                raise InvalidWorkloadError(
                    f"{path}:{line_number}: malformed row: {error}") from error
    return message_set
