"""Parametric transformations of message sets for sweep experiments.

The sensitivity and scalability experiments vary one dimension of the case
study at a time: message sizes (burst scaling), the number of stations
(population scaling) or the link capacity profile (10 Mbps vs 100 Mbps).
The helpers below derive new message sets (or analysis parameters) from an
existing set without touching the generator, so every sweep starts from the
same seeded baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import InvalidWorkloadError
from repro.flows.message_set import MessageSet, ReplicatedMessageSet

__all__ = [
    "scale_message_sizes",
    "scale_station_count",
    "with_capacity_profile",
    "CapacityProfile",
]


def scale_message_sizes(message_set: MessageSet, factor: float,
                        name: str | None = None) -> MessageSet:
    """Return a copy of ``message_set`` with every size multiplied by ``factor``.

    Sizes are kept on the 16-bit word grid (rounded up to a whole word) so
    the scaled set remains a valid 1553B workload.
    """
    if factor <= 0:
        raise InvalidWorkloadError(f"factor must be positive, got {factor!r}")
    scaled = MessageSet(name=name or f"{message_set.name}-x{factor:g}")
    for message in message_set:
        words = max(1, round(message.size * factor
                             / units.BITS_PER_1553_WORD))
        scaled.add(message.with_size(units.words1553(words)))
    return scaled


def scale_station_count(message_set: MessageSet, replication: int,
                        name: str | None = None) -> MessageSet:
    """Replicate the traffic of every station ``replication`` times.

    Each replica ``k`` gets its own stations (suffix ``rk``) and its own
    message names, so the result models an aircraft with ``replication``
    times as many subsystems exchanging the same kind of traffic.

    The result is a :class:`~repro.flows.message_set.ReplicatedMessageSet`:
    aggregate quantities (rates, bursts, per-class statistics) are derived
    arithmetically from the base set, and the individual replica messages
    are only materialised when a consumer iterates them — so the analytic
    scalability ladder never pays for thousand-message copies.
    """
    if replication < 1:
        raise InvalidWorkloadError(
            f"replication must be at least 1, got {replication!r}")
    if replication == 1:
        return message_set
    return ReplicatedMessageSet(message_set, replication, name=name)


@dataclass(frozen=True)
class CapacityProfile:
    """A named link-capacity / technology-delay configuration."""

    name: str
    capacity: float
    technology_delay: float


#: The capacity profiles used by the E2 sweep: the paper's 10 Mbps links and
#: the Fast-Ethernet variant mentioned as the natural upgrade path.
_PROFILES = {
    "ethernet-10": CapacityProfile("ethernet-10", units.mbps(10),
                                   units.us(16)),
    "fast-ethernet-100": CapacityProfile("fast-ethernet-100",
                                         units.mbps(100), units.us(16)),
    "mil-std-1553b": CapacityProfile("mil-std-1553b", units.mbps(1), 0.0),
}


def with_capacity_profile(profile_name: str) -> CapacityProfile:
    """Look up one of the predefined capacity profiles.

    Raises
    ------
    InvalidWorkloadError
        If the profile name is unknown.
    """
    try:
        return _PROFILES[profile_name]
    except KeyError:
        raise InvalidWorkloadError(
            f"unknown capacity profile {profile_name!r}; known profiles: "
            f"{sorted(_PROFILES)}") from None
