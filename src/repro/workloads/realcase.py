"""The synthetic "real case" military avionics message set.

The generator reproduces the structural features the paper discloses about
its case study:

* the **biggest message period is 160 ms** (the 1553B major frame) and the
  **smallest is 20 ms** (the minor frame); intermediate periods follow the
  usual binary ladder (40 ms, 80 ms),
* high-rate messages are small (sensor samples of a few 16-bit data words)
  while low-rate messages are larger (status blocks up to a full 32-word
  transaction),
* every station emits **at most one sporadic message of each type per 20 ms
  minor frame**, i.e. sporadic minimal inter-arrival times are at least
  20 ms,
* sporadic messages fall into three constraint classes: **urgent** (3 ms
  maximal response time — alarms and discrete commands of one or two data
  words), **medium** (20–160 ms response time) and **background**
  (above 160 ms, or no hard constraint — maintenance and bulk data, which
  are also the largest messages),
* traffic converges towards a small number of *heavy* stations (mission
  computer, data concentrator), which is what loads the shared resources.

The defaults are tuned so that the resulting set exhibits the paper's three
headline properties (checked by the test suite and the Figure 1 benchmark):

1. it fits on a MIL-STD-1553B bus — the 160 ms / 20 ms cyclic schedule is
   feasible,
2. the plain FCFS bound on a 10 Mbps Ethernet link **violates** the 3 ms
   constraint of the urgent class,
3. the four-queue strict-priority bounds **respect every constraint**.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.errors import InvalidWorkloadError
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message

__all__ = ["RealCaseParameters", "generate_real_case"]

#: The binary ladder of periods used by the case study (seconds).
PERIOD_LADDER = (units.ms(20), units.ms(40), units.ms(80), units.ms(160))


@dataclass(frozen=True)
class RealCaseParameters:
    """Tunable structure of the synthetic case study.

    The defaults generate roughly 150 messages over 16 stations; every count
    is per station unless stated otherwise.
    """

    #: Number of end stations (remote terminals in the 1553B world).
    station_count: int = 16
    #: Periodic messages emitted by each regular station.
    periodic_per_station: int = 5
    #: Urgent sporadic messages (3 ms deadline) per station.
    urgent_per_station: int = 1
    #: Medium sporadic messages (20–160 ms deadline) per station.
    medium_per_station: int = 2
    #: Background sporadic messages (no hard deadline) per station.
    background_per_station: int = 1
    #: Probability that a periodic message uses each period of the ladder
    #: (20, 40, 80, 160 ms); favours slow messages as real systems do.
    period_weights: tuple[float, float, float, float] = (0.10, 0.20, 0.30, 0.40)
    #: Data-word ranges (min, max), in 16-bit words, indexed by period of the
    #: ladder: fast messages are small, slow ones larger.
    periodic_word_ranges: tuple[tuple[int, int], ...] = (
        (1, 8), (4, 16), (8, 32), (8, 24))
    #: Word range of urgent sporadic messages (alarms, discrete commands).
    urgent_words: tuple[int, int] = (1, 2)
    #: Word range of medium sporadic messages.
    medium_words: tuple[int, int] = (2, 6)
    #: Word range of background sporadic messages (bulk/maintenance data).
    background_words: tuple[int, int] = (32, 64)
    #: Fraction of regular-station traffic addressed to the mission computer.
    convergence_ratio: float = 0.7
    #: Index of the station acting as the mission computer (heavy sink).
    mission_computer_index: int = 0
    #: Index of the station acting as the data concentrator (second sink).
    concentrator_index: int = 1
    #: Urgent sporadic deadline (the paper's 3 ms).
    urgent_deadline: float = units.ms(3)
    #: Medium sporadic deadlines are drawn from this set (20–160 ms).
    medium_deadlines: tuple[float, ...] = (
        units.ms(20), units.ms(40), units.ms(80), units.ms(160))

    def __post_init__(self) -> None:
        if self.station_count < 4:
            raise InvalidWorkloadError(
                "the case study needs at least 4 stations")
        if abs(sum(self.period_weights) - 1.0) > 1e-9:
            raise InvalidWorkloadError("period weights must sum to 1")
        if self.mission_computer_index == self.concentrator_index:
            raise InvalidWorkloadError(
                "mission computer and concentrator must be different stations")
        if not 0.0 <= self.convergence_ratio <= 1.0:
            raise InvalidWorkloadError(
                "convergence ratio must be between 0 and 1")


def _station_name(index: int) -> str:
    return f"station-{index:02d}"


def generate_real_case(parameters: RealCaseParameters | None = None,
                       seed: int = 7,
                       name: str = "real-case") -> MessageSet:
    """Generate the seeded synthetic case-study message set.

    Parameters
    ----------
    parameters:
        Structure of the case study; defaults to :class:`RealCaseParameters`.
    seed:
        Seed of the generator — the same ``(parameters, seed)`` pair always
        produces the identical message set.
    name:
        Name given to the resulting :class:`~repro.flows.MessageSet`.
    """
    params = parameters or RealCaseParameters()
    rng = np.random.default_rng(seed)
    message_set = MessageSet(name=name)

    mission_computer = _station_name(params.mission_computer_index)
    concentrator = _station_name(params.concentrator_index)
    stations = [_station_name(i) for i in range(params.station_count)]

    def pick_destination(source: str) -> str:
        """Regular stations mostly talk to the sinks; sinks talk to everyone."""
        if source in (mission_computer, concentrator):
            candidates = [s for s in stations if s != source]
            return str(rng.choice(candidates))
        if rng.random() < params.convergence_ratio:
            return (mission_computer if rng.random() < 0.7 else concentrator)
        candidates = [s for s in stations if s != source]
        return str(rng.choice(candidates))

    def draw_words(word_range: tuple[int, int]) -> int:
        low, high = word_range
        return int(rng.integers(low, high + 1))

    for station in stations:
        # Periodic messages -------------------------------------------------
        for index in range(params.periodic_per_station):
            ladder_index = int(rng.choice(len(PERIOD_LADDER),
                                          p=params.period_weights))
            period = PERIOD_LADDER[ladder_index]
            words = draw_words(params.periodic_word_ranges[ladder_index])
            message_set.add(Message.periodic(
                name=f"{station}-per-{index:02d}",
                period=period,
                size=units.words1553(words),
                source=station,
                destination=pick_destination(station),
                words=words))
        # Urgent sporadic (3 ms deadline) ------------------------------------
        for index in range(params.urgent_per_station):
            words = draw_words(params.urgent_words)
            message_set.add(Message.sporadic(
                name=f"{station}-urg-{index:02d}",
                min_interarrival=units.ms(20),
                size=units.words1553(words),
                source=station,
                destination=pick_destination(station),
                deadline=params.urgent_deadline,
                words=words))
        # Medium sporadic (20-160 ms deadline) -------------------------------
        for index in range(params.medium_per_station):
            words = draw_words(params.medium_words)
            deadline = float(rng.choice(params.medium_deadlines))
            message_set.add(Message.sporadic(
                name=f"{station}-spo-{index:02d}",
                min_interarrival=max(units.ms(20), deadline),
                size=units.words1553(words),
                source=station,
                destination=pick_destination(station),
                deadline=deadline,
                words=words))
        # Background sporadic (no hard deadline) ------------------------------
        for index in range(params.background_per_station):
            words = draw_words(params.background_words)
            message_set.add(Message.sporadic(
                name=f"{station}-bkg-{index:02d}",
                min_interarrival=units.ms(160),
                size=units.words1553(words),
                source=station,
                destination=pick_destination(station),
                deadline=None,
                words=words))

    return message_set
