"""The paper's closed-form multiplexer delay bounds.

Inside every station (and, for the end-to-end analysis, inside every switch
output port) the shaped flows are multiplexed before a physical link of
capacity ``C``.  The paper analyses two multiplexing policies:

**FCFS multiplexer** (Section 2).  The worst-case queuing delay of any packet
is bounded by::

    D = sum_{i in S} b_i / C + t_techno

where ``S`` is the set of connections flowing through the multiplexer,
``b_i`` their token-bucket burst sizes and ``t_techno`` a bound on the
relaying (technology) delay.

**Strict-priority multiplexer with four queues** (802.1p).  The worst-case
delay of a packet of priority class ``p`` (0 = most urgent) is bounded by::

    D_p = ( sum_{i in S_q, q <= p} b_i  +  max_{j in S_q, q > p} b_j )
          / ( C - sum_{i in S_q, q < p} r_i )  +  t_techno

i.e. the packet waits for the bursts of every equal-or-higher-priority flow
plus one maximal lower-priority packet already in transmission
(non-preemption), served at the capacity left over by the higher-priority
classes.

Both analyses also expose the *residual service curve* equivalent to their
bound, so the end-to-end composition in :mod:`repro.core.endtoend` can chain
several multiplexing points with the standard network-calculus machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.netcalc.arrival import TokenBucketArrivalCurve
from repro.core.netcalc.service import RateLatencyServiceCurve
from repro.errors import EmptyAggregateError, UnstableSystemError
from repro.flows.arrays import MessageArrays, sequential_sum
from repro.flows.flow import Flow
from repro.flows.message_set import MessageSet
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass, assign_priority
from repro.simulation.statistics import safe_max

__all__ = [
    "MultiplexerBound",
    "ClassAggregate",
    "aggregate_flows",
    "aggregate_from_arrays",
    "FcfsMultiplexerAnalysis",
    "StrictPriorityMultiplexerAnalysis",
    "priority_of",
    "compute_class_bounds",
    "compute_arrival_curve",
    "compute_service_curve",
]


def priority_of(item: Flow | Message) -> PriorityClass:
    """The 802.1p class of a flow or message.

    Flows carry an explicit priority; bare messages are classified with the
    paper's policy (:func:`repro.flows.priorities.assign_priority`).
    """
    if isinstance(item, Flow):
        return item.priority
    if isinstance(item, Message):
        return assign_priority(item)
    priority = getattr(item, "priority", None)
    if priority is not None:
        return PriorityClass(priority)
    raise TypeError(
        f"cannot determine the priority of a {type(item).__name__}")


@dataclass(frozen=True)
class ClassAggregate:
    """Sufficient statistics of one priority class at a multiplexing point.

    Both closed-form bounds only depend on the flow population through four
    per-class numbers — the burst sum, the rate sum, the largest individual
    burst and the flow count.  Aggregating once and evaluating the formulas
    on the aggregates turns an O(flows · classes) analysis into O(flows) +
    O(classes), which is what the campaign runner's memoization exploits.
    """

    #: Sum of the token-bucket bursts ``Σ b_i`` of the class (bits).
    burst: float
    #: Sum of the token-bucket rates ``Σ r_i`` of the class (bits/s).
    rate: float
    #: Largest individual burst of the class (bits) — the non-preemptive
    #: blocking a lower-priority packet of this class can inflict.
    max_burst: float
    #: Number of flows in the class.
    count: int

    def scaled(self, replication: int) -> "ClassAggregate":
        """The aggregate of the class replicated ``replication`` times.

        Replicating every flow multiplies the sums and the count but leaves
        the largest individual burst unchanged, so the scaled aggregate is
        exact — no need to materialise the replicated flow set.
        """
        if replication < 1:
            raise ValueError(
                f"replication must be at least 1, got {replication!r}")
        return ClassAggregate(
            burst=self.burst * replication,
            rate=self.rate * replication,
            max_burst=self.max_burst,
            count=self.count * replication)


def aggregate_from_arrays(arrays: MessageArrays
                          ) -> dict[PriorityClass, ClassAggregate]:
    """Per-class :class:`ClassAggregate` of a struct-of-arrays population.

    Vectorised counterpart of the per-flow loop: per-class masks select the
    columns, :func:`~repro.flows.arrays.sequential_sum` reduces them with
    the same left-to-right accumulation as the reference loop, so the
    aggregates are bit-identical.
    """
    aggregates: dict[PriorityClass, ClassAggregate] = {}
    for cls in arrays.present_classes():
        mask = arrays.class_mask(cls)
        bursts = arrays.bursts[mask]
        aggregates[cls] = ClassAggregate(
            burst=sequential_sum(bursts),
            rate=sequential_sum(arrays.rates[mask]),
            max_burst=float(bursts.max()),
            count=int(mask.sum()))
    return aggregates


def aggregate_flows(flows: Iterable[Flow | Message] | MessageSet |
                    MessageArrays
                    ) -> dict[PriorityClass, ClassAggregate]:
    """Per-class :class:`ClassAggregate` of a flow population.

    Only classes with at least one flow appear in the result; keys are
    ordered from most to least urgent.

    Fast paths: a :class:`MessageSet` is aggregated through its cached
    struct-of-arrays view; a lazily replicated set
    (:attr:`MessageSet.arithmetic_replication`) aggregates its base once
    and scales the sums by the replication factor without materialising the
    replicas (:meth:`ClassAggregate.scaled`).  Generic iterables of flows
    or messages take the per-item reference loop.
    """
    if isinstance(flows, MessageSet):
        replica = flows.arithmetic_replication
        if replica is not None:
            base, replication = replica
            return {cls: aggregate.scaled(replication)
                    for cls, aggregate in aggregate_flows(base).items()}
        return aggregate_from_arrays(flows.arrays())
    if isinstance(flows, MessageArrays):
        return aggregate_from_arrays(flows)
    bursts: dict[PriorityClass, float] = {}
    rates: dict[PriorityClass, float] = {}
    max_bursts: dict[PriorityClass, float] = {}
    counts: dict[PriorityClass, int] = {}
    for flow in flows:
        cls = priority_of(flow)
        burst = float(flow.burst)
        bursts[cls] = bursts.get(cls, 0.0) + burst
        rates[cls] = rates.get(cls, 0.0) + float(flow.rate)
        max_bursts[cls] = max(max_bursts.get(cls, 0.0), burst)
        counts[cls] = counts.get(cls, 0) + 1
    return {cls: ClassAggregate(burst=bursts[cls], rate=rates[cls],
                                max_burst=max_bursts[cls], count=counts[cls])
            for cls in sorted(bursts)}


@dataclass(frozen=True)
class MultiplexerBound:
    """A worst-case queuing-delay bound with its breakdown.

    Attributes
    ----------
    delay:
        The bound in seconds (including ``t_techno``).
    priority:
        The class the bound applies to, or ``None`` for the FCFS bound which
        applies to every packet regardless of class.
    burst_term:
        Total burst (bits) the tagged packet may have to wait for.
    blocking_term:
        Burst (bits) of the largest lower-priority packet (non-preemption);
        zero for FCFS.
    residual_rate:
        Rate (bits per second) at which that backlog is served.
    technology_delay:
        The ``t_techno`` term (seconds).
    flow_count:
        Number of flows contributing to the burst term.
    """

    delay: float
    priority: PriorityClass | None
    burst_term: float
    blocking_term: float
    residual_rate: float
    technology_delay: float
    flow_count: int
    details: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def queuing_delay(self) -> float:
        """The bound without the technology term (seconds)."""
        return self.delay - self.technology_delay


class FcfsMultiplexerAnalysis:
    """The paper's FCFS bound ``D = Σ b_i / C + t_techno``.

    Parameters
    ----------
    capacity:
        Output link capacity ``C`` in bits per second (10 Mbps in the paper).
    technology_delay:
        The ``t_techno`` bound on the relaying delay, in seconds.
    """

    def __init__(self, capacity: float, technology_delay: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if technology_delay < 0:
            raise ValueError(
                f"technology delay must be non-negative, "
                f"got {technology_delay!r}")
        self.capacity = float(capacity)
        self.technology_delay = float(technology_delay)

    # -- paper formula ---------------------------------------------------

    def bound(self, flows: Sequence[Flow | Message], *,
              strict: bool = True) -> MultiplexerBound:
        """Worst-case delay of any packet through the FCFS multiplexer.

        Raises
        ------
        EmptyAggregateError
            If ``flows`` is empty.
        UnstableSystemError
            If the aggregate rate exceeds the capacity and ``strict`` is
            ``True``; with ``strict=False`` the bound is still the paper's
            finite expression (the formula does not depend on the rates) but
            it is no longer a valid worst case, so the unstable flag is set
            in the details.
        """
        return self.bound_from_aggregates(aggregate_flows(flows),
                                          strict=strict)

    def bound_from_aggregates(self,
                              aggregates: Mapping[PriorityClass,
                                                  ClassAggregate], *,
                              strict: bool = True) -> MultiplexerBound:
        """:meth:`bound` evaluated on pre-computed per-class aggregates.

        This is the memoization-friendly entry point used by the campaign
        runner: the O(flows) aggregation is done once per flow population
        and the closed form is re-evaluated in O(classes) for every
        (capacity, technology-delay) combination.
        """
        if not any(a.count for a in aggregates.values()):
            raise EmptyAggregateError(
                "the FCFS bound needs at least one flow")
        total_burst = sum(a.burst for a in aggregates.values())
        total_rate = sum(a.rate for a in aggregates.values())
        unstable = total_rate > self.capacity
        if unstable and strict:
            raise UnstableSystemError(
                f"aggregate rate {total_rate:.0f} bps exceeds the link "
                f"capacity {self.capacity:.0f} bps: the FCFS bound does not "
                f"hold", offered_rate=total_rate, capacity=self.capacity)
        delay = total_burst / self.capacity + self.technology_delay
        return MultiplexerBound(
            delay=delay,
            priority=None,
            burst_term=total_burst,
            blocking_term=0.0,
            residual_rate=self.capacity,
            technology_delay=self.technology_delay,
            flow_count=sum(a.count for a in aggregates.values()),
            details={"total_rate": total_rate,
                     "utilization": total_rate / self.capacity,
                     "unstable": float(unstable)},
        )

    def class_bounds(self, flows: Sequence[Flow | Message], *,
                     strict: bool = True
                     ) -> dict[PriorityClass, MultiplexerBound]:
        """The FCFS bound reported per class.

        FCFS ignores priorities, so every class present in ``flows`` gets the
        same bound; classes with no flow are omitted.  This view is what
        Figure 1 plots on the FCFS side.
        """
        return self.class_bounds_from_aggregates(aggregate_flows(flows),
                                                 strict=strict)

    def class_bounds_from_aggregates(
            self, aggregates: Mapping[PriorityClass, ClassAggregate], *,
            strict: bool = True) -> dict[PriorityClass, MultiplexerBound]:
        """:meth:`class_bounds` evaluated on pre-computed aggregates."""
        bound = self.bound_from_aggregates(aggregates, strict=strict)
        return {cls: bound for cls in sorted(aggregates)
                if aggregates[cls].count}

    # -- composition helpers ----------------------------------------------

    def aggregate_arrival_curve(
            self, flows: Sequence[Flow | Message] | MessageSet
            ) -> TokenBucketArrivalCurve:
        """Token-bucket curve of the aggregate entering the multiplexer."""
        if isinstance(flows, MessageSet):
            if not len(flows):
                raise EmptyAggregateError("empty aggregate")
            return TokenBucketArrivalCurve(
                bucket=flows.total_burst(), token_rate=flows.total_rate())
        flows = list(flows)
        if not flows:
            raise EmptyAggregateError("empty aggregate")
        return TokenBucketArrivalCurve(
            bucket=sum(float(f.burst) for f in flows),
            token_rate=sum(float(f.rate) for f in flows))

    def service_curve(self) -> RateLatencyServiceCurve:
        """Service offered to the aggregate: rate ``C`` after ``t_techno``."""
        return RateLatencyServiceCurve(rate=self.capacity,
                                       delay=self.technology_delay)


class StrictPriorityMultiplexerAnalysis:
    """The paper's four-queue strict-priority (802.1p) bound ``D_p``.

    Parameters
    ----------
    capacity:
        Output link capacity ``C`` in bits per second.
    technology_delay:
        The ``t_techno`` bound on the relaying delay, in seconds.
    preemptive:
        The paper's multiplexer is non-preemptive: a lower-priority packet
        already in transmission blocks a newly arrived urgent packet, hence
        the ``max_{q > p} b_j`` term.  Setting ``preemptive=True`` drops that
        term (used by the ablation study to quantify the blocking cost).
    """

    def __init__(self, capacity: float, technology_delay: float = 0.0,
                 *, preemptive: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if technology_delay < 0:
            raise ValueError(
                f"technology delay must be non-negative, "
                f"got {technology_delay!r}")
        self.capacity = float(capacity)
        self.technology_delay = float(technology_delay)
        self.preemptive = bool(preemptive)

    # -- grouping ----------------------------------------------------------

    @staticmethod
    def group_by_class(flows: Iterable[Flow | Message]
                       ) -> dict[PriorityClass, list[Flow | Message]]:
        """Group flows by 802.1p class; every class is present in the result."""
        grouped: dict[PriorityClass, list[Flow | Message]] = {
            cls: [] for cls in PriorityClass}
        for flow in flows:
            grouped[priority_of(flow)].append(flow)
        return grouped

    # -- paper formula -----------------------------------------------------

    def bound_for_class(self, flows: Sequence[Flow | Message],
                        priority: PriorityClass, *,
                        strict: bool = True) -> MultiplexerBound:
        """Worst-case delay of a packet of class ``priority``.

        Implements exactly the paper's formula: the numerator sums the bursts
        of every flow of equal or higher priority and adds the largest burst
        among strictly lower-priority flows (non-preemptive blocking); the
        denominator is the capacity left after serving the long-term rate of
        strictly higher-priority flows.

        Raises
        ------
        EmptyAggregateError
            If no flow of class ``priority`` traverses the multiplexer.
        UnstableSystemError
            If the higher-priority rates saturate the link (the denominator
            is not positive), or — in strict mode — if the equal-or-higher
            aggregate rate exceeds the capacity, which would make the finite
            expression meaningless.
        """
        priority = PriorityClass(priority)
        return self.bound_for_class_from_aggregates(
            aggregate_flows(flows), priority, strict=strict)

    def bound_for_class_from_aggregates(
            self, aggregates: Mapping[PriorityClass, ClassAggregate],
            priority: PriorityClass, *,
            strict: bool = True) -> MultiplexerBound:
        """:meth:`bound_for_class` evaluated on pre-computed aggregates.

        Like :meth:`FcfsMultiplexerAnalysis.bound_from_aggregates`, this is
        the O(classes) closed form the campaign runner re-evaluates for every
        (capacity, technology-delay) combination without revisiting the
        flows.
        """
        priority = PriorityClass(priority)
        tagged = aggregates.get(priority)
        if tagged is None or not tagged.count:
            raise EmptyAggregateError(
                f"no flow of class {priority.name} traverses the multiplexer")

        burst_term = sum(a.burst for cls, a in aggregates.items()
                         if cls <= priority)
        blocking_term = 0.0 if self.preemptive else safe_max(
            (a.max_burst for cls, a in aggregates.items()
             if cls > priority and a.count), default=0.0)
        higher_rate = sum(a.rate for cls, a in aggregates.items()
                          if cls < priority)
        residual_rate = self.capacity - higher_rate

        if residual_rate <= 0:
            raise UnstableSystemError(
                f"higher-priority traffic ({higher_rate:.0f} bps) saturates "
                f"the {self.capacity:.0f} bps link: class {priority.name} "
                f"has no residual capacity",
                offered_rate=higher_rate, capacity=self.capacity)

        higher_or_equal_rate = sum(a.rate for cls, a in aggregates.items()
                                   if cls <= priority)
        unstable = higher_or_equal_rate > self.capacity
        if unstable and strict:
            raise UnstableSystemError(
                f"classes up to {priority.name} offer "
                f"{higher_or_equal_rate:.0f} bps which exceeds the link "
                f"capacity {self.capacity:.0f} bps",
                offered_rate=higher_or_equal_rate, capacity=self.capacity)

        delay = ((burst_term + blocking_term) / residual_rate
                 + self.technology_delay)
        return MultiplexerBound(
            delay=delay,
            priority=priority,
            burst_term=burst_term,
            blocking_term=blocking_term,
            residual_rate=residual_rate,
            technology_delay=self.technology_delay,
            flow_count=sum(a.count for cls, a in aggregates.items()
                           if cls <= priority),
            details={"higher_rate": higher_rate,
                     "higher_or_equal_rate": higher_or_equal_rate,
                     "utilization": higher_or_equal_rate / self.capacity,
                     "unstable": float(unstable)},
        )

    def class_bounds(self, flows: Sequence[Flow | Message], *,
                     strict: bool = True
                     ) -> dict[PriorityClass, MultiplexerBound]:
        """The ``D_p`` bound of every class that has at least one flow."""
        return self.class_bounds_from_aggregates(aggregate_flows(flows),
                                                 strict=strict)

    def class_bounds_from_aggregates(
            self, aggregates: Mapping[PriorityClass, ClassAggregate], *,
            strict: bool = True) -> dict[PriorityClass, MultiplexerBound]:
        """:meth:`class_bounds` evaluated on pre-computed aggregates."""
        bounds: dict[PriorityClass, MultiplexerBound] = {}
        for cls in PriorityClass:
            aggregate = aggregates.get(cls)
            if aggregate is not None and aggregate.count:
                bounds[cls] = self.bound_for_class_from_aggregates(
                    aggregates, cls, strict=strict)
        if not bounds:
            raise EmptyAggregateError(
                "the strict-priority bound needs at least one flow")
        return bounds

    # -- composition helpers -------------------------------------------------

    def residual_service_curve(self, flows: Sequence[Flow | Message],
                               priority: PriorityClass
                               ) -> RateLatencyServiceCurve:
        """Rate-latency service curve seen by class ``priority``.

        The class is served at the residual rate ``C − Σ_{q<p} r_i`` after a
        latency covering the lower-priority blocking and ``t_techno``.  Using
        this curve with the class's aggregate token bucket reproduces the
        ``D_p`` bound, and it is what the end-to-end analysis composes along
        a path.
        """
        priority = PriorityClass(priority)
        return self.residual_service_curve_from_aggregates(
            aggregate_flows(flows), priority)

    def residual_service_curve_from_aggregates(
            self, aggregates: Mapping[PriorityClass, ClassAggregate],
            priority: PriorityClass) -> RateLatencyServiceCurve:
        """:meth:`residual_service_curve` evaluated on pre-computed aggregates."""
        priority = PriorityClass(priority)
        higher_rate = sum(a.rate for cls, a in aggregates.items()
                          if cls < priority)
        residual_rate = self.capacity - higher_rate
        if residual_rate <= 0:
            raise UnstableSystemError(
                f"higher-priority traffic saturates the link for class "
                f"{priority.name}", offered_rate=higher_rate,
                capacity=self.capacity)
        blocking = 0.0 if self.preemptive else safe_max(
            (a.max_burst for cls, a in aggregates.items()
             if cls > priority and a.count), default=0.0)
        latency = blocking / residual_rate + self.technology_delay
        return RateLatencyServiceCurve(rate=residual_rate, delay=latency)


# ---------------------------------------------------------------------------
# The closed forms, as pure functions of the aggregates
# ---------------------------------------------------------------------------
# Shared by every consumer of the formulas — the paper-model case study, the
# campaign runner's memoized and naive modes, the scalability sweep — so the
# different entry points can never drift apart formula-wise.  ``policy`` is
# "fcfs" or "strict-priority" (see repro.campaigns.scenario.POLICIES).

def compute_class_bounds(aggregates: Mapping[PriorityClass, ClassAggregate],
                         capacity: float, technology_delay: float,
                         policy: str
                         ) -> dict[PriorityClass, MultiplexerBound | None]:
    """Single-point per-class bounds; ``None`` marks a saturated class.

    Evaluated with ``strict=False`` — overloaded populations yield bounds
    flagged unstable in their details (or ``None`` when the class has no
    residual capacity at all) instead of raising, which is the shared
    "unbounded row" convention of the campaign runner and Figure 1.
    """
    bounds: dict[PriorityClass, MultiplexerBound | None] = {}
    if policy == "fcfs":
        analysis = FcfsMultiplexerAnalysis(
            capacity=capacity, technology_delay=technology_delay)
        fcfs = analysis.bound_from_aggregates(aggregates, strict=False)
        return {cls: fcfs for cls, a in aggregates.items() if a.count}
    analysis = StrictPriorityMultiplexerAnalysis(
        capacity=capacity, technology_delay=technology_delay)
    for cls, aggregate in aggregates.items():
        if not aggregate.count:
            continue
        try:
            bounds[cls] = analysis.bound_for_class_from_aggregates(
                aggregates, cls, strict=False)
        except UnstableSystemError:
            bounds[cls] = None
    return bounds


def compute_arrival_curve(aggregates: Mapping[PriorityClass, ClassAggregate],
                          up_to: PriorityClass | None
                          ) -> TokenBucketArrivalCurve:
    """Token-bucket curve of the aggregate of classes ``<= up_to``."""
    included = [a for cls, a in aggregates.items()
                if up_to is None or cls <= up_to]
    return TokenBucketArrivalCurve(
        bucket=sum(a.burst for a in included),
        token_rate=sum(a.rate for a in included))


def compute_service_curve(aggregates: Mapping[PriorityClass, ClassAggregate],
                          capacity: float, technology_delay: float,
                          policy: str, priority: PriorityClass | None
                          ) -> RateLatencyServiceCurve:
    """Per-hop service curve seen by ``priority`` under ``policy``."""
    if policy == "fcfs":
        return RateLatencyServiceCurve(rate=capacity,
                                       delay=technology_delay)
    analysis = StrictPriorityMultiplexerAnalysis(
        capacity=capacity, technology_delay=technology_delay)
    return analysis.residual_service_curve_from_aggregates(
        aggregates, priority)
