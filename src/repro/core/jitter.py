"""Analytic jitter bounds (the paper's announced future work).

The conclusion of the paper targets *jitter* as the next QoS guarantee to
study.  With the same Network-Calculus machinery the delivery jitter of a
flow through a multiplexer is bounded by the difference between its
worst-case and best-case delays:

* the **worst case** is the paper's FCFS or strict-priority bound,
* the **best case** is the un-contended path: the flow's own serialisation
  time at the link rate plus the relaying delay (``t_techno`` being a bound,
  the best case conservatively assumes zero relaying delay).

The resulting per-class jitter bound is what a system integrator would use to
dimension de-jittering buffers at the receivers; the simulation-based jitter
measurements of :mod:`repro.analysis.jitter` must stay below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.multiplexer import (
    FcfsMultiplexerAnalysis,
    StrictPriorityMultiplexerAnalysis,
    priority_of,
)
from repro.errors import EmptyAggregateError
from repro.flows.flow import Flow
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass

__all__ = ["JitterBound", "JitterAnalysis"]


@dataclass(frozen=True)
class JitterBound:
    """Worst-case delivery jitter of one priority class."""

    priority: PriorityClass
    #: Worst-case delay of the class (seconds).
    worst_case_delay: float
    #: Best-case delay of the class (seconds) — the smallest un-contended
    #: delivery time of any flow in the class.
    best_case_delay: float

    @property
    def jitter(self) -> float:
        """The jitter bound: worst-case minus best-case delay (seconds)."""
        return self.worst_case_delay - self.best_case_delay


class JitterAnalysis:
    """Per-class jitter bounds under the two multiplexing policies.

    Parameters
    ----------
    capacity:
        Output link capacity ``C`` in bits per second.
    technology_delay:
        Bound on the relaying delay (only charged to the worst case).
    """

    def __init__(self, capacity: float, technology_delay: float = 0.0) -> None:
        self._fcfs = FcfsMultiplexerAnalysis(capacity, technology_delay)
        self._priority = StrictPriorityMultiplexerAnalysis(capacity,
                                                           technology_delay)
        self.capacity = float(capacity)

    def _best_case_per_class(self, flows: Sequence[Flow | Message]
                             ) -> dict[PriorityClass, float]:
        """Smallest un-contended delivery time of any flow, per class."""
        best: dict[PriorityClass, float] = {}
        for flow in flows:
            cls = priority_of(flow)
            delay = float(flow.burst) / self.capacity
            if cls not in best or delay < best[cls]:
                best[cls] = delay
        if not best:
            raise EmptyAggregateError(
                "jitter analysis needs at least one flow")
        return best

    def fcfs_bounds(self, flows: Sequence[Flow | Message]
                    ) -> dict[PriorityClass, JitterBound]:
        """Jitter bound of every populated class under FCFS multiplexing."""
        worst = self._fcfs.bound(flows).delay
        return {cls: JitterBound(priority=cls, worst_case_delay=worst,
                                 best_case_delay=best)
                for cls, best in sorted(self._best_case_per_class(flows).items())}

    def priority_bounds(self, flows: Sequence[Flow | Message]
                        ) -> dict[PriorityClass, JitterBound]:
        """Jitter bound of every populated class under strict priorities."""
        class_bounds = self._priority.class_bounds(flows)
        best_case = self._best_case_per_class(flows)
        return {cls: JitterBound(priority=cls,
                                 worst_case_delay=class_bounds[cls].delay,
                                 best_case_delay=best_case[cls])
                for cls in sorted(class_bounds)}
