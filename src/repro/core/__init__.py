"""The paper's primary contribution: worst-case delay analysis.

``repro.core`` contains:

* :mod:`repro.core.netcalc` — a small Network Calculus toolbox (arrival
  curves, service curves, min-plus operations, delay/backlog bounds) in the
  spirit of Cruz's calculus the paper builds on,
* :mod:`repro.core.multiplexer` — the two closed-form multiplexer bounds of
  the paper: the FCFS bound ``D = Σ b_i / C + t_techno`` and the four-queue
  strict-priority bound ``D_p``,
* :mod:`repro.core.endtoend` — composition of the per-hop bounds along a
  flow's route through the switched network, plus deadline checking.
"""

from repro.core.netcalc import (
    ArrivalCurve,
    TokenBucketArrivalCurve,
    StairArrivalCurve,
    AggregateArrivalCurve,
    ServiceCurve,
    ConstantRateServiceCurve,
    RateLatencyServiceCurve,
    backlog_bound,
    delay_bound,
    output_arrival_curve,
)
from repro.core.multiplexer import (
    ClassAggregate,
    FcfsMultiplexerAnalysis,
    MultiplexerBound,
    StrictPriorityMultiplexerAnalysis,
    aggregate_flows,
)
from repro.core.endtoend import (
    EndToEndAnalysis,
    FlowBound,
    NetworkAnalysisResult,
)
from repro.core.jitter import JitterAnalysis, JitterBound

__all__ = [
    "ArrivalCurve",
    "TokenBucketArrivalCurve",
    "StairArrivalCurve",
    "AggregateArrivalCurve",
    "ServiceCurve",
    "ConstantRateServiceCurve",
    "RateLatencyServiceCurve",
    "delay_bound",
    "backlog_bound",
    "output_arrival_curve",
    "FcfsMultiplexerAnalysis",
    "StrictPriorityMultiplexerAnalysis",
    "MultiplexerBound",
    "ClassAggregate",
    "aggregate_flows",
    "EndToEndAnalysis",
    "FlowBound",
    "NetworkAnalysisResult",
    "JitterAnalysis",
    "JitterBound",
]
