"""End-to-end worst-case delay analysis over a routed network.

The paper evaluates a single multiplexing point (the station's egress
multiplexer, with the switch relaying delay folded into ``t_techno``).  This
module generalises that analysis to an arbitrary routed topology by walking
every flow's path and summing, for every *directed hop* ``(u, v)``:

* the worst-case queuing delay of the multiplexer at ``u``'s egress port
  toward ``v`` — computed with the paper's FCFS or strict-priority formula
  applied to the set of flows sharing that port,
* the link propagation delay of ``(u, v)``.

Switch egress ports additionally pay the switch's relaying-delay bound
``t_techno``.  The multiplexer bound already contains the serialisation of
the tagged packet (its own burst is part of the burst term), so no separate
transmission term is added.

Because a flow's burst grows as it accumulates jitter upstream (a token
bucket ``(b, r)`` delayed by at most ``D`` is constrained by
``(b + r D, r)`` downstream), the analysis optionally propagates bursts hop
by hop (``burst_propagation=True``, the default).  Disabling it reproduces
the paper's simpler single-hop accounting where original source bursts are
used everywhere.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.core.multiplexer import (
    FcfsMultiplexerAnalysis,
    MultiplexerBound,
    StrictPriorityMultiplexerAnalysis,
)
from repro.errors import AnalysisError, InvalidFlowError
from repro.flows.flow import Flow
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass
from repro.topology.network import Network

__all__ = [
    "HopBound",
    "FlowBound",
    "NetworkAnalysisResult",
    "EndToEndAnalysis",
]

Policy = Literal["fcfs", "strict-priority"]


@dataclass(frozen=True)
class HopBound:
    """Worst-case delay contribution of one directed hop of a flow's path."""

    #: Node whose egress multiplexer the flow crosses.
    node: str
    #: Next node on the path (identifies the egress port).
    toward: str
    #: Queuing + relaying bound at this multiplexer (seconds).
    queuing_delay: float
    #: Propagation delay of the link (seconds).
    propagation_delay: float
    #: Full multiplexer bound with its breakdown.
    multiplexer_bound: MultiplexerBound

    @property
    def total(self) -> float:
        """Queuing plus propagation delay of this hop (seconds)."""
        return self.queuing_delay + self.propagation_delay


@dataclass(frozen=True)
class FlowBound:
    """End-to-end worst-case delay bound of one flow."""

    flow: Flow
    hops: tuple[HopBound, ...]

    @property
    def name(self) -> str:
        """Flow name."""
        return self.flow.name

    @property
    def priority(self) -> PriorityClass:
        """The flow's 802.1p class."""
        return self.flow.priority

    @property
    def deadline(self) -> float | None:
        """Requested maximal response time (seconds), if any."""
        return self.flow.deadline

    @property
    def total_delay(self) -> float:
        """End-to-end worst-case delay bound (seconds)."""
        return sum(hop.total for hop in self.hops)

    @property
    def meets_deadline(self) -> bool:
        """True when the bound does not exceed the deadline (or none is set)."""
        if self.deadline is None:
            return True
        return self.total_delay <= self.deadline

    @property
    def margin(self) -> float | None:
        """Deadline minus bound (seconds); negative means a violation."""
        if self.deadline is None:
            return None
        return self.deadline - self.total_delay


@dataclass
class NetworkAnalysisResult:
    """The per-flow bounds produced by one run of the analysis."""

    policy: str
    flow_bounds: list[FlowBound] = field(default_factory=list)

    def __iter__(self):
        return iter(self.flow_bounds)

    def __len__(self) -> int:
        return len(self.flow_bounds)

    def bound_for(self, flow_name: str) -> FlowBound:
        """The bound of the flow called ``flow_name``."""
        for bound in self.flow_bounds:
            if bound.name == flow_name:
                return bound
        raise KeyError(flow_name)

    def violations(self) -> list[FlowBound]:
        """Flows whose bound exceeds their deadline."""
        return [b for b in self.flow_bounds if not b.meets_deadline]

    @property
    def all_deadlines_met(self) -> bool:
        """True when no flow violates its deadline."""
        return not self.violations()

    def worst_per_class(self) -> dict[PriorityClass, FlowBound]:
        """For every class with at least one flow, the flow with the largest bound."""
        worst: dict[PriorityClass, FlowBound] = {}
        for bound in self.flow_bounds:
            current = worst.get(bound.priority)
            if current is None or bound.total_delay > current.total_delay:
                worst[bound.priority] = bound
        return worst

    def max_delay(self) -> float:
        """Largest end-to-end bound over all flows (seconds)."""
        if not self.flow_bounds:
            raise AnalysisError("the analysis produced no flow bound")
        return max(b.total_delay for b in self.flow_bounds)


class EndToEndAnalysis:
    """Compute per-flow end-to-end delay bounds over a routed network.

    Parameters
    ----------
    network:
        The topology (stations, switches, links).
    policy:
        ``"fcfs"`` for the plain FCFS multiplexer at every egress port, or
        ``"strict-priority"`` for the four-queue 802.1p multiplexer.
    burst_propagation:
        When ``True`` (default) a flow's token-bucket burst is inflated hop
        by hop by the jitter it may have accumulated upstream
        (``b → b + r · D_upstream``), which is required for the multi-hop
        bounds to be valid.  When ``False`` the original source bursts are
        used at every hop, reproducing the paper's single-hop accounting.
    station_technology_delay:
        Fixed processing bound added at the *station* egress multiplexer
        (seconds).  The paper folds the whole relaying budget into the node's
        ``t_techno``; the default here is zero because switch egress ports
        already account for their own relaying delay.
    """

    def __init__(self, network: Network, policy: Policy = "strict-priority",
                 *, burst_propagation: bool = True,
                 station_technology_delay: float = 0.0) -> None:
        if policy not in ("fcfs", "strict-priority"):
            raise ValueError(
                f"policy must be 'fcfs' or 'strict-priority', got {policy!r}")
        self.network = network
        self.policy = policy
        self.burst_propagation = burst_propagation
        self.station_technology_delay = float(station_technology_delay)

    # -- public API ---------------------------------------------------------

    def analyze(self, flows: Iterable[Flow | Message],
                *, max_iterations: int = 16) -> NetworkAnalysisResult:
        """Compute the end-to-end bound of every flow.

        Messages are routed automatically through the network; flows that
        already carry a path keep it.

        Raises
        ------
        InvalidFlowError
            If a flow's path does not exist in the network.
        UnstableSystemError
            If some multiplexing point is overloaded.
        """
        routed = self._route(flows)
        if not routed:
            return NetworkAnalysisResult(policy=self.policy)

        # Upstream delay accumulated by each flow before each hop index.
        upstream_delay: dict[str, list[float]] = {
            flow.name: [0.0] * len(flow.hops()) for flow in routed}

        hop_bounds: dict[str, list[HopBound]] = {}
        for _ in range(max_iterations if self.burst_propagation else 1):
            hop_bounds = self._single_pass(routed, upstream_delay)
            new_upstream = self._accumulate_upstream(routed, hop_bounds)
            if new_upstream == upstream_delay:
                break
            upstream_delay = new_upstream

        result = NetworkAnalysisResult(policy=self.policy)
        for flow in routed:
            result.flow_bounds.append(
                FlowBound(flow=flow, hops=tuple(hop_bounds[flow.name])))
        return result

    # -- internals ------------------------------------------------------------

    def _route(self, flows: Iterable[Flow | Message]) -> list[Flow]:
        routed: list[Flow] = []
        for flow in flows:
            if isinstance(flow, Message):
                routed.append(self.network.route_flow(flow))
            elif isinstance(flow, Flow):
                routed.append(flow if flow.path
                              else self.network.route_flow(flow))
            else:
                raise InvalidFlowError(
                    f"cannot analyse a {type(flow).__name__}")
        return routed

    def _multiplexer(self, node: str, toward: str):
        """The analysis object for the egress port of ``node`` toward ``toward``."""
        link = self.network.link(node, toward)
        if self.network.is_switch(node):
            technology_delay = self.network.technology_delay(node)
        else:
            technology_delay = self.station_technology_delay
        if self.policy == "fcfs":
            return FcfsMultiplexerAnalysis(
                capacity=link.capacity, technology_delay=technology_delay)
        return StrictPriorityMultiplexerAnalysis(
            capacity=link.capacity, technology_delay=technology_delay)

    def _single_pass(self, routed: Sequence[Flow],
                     upstream_delay: dict[str, list[float]]
                     ) -> dict[str, list[HopBound]]:
        """Compute every hop bound given the current upstream-delay estimates."""
        # Group (flow, hop index) pairs by directed hop.
        per_port: dict[tuple[str, str], list[tuple[Flow, int]]] = defaultdict(list)
        for flow in routed:
            for index, (node, toward) in enumerate(flow.hops()):
                per_port[(node, toward)].append((flow, index))

        # Per-port effective flow descriptions (burst possibly inflated).
        port_bounds: dict[tuple[str, str], dict[str, MultiplexerBound]] = {}
        for (node, toward), members in per_port.items():
            multiplexer = self._multiplexer(node, toward)
            effective = [
                _EffectiveFlow.from_flow(
                    flow,
                    extra_burst=(flow.rate * upstream_delay[flow.name][index]
                                 if self.burst_propagation else 0.0))
                for flow, index in members]
            if self.policy == "fcfs":
                bound = multiplexer.bound(effective)
                port_bounds[(node, toward)] = {
                    flow.name: bound for flow, __ in members}
            else:
                class_bounds = multiplexer.class_bounds(effective)
                port_bounds[(node, toward)] = {
                    flow.name: class_bounds[flow.priority]
                    for flow, __ in members}

        hop_bounds: dict[str, list[HopBound]] = {}
        for flow in routed:
            bounds: list[HopBound] = []
            for node, toward in flow.hops():
                link = self.network.link(node, toward)
                mux_bound = port_bounds[(node, toward)][flow.name]
                bounds.append(HopBound(
                    node=node, toward=toward,
                    queuing_delay=mux_bound.delay,
                    propagation_delay=link.propagation_delay,
                    multiplexer_bound=mux_bound))
            hop_bounds[flow.name] = bounds
        return hop_bounds

    @staticmethod
    def _accumulate_upstream(routed: Sequence[Flow],
                             hop_bounds: dict[str, list[HopBound]]
                             ) -> dict[str, list[float]]:
        """Upstream delay of every flow before each of its hops."""
        upstream: dict[str, list[float]] = {}
        for flow in routed:
            acc = 0.0
            delays = []
            for hop in hop_bounds[flow.name]:
                delays.append(acc)
                acc += hop.total
            upstream[flow.name] = delays
        return upstream


@dataclass(frozen=True)
class _EffectiveFlow:
    """A flow as seen at one multiplexing point (burst possibly inflated)."""

    name: str
    burst: float
    rate: float
    priority: PriorityClass

    @classmethod
    def from_flow(cls, flow: Flow, extra_burst: float = 0.0) -> "_EffectiveFlow":
        return cls(name=flow.name, burst=flow.burst + extra_burst,
                   rate=flow.rate, priority=flow.priority)
