"""Min-plus operations on curves.

Network Calculus composes elements with the min-plus convolution and extracts
output constraints with the min-plus deconvolution:

* ``(f ⊗ g)(t) = inf_{0 <= s <= t} [ f(s) + g(t - s) ]`` — the service curve
  of two elements in tandem is the convolution of their service curves,
* ``(f ⊘ g)(t) = sup_{s >= 0} [ f(t + s) - g(s) ]`` — the arrival curve of a
  flow at the output of an element is the deconvolution of its input arrival
  curve by the element's service curve.

For the curve families used in this library closed forms exist
(:func:`convolve_rate_latency`, and the token-bucket deconvolution in
:func:`repro.core.netcalc.bounds.output_arrival_curve`); the generic numeric
versions below work on arbitrary callables and are used by the property-based
tests to check the closed forms.

The numeric versions are vectorised: a curve that accepts a numpy array of
interval lengths (every curve class in :mod:`repro.core.netcalc` does) is
evaluated on the whole sample grid in one call; plain scalar callables fall
back to a per-sample loop transparently.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.netcalc.service import RateLatencyServiceCurve

__all__ = [
    "min_plus_convolution",
    "min_plus_deconvolution",
    "convolve_rate_latency",
]

Curve = Callable[[float], float]


def _sample_curve(curve: Curve, points: np.ndarray) -> np.ndarray:
    """Evaluate ``curve`` on every point, vectorised when supported.

    Array-aware curves are called once with the whole grid; anything that
    rejects the array (or returns something of the wrong shape) is
    evaluated point by point, reproducing the scalar reference loop.
    """
    try:
        values = np.asarray(curve(points), dtype=float)
        if values.shape == points.shape:
            return values
    except Exception:
        pass
    return np.array([curve(float(point)) for point in points], dtype=float)


def min_plus_convolution(f: Curve, g: Curve, interval: float,
                         samples: int = 2048) -> float:
    """Numerically evaluate ``(f ⊗ g)(interval)``.

    The infimum over ``s in [0, interval]`` is approximated on a regular grid
    of ``samples + 1`` points.  For the piecewise-linear curves used in this
    library the infimum is attained either at a grid point or between two
    adjacent ones, so the approximation error vanishes as ``samples`` grows;
    the property tests use it only as an upper bound of the true infimum.
    """
    if interval < 0:
        raise ValueError(f"interval must be non-negative, got {interval!r}")
    if interval == 0:
        return f(0.0) + g(0.0)
    split = np.linspace(0.0, interval, samples + 1)
    values = _sample_curve(f, split) + _sample_curve(g, interval - split)
    return float(values.min())


def min_plus_deconvolution(f: Curve, g: Curve, interval: float,
                           horizon: float, samples: int = 2048) -> float:
    """Numerically evaluate ``(f ⊘ g)(interval)`` with the sup truncated.

    The supremum over ``s >= 0`` is approximated over ``s in [0, horizon]``;
    ``horizon`` must be chosen large enough that the supremum is attained
    inside it (for a token bucket deconvolved by a rate-latency curve with
    ``r < R`` the supremum is attained at ``s = T``, so any
    ``horizon >= T`` is sufficient).
    """
    if interval < 0:
        raise ValueError(f"interval must be non-negative, got {interval!r}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon!r}")
    split = np.linspace(0.0, horizon, samples + 1)
    values = _sample_curve(f, interval + split) - _sample_curve(g, split)
    return float(values.max())


def convolve_rate_latency(
        first: RateLatencyServiceCurve,
        second: RateLatencyServiceCurve) -> RateLatencyServiceCurve:
    """Closed-form convolution of two rate-latency service curves.

    The tandem of two rate-latency servers ``(R1, T1)`` and ``(R2, T2)``
    offers the rate-latency service curve ``(min(R1, R2), T1 + T2)``.  This
    is how the end-to-end analysis composes the source multiplexer with the
    switch output ports along a flow's path.
    """
    return RateLatencyServiceCurve(
        rate=min(first.rate, second.rate),
        delay=first.delay + second.delay,
    )
