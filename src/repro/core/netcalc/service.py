"""Service curves.

A *service curve* ``beta`` lower-bounds the service a network element offers
to a flow (or flow aggregate): over any backlogged period of length ``t`` the
element serves at least ``beta(t)`` bits.

Two families cover every element in the paper's model:

* :class:`ConstantRateServiceCurve` — a full-duplex Ethernet link of capacity
  ``C`` dedicates its whole rate to the traffic queued on it: ``beta(t) = C t``.
* :class:`RateLatencyServiceCurve` — ``beta(t) = R * max(0, t - T)``; the
  latency term ``T`` absorbs fixed delays such as the switch relaying bound
  ``t_techno`` of the paper, or the blocking caused by lower-priority frames
  in the strict-priority multiplexer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import CurveDomainError

__all__ = [
    "ServiceCurve",
    "ConstantRateServiceCurve",
    "RateLatencyServiceCurve",
]


@runtime_checkable
class ServiceCurve(Protocol):
    """Protocol every service curve implements."""

    def __call__(self, interval: float) -> float:
        """Minimal service (bits) guaranteed over a window of ``interval`` s."""
        ...

    @property
    def service_rate(self) -> float:
        """Long-term service rate (bits per second)."""
        ...

    @property
    def latency(self) -> float:
        """Largest ``t`` with ``beta(t) = 0`` (seconds)."""
        ...


def _check_interval(interval: float | np.ndarray) -> None:
    negative = (bool(np.any(interval < 0))
                if isinstance(interval, np.ndarray) else interval < 0)
    if negative:
        raise CurveDomainError(
            f"service curves are defined for non-negative intervals, "
            f"got {interval!r}")


@dataclass(frozen=True)
class ConstantRateServiceCurve:
    """``beta(t) = C t`` — a work-conserving link of capacity ``C``."""

    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise CurveDomainError(
                f"link capacity must be positive, got {self.capacity!r}")

    def __call__(self, interval: float | np.ndarray) -> float | np.ndarray:
        _check_interval(interval)
        return self.capacity * interval

    @property
    def service_rate(self) -> float:
        """The link capacity ``C`` (bits per second)."""
        return self.capacity

    @property
    def latency(self) -> float:
        """A constant-rate server has zero latency."""
        return 0.0

    def with_latency(self, latency: float) -> "RateLatencyServiceCurve":
        """Degrade the link into a rate-latency curve with the given latency."""
        return RateLatencyServiceCurve(rate=self.capacity, delay=latency)


@dataclass(frozen=True)
class RateLatencyServiceCurve:
    """``beta(t) = R * max(0, t - T)`` — rate ``R`` after a latency ``T``."""

    rate: float
    delay: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise CurveDomainError(
                f"service rate must be positive, got {self.rate!r}")
        if self.delay < 0:
            raise CurveDomainError(
                f"service latency must be non-negative, got {self.delay!r}")

    def __call__(self, interval: float | np.ndarray) -> float | np.ndarray:
        """``R * max(0, t - T)``; accepts a scalar or an array of lengths."""
        _check_interval(interval)
        return self.rate * np.maximum(0.0, interval - self.delay)

    @property
    def service_rate(self) -> float:
        """The rate ``R`` (bits per second)."""
        return self.rate

    @property
    def latency(self) -> float:
        """The latency ``T`` (seconds)."""
        return self.delay
