"""Delay, backlog and output bounds.

Given an arrival curve ``alpha`` and a service curve ``beta``, Network
Calculus gives three fundamental bounds:

* the **delay bound** is the horizontal deviation
  ``h(alpha, beta) = sup_t inf { d >= 0 : alpha(t) <= beta(t + d) }``,
* the **backlog bound** is the vertical deviation
  ``v(alpha, beta) = sup_t [ alpha(t) - beta(t) ]``,
* the **output arrival curve** is the deconvolution ``alpha ⊘ beta``.

Closed forms are used whenever the curve types allow it (token bucket vs.
rate-latency / constant-rate); the generic numeric fallbacks handle any
callable pair and are cross-checked against the closed forms by the property
tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.netcalc.arrival import (
    AggregateArrivalCurve,
    StairArrivalCurve,
    TokenBucketArrivalCurve,
)
from repro.core.netcalc.service import (
    ConstantRateServiceCurve,
    RateLatencyServiceCurve,
)
from repro.errors import UnstableSystemError

__all__ = [
    "delay_bound",
    "backlog_bound",
    "horizontal_deviation",
    "vertical_deviation",
    "output_arrival_curve",
]

Curve = Callable[[float], float]


def _long_term_rate(curve: Curve) -> float | None:
    """The ``rate`` attribute of a curve, if it exposes one."""
    rate = getattr(curve, "rate", None)
    if rate is None:
        return None
    return float(rate)


def _service_rate_and_latency(curve: Curve) -> tuple[float, float] | None:
    """Return (rate, latency) for known service-curve types, else ``None``."""
    if isinstance(curve, ConstantRateServiceCurve):
        return curve.capacity, 0.0
    if isinstance(curve, RateLatencyServiceCurve):
        return curve.rate, curve.delay
    return None


def _check_stability(arrival: Curve, service: Curve, strict: bool) -> None:
    """Raise :class:`UnstableSystemError` when the long-term rates cross."""
    arrival_rate = _long_term_rate(arrival)
    params = _service_rate_and_latency(service)
    if arrival_rate is None or params is None:
        return
    service_rate = params[0]
    if strict and arrival_rate > service_rate:
        raise UnstableSystemError(
            f"offered rate {arrival_rate:.0f} bps exceeds the service rate "
            f"{service_rate:.0f} bps: the delay bound is infinite",
            offered_rate=arrival_rate, capacity=service_rate)


def delay_bound(arrival: Curve, service: Curve, *, strict: bool = True,
                horizon: float | None = None, samples: int = 4096) -> float:
    """Worst-case delay bound ``h(alpha, beta)``.

    Parameters
    ----------
    arrival:
        The arrival curve of the flow (or aggregate) entering the element.
    service:
        The service curve the element offers to that traffic.
    strict:
        When ``True`` (default), raise :class:`UnstableSystemError` if the
        long-term arrival rate exceeds the service rate; when ``False``
        return ``float('inf')`` instead.
    horizon, samples:
        Only used by the numeric fallback for unknown curve types.

    Closed forms
    ------------
    * token bucket ``(b, r)`` vs. constant rate ``C``: ``D = b / C``,
    * token bucket ``(b, r)`` vs. rate-latency ``(R, T)``: ``D = T + b / R``,
    * aggregate of token buckets: same formulas with ``b = Σ b_i``.
    """
    try:
        _check_stability(arrival, service, strict)
    except UnstableSystemError:
        if strict:
            raise
        return float("inf")
    arrival_rate = _long_term_rate(arrival)
    params = _service_rate_and_latency(service)
    if params is not None and arrival_rate is not None \
            and arrival_rate > params[0]:
        return float("inf")

    if params is not None and isinstance(
            arrival, (TokenBucketArrivalCurve, AggregateArrivalCurve)):
        service_rate, latency = params
        # For a concave arrival curve the horizontal deviation to a
        # rate-latency curve is attained at t -> 0+, i.e. it is
        # latency + burst / service_rate, provided the long-term rates are
        # stable (checked above).  Non-concave curves (e.g. the stair curve)
        # fall through to the generic numeric deviation below.
        return latency + arrival.burst / service_rate

    return horizontal_deviation(arrival, service, horizon=horizon,
                                samples=samples)


def backlog_bound(arrival: Curve, service: Curve, *, strict: bool = True,
                  horizon: float | None = None, samples: int = 4096) -> float:
    """Worst-case backlog bound ``v(alpha, beta)`` in bits.

    Closed form for a token bucket ``(b, r)`` served by a rate-latency curve
    ``(R, T)`` with ``r <= R``: ``B = b + r T``.
    """
    try:
        _check_stability(arrival, service, strict)
    except UnstableSystemError:
        if strict:
            raise
        return float("inf")
    arrival_rate = _long_term_rate(arrival)
    params = _service_rate_and_latency(service)
    if params is not None and arrival_rate is not None \
            and arrival_rate > params[0]:
        return float("inf")

    if params is not None and isinstance(
            arrival, (TokenBucketArrivalCurve, AggregateArrivalCurve)):
        _, latency = params
        return arrival.burst + arrival.rate * latency

    return vertical_deviation(arrival, service, horizon=horizon,
                              samples=samples)


def horizontal_deviation(arrival: Curve, service: Curve, *,
                         horizon: float | None = None,
                         samples: int = 4096) -> float:
    """Numeric horizontal deviation between two arbitrary curves.

    For every grid point ``t`` the smallest ``d`` with
    ``alpha(t) <= beta(t + d)`` is found by bisection; the result is the
    maximum over the grid.  ``horizon`` defaults to a multiple of the point
    where the curves are expected to have crossed (based on their headline
    rates when available).
    """
    if horizon is None:
        horizon = _default_horizon(arrival, service)
    grid = np.linspace(0.0, horizon, samples + 1)
    worst = 0.0
    for t in grid:
        target = arrival(float(t))
        worst = max(worst, _smallest_delay(service, float(t), target, horizon))
    return worst


def vertical_deviation(arrival: Curve, service: Curve, *,
                       horizon: float | None = None,
                       samples: int = 4096) -> float:
    """Numeric vertical deviation ``sup_t [alpha(t) - beta(t)]``."""
    if horizon is None:
        horizon = _default_horizon(arrival, service)
    grid = np.linspace(0.0, horizon, samples + 1)
    return float(max(arrival(float(t)) - service(float(t)) for t in grid))


def _default_horizon(arrival: Curve, service: Curve) -> float:
    arrival_rate = _long_term_rate(arrival) or 0.0
    burst = float(getattr(arrival, "burst", 0.0) or 0.0)
    params = _service_rate_and_latency(service)
    if params is not None:
        service_rate, latency = params
        if service_rate > arrival_rate > 0 or (service_rate > 0 and burst > 0):
            gap = max(service_rate - arrival_rate, service_rate * 0.01)
            return max(10 * (latency + burst / gap), 1e-3)
    return 1.0


def _smallest_delay(service: Curve, t: float, target: float,
                    horizon: float) -> float:
    """Smallest ``d >= 0`` with ``service(t + d) >= target`` (bisection)."""
    if service(t) >= target:
        return 0.0
    low, high = 0.0, horizon
    # Grow the bracket until the service curve catches up (or give up at a
    # very large multiple, in which case the deviation is effectively
    # unbounded for the sampled horizon).
    attempts = 0
    while service(t + high) < target:
        high *= 2.0
        attempts += 1
        if attempts > 60:
            return float("inf")
    for _ in range(80):
        mid = 0.5 * (low + high)
        if service(t + mid) >= target:
            high = mid
        else:
            low = mid
    return high


def output_arrival_curve(
        arrival: TokenBucketArrivalCurve,
        service: RateLatencyServiceCurve | ConstantRateServiceCurve,
        *, strict: bool = True) -> TokenBucketArrivalCurve:
    """Arrival curve of a token-bucket flow at the output of a server.

    The deconvolution of ``(b, r)`` by a rate-latency curve ``(R, T)`` with
    ``r <= R`` is again a token bucket: ``(b + r T, r)``.  The end-to-end
    analysis uses this to propagate a flow's constraint from the station
    egress into the switch output port.
    """
    params = _service_rate_and_latency(service)
    if params is None:
        raise TypeError(
            f"unsupported service curve type {type(service).__name__}")
    service_rate, latency = params
    if arrival.rate > service_rate:
        if strict:
            raise UnstableSystemError(
                f"offered rate {arrival.rate:.0f} bps exceeds the service "
                f"rate {service_rate:.0f} bps",
                offered_rate=arrival.rate, capacity=service_rate)
        return TokenBucketArrivalCurve(float("inf"), arrival.rate)
    return TokenBucketArrivalCurve(
        bucket=arrival.bucket + arrival.rate * latency,
        token_rate=arrival.token_rate)
