"""Arrival curves.

An *arrival curve* ``alpha`` upper-bounds the amount of traffic a flow may
produce over any interval: for every ``s <= t``, the cumulative arrivals
``A(t) - A(s) <= alpha(t - s)``.

The paper uses the token-bucket (affine) arrival curve
``R_i(t) = b_i + r_i t`` produced by the per-flow traffic shaper, where
``b_i`` is the message length and ``r_i = b_i / T_i`` the long-term rate.
Periodic flows also admit the tighter *stair* curve
``b * ceil(t / T)``, which this module provides as well (it is used by the
ablation experiments to quantify the pessimism of the affine model).

All curves are wide-sense increasing functions of the interval length, with
``alpha(0) >= 0``; by convention the value at ``t = 0`` is the instantaneous
burst the flow may emit (``b`` for a token bucket).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.errors import CurveDomainError, EmptyAggregateError

__all__ = [
    "ArrivalCurve",
    "TokenBucketArrivalCurve",
    "StairArrivalCurve",
    "AggregateArrivalCurve",
]


@runtime_checkable
class ArrivalCurve(Protocol):
    """Protocol every arrival curve implements.

    An arrival curve is a callable mapping an interval length (seconds) to a
    traffic volume (bits), plus two headline figures: the long-term ``rate``
    and the instantaneous ``burst``.
    """

    def __call__(self, interval: float) -> float:
        """Maximal traffic (bits) over any window of length ``interval``."""
        ...

    @property
    def rate(self) -> float:
        """Long-term rate (bits per second): ``lim alpha(t) / t``."""
        ...

    @property
    def burst(self) -> float:
        """Instantaneous burst (bits): ``alpha(0+)``."""
        ...


def _check_interval(interval: float | np.ndarray) -> None:
    negative = (bool(np.any(interval < 0))
                if isinstance(interval, np.ndarray) else interval < 0)
    if negative:
        raise CurveDomainError(
            f"arrival curves are defined for non-negative intervals, "
            f"got {interval!r}")


@dataclass(frozen=True)
class TokenBucketArrivalCurve:
    """The affine curve ``alpha(t) = b + r t`` of a token-bucket shaper.

    This is exactly the ``R_i(t) = b_i + r_i t`` constraint of the paper.

    Attributes
    ----------
    bucket:
        Bucket size ``b`` in bits (the maximal instantaneous burst).
    token_rate:
        Token accumulation rate ``r`` in bits per second.
    """

    bucket: float
    token_rate: float

    def __post_init__(self) -> None:
        if self.bucket < 0:
            raise CurveDomainError(
                f"bucket size must be non-negative, got {self.bucket!r}")
        if self.token_rate < 0:
            raise CurveDomainError(
                f"token rate must be non-negative, got {self.token_rate!r}")

    def __call__(self, interval: float | np.ndarray) -> float | np.ndarray:
        """``b + r t``; accepts a scalar or an array of interval lengths.

        At ``t = 0`` the affine expression evaluates to the bucket exactly
        (``r * 0.0 == 0.0``), so no scalar special case is needed.
        """
        _check_interval(interval)
        return self.bucket + self.token_rate * interval

    @property
    def rate(self) -> float:
        """Long-term rate ``r`` (bits per second)."""
        return self.token_rate

    @property
    def burst(self) -> float:
        """Burst ``b`` (bits)."""
        return self.bucket

    def __add__(self, other: "TokenBucketArrivalCurve"
                ) -> "TokenBucketArrivalCurve":
        """Sum of two token-bucket curves is a token-bucket curve.

        The aggregate of independently shaped flows entering the same
        multiplexer is constrained by the sum of their individual curves:
        ``(b1 + b2, r1 + r2)``.
        """
        if not isinstance(other, TokenBucketArrivalCurve):
            return NotImplemented
        return TokenBucketArrivalCurve(self.bucket + other.bucket,
                                       self.token_rate + other.token_rate)

    @classmethod
    def from_message(cls, message: "object") -> "TokenBucketArrivalCurve":
        """Build the paper's shaper curve ``(b_i, r_i = b_i / T_i)``.

        ``message`` is any object exposing ``burst`` and ``rate`` attributes
        (:class:`repro.flows.Message`, :class:`repro.flows.Flow`,
        :class:`repro.flows.VirtualLink`...).
        """
        return cls(bucket=float(message.burst), token_rate=float(message.rate))


@dataclass(frozen=True)
class StairArrivalCurve:
    """The stair curve ``alpha(t) = b * (floor((t + j) / T) + 1)``.

    A strictly periodic flow of period ``T`` releasing at most one message of
    ``b`` bits per period, with release jitter up to ``jitter`` seconds, is
    bounded by this curve (over a closed window of length ``t`` at most
    ``floor((t + j)/T) + 1`` instances can arrive).  It is tighter than the
    affine token bucket for most interval lengths while never being exceeded
    by the actual traffic.

    Attributes
    ----------
    message_size:
        Size ``b`` of one message, in bits.
    period:
        Period ``T`` in seconds.
    jitter:
        Release jitter in seconds (default 0).
    """

    message_size: float
    period: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.message_size <= 0:
            raise CurveDomainError(
                f"message size must be positive, got {self.message_size!r}")
        if self.period <= 0:
            raise CurveDomainError(
                f"period must be positive, got {self.period!r}")
        if self.jitter < 0:
            raise CurveDomainError(
                f"jitter must be non-negative, got {self.jitter!r}")

    def __call__(self, interval: float | np.ndarray) -> float | np.ndarray:
        _check_interval(interval)
        return self.message_size * (
            np.floor((interval + self.jitter) / self.period) + 1)

    @property
    def rate(self) -> float:
        """Long-term rate ``b / T`` (bits per second)."""
        return self.message_size / self.period

    @property
    def burst(self) -> float:
        """Traffic the flow can emit instantaneously (one message, plus the
        extra messages an adversarial jitter placement allows)."""
        return self(0.0)

    def to_token_bucket(self) -> TokenBucketArrivalCurve:
        """The tightest affine curve dominating this stair curve.

        ``b + r t`` with ``b = b(1 + j/T)`` and ``r = b / T`` dominates
        ``b (floor((t + j)/T) + 1)`` for every ``t >= 0``.
        """
        bucket = self.message_size * (1.0 + self.jitter / self.period)
        return TokenBucketArrivalCurve(bucket=bucket, token_rate=self.rate)


class AggregateArrivalCurve:
    """Sum of several arrival curves (the aggregate entering a multiplexer).

    The sum of arrival curves of independent flows is an arrival curve of
    their aggregate.  This class evaluates the sum lazily so heterogeneous
    curve types (token buckets and stair curves) can be mixed.
    """

    def __init__(self, curves: Iterable[ArrivalCurve]) -> None:
        self._curves: list[ArrivalCurve] = list(curves)
        if not self._curves:
            raise EmptyAggregateError(
                "an aggregate arrival curve needs at least one component")

    def __call__(self, interval: float) -> float:
        _check_interval(interval)
        return sum(curve(interval) for curve in self._curves)

    def __len__(self) -> int:
        return len(self._curves)

    @property
    def components(self) -> list[ArrivalCurve]:
        """The component curves (copy of the internal list)."""
        return list(self._curves)

    @property
    def rate(self) -> float:
        """Sum of the component long-term rates (bits per second)."""
        return sum(curve.rate for curve in self._curves)

    @property
    def burst(self) -> float:
        """Sum of the component bursts (bits)."""
        return sum(curve.burst for curve in self._curves)
