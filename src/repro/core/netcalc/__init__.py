"""Network Calculus toolbox (Cruz's calculus).

The paper's delay bounds are instances of Cruz's Network Calculus
[Cruz 1991a, 1991b]: traffic is constrained by *arrival curves*
(``R_i(t) = b_i + r_i t`` for a token-bucket shaped flow), network elements
offer *service curves* (a constant-rate link of capacity ``C``, or a
rate-latency curve once a scheduling latency is accounted for), and the
worst-case delay is the horizontal deviation between the two.

This sub-package provides the general machinery; the paper's closed-form
multiplexer bounds live in :mod:`repro.core.multiplexer` and are consistent
with (and tested against) the generic bounds computed here.
"""

from repro.core.netcalc.arrival import (
    AggregateArrivalCurve,
    ArrivalCurve,
    StairArrivalCurve,
    TokenBucketArrivalCurve,
)
from repro.core.netcalc.service import (
    ConstantRateServiceCurve,
    RateLatencyServiceCurve,
    ServiceCurve,
)
from repro.core.netcalc.bounds import (
    backlog_bound,
    delay_bound,
    horizontal_deviation,
    output_arrival_curve,
    vertical_deviation,
)
from repro.core.netcalc.minplus import (
    convolve_rate_latency,
    min_plus_convolution,
    min_plus_deconvolution,
)

__all__ = [
    "ArrivalCurve",
    "TokenBucketArrivalCurve",
    "StairArrivalCurve",
    "AggregateArrivalCurve",
    "ServiceCurve",
    "ConstantRateServiceCurve",
    "RateLatencyServiceCurve",
    "delay_bound",
    "backlog_bound",
    "horizontal_deviation",
    "vertical_deviation",
    "output_arrival_curve",
    "min_plus_convolution",
    "min_plus_deconvolution",
    "convolve_rate_latency",
]
