"""Deterministic fault injection: the chaos half of the execution layer.

A :class:`FaultPlan` is a value-level description of *exactly which*
faults to inject *exactly where*: every entry names a fault ``kind``, the
**cell index** it targets (the task's position in the campaign's
deterministic cell order) and the **attempt** it fires on (default 0, the
first execution).  Because activation is keyed on ``(kind, cell,
attempt)`` and campaigns retry failed cells with an incremented attempt
counter, a fault fires exactly once per run — which is what lets the
chaos suite assert that a fault-injected campaign converges to artifacts
**byte-identical** to a fault-free run.

Grammar (entries separated by ``,`` or ``;``; whitespace ignored)::

    kind@cell            fire on attempt 0 of cell
    kind@cell.attempt    fire on that attempt only
    kind@cell:param      kinds with a parameter (slow: seconds)

Kinds:

``crash``
    Kill the executing worker process with ``os._exit`` (the moral
    equivalent of ``kill -9`` on the worker) — the parent sees a
    ``BrokenProcessPool``, rebuilds the pool and re-dispatches the
    incomplete cells.  In serial execution the crash degrades to a
    :class:`SimulatedCrashError` so the driving process survives.
``exc``
    Raise :class:`FaultInjectedError` from the task body (a transient
    task failure; retried with deterministic backoff).
``slow``
    Sleep ``param`` seconds (default 0.25) before running the task —
    long enough to trip a per-task watchdog timeout when one is set.
``halt``
    Parent-side: abort the whole run (:class:`RunHalted`) just before
    the cell would be dispatched — a deterministic stand-in for an
    operator ``kill``/power loss, used to exercise ``--resume``.
``store-eio`` / ``store-enospc``
    The result store's next record write for this cell raises
    ``OSError(EIO/ENOSPC)`` — which the hardened store degrades to a
    logged unpersisted write, never an exception.
``store-replace``
    The atomic ``os.replace`` publishing this cell's record fails.
``store-corrupt``
    This cell's record is truncated on disk after writing (a torn
    write); the next reader treats it as a miss and recomputes.
``store-index``
    This cell's ``index.jsonl`` line is written truncated (torn append);
    tolerant index readers skip and count it.
``req-slow`` / ``req-exc``
    Server-side (``repro serve``): the targeted *request* — the cell
    index is the request sequence number — is delayed ``param`` seconds
    (long enough to exhaust its deadline budget and exercise the
    degraded-answer path) or fails with an injected handler exception
    (a deterministic 500, never a hang).
``journal-eio``
    The admission journal's append for this request raises
    ``OSError(EIO)``; the server rolls the engine mutation back and
    answers 500, keeping acknowledged and journaled state in lock step.
``journal-torn``
    This request's journal line is written truncated (a torn append,
    the moral equivalent of power loss mid-write); recovery skips and
    counts it.

Activation: the executor ships the plan into workers and wraps every
task in :func:`cell_context`, so the store-side hooks
(:func:`store_fault`, :func:`corrupt_record`, :func:`corrupt_index_line`)
know the current cell without the store ever importing campaign code.
The admission server wraps every request in :func:`request_context`
(request sequence number as the cell), which fires the ``req-*`` kinds
and scopes the journal hooks (:func:`journal_fault`,
:func:`corrupt_journal_line`) — and, because the context is the same
thread-local triple, the ``store-*`` kinds target serve requests too.
Plans come from the CLI ``--faults`` flag or the ``REPRO_FAULTS``
environment variable (:func:`plan_from_env`).

This module deliberately imports nothing from the rest of ``repro`` so
the store can depend on it without cycles.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "FAULTS_ENV",
    "FaultSpec",
    "FaultPlan",
    "FaultPlanError",
    "FaultInjectedError",
    "SimulatedCrashError",
    "RunHalted",
    "cell_context",
    "request_context",
    "plan_from_env",
    "store_fault",
    "corrupt_record",
    "corrupt_index_line",
    "journal_fault",
    "corrupt_journal_line",
    "halt_requested",
]

#: Environment variable holding the default fault plan (CLI ``--faults``
#: overrides it for the run it configures).
FAULTS_ENV = "REPRO_FAULTS"

#: Every fault kind the parser accepts.
KINDS = frozenset({
    "crash", "exc", "slow", "halt",
    "store-eio", "store-enospc", "store-replace", "store-corrupt",
    "store-index",
    "req-slow", "req-exc", "journal-eio", "journal-torn",
})

#: Exit status of an injected worker crash (visible in worker logs).
CRASH_EXIT_CODE = 113

#: Default sleep of a ``slow`` fault without an explicit parameter.
DEFAULT_SLOW_SECONDS = 0.25

#: Bytes kept when truncating a record/index line (enough to be visibly
#: a torn JSON prefix, never valid JSON).
_TRUNCATE_AT = 20


class FaultPlanError(ValueError):
    """A fault plan string does not follow the grammar."""


class FaultInjectedError(RuntimeError):
    """The transient task failure raised by an ``exc`` fault."""


class SimulatedCrashError(RuntimeError):
    """A ``crash`` fault fired while executing serially (no worker to
    kill, so the crash degrades to an ordinary retryable failure)."""


class RunHalted(BaseException):
    """A ``halt`` fault (or an equivalent interruption) stopped the run.

    Derives from :class:`BaseException` like ``KeyboardInterrupt`` so it
    cannot be swallowed by the retry machinery: a halted run must stop,
    persist nothing further, and be finished later with ``--resume``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault entry: *kind* at *(cell, attempt)* with *param*."""

    kind: str
    cell: int
    attempt: int = 0
    param: float | None = None

    def __str__(self) -> str:
        text = f"{self.kind}@{self.cell}"
        if self.attempt:
            text += f".{self.attempt}"
        if self.param is not None:
            text += f":{self.param:g}"
        return text


def _parse_entry(entry: str) -> FaultSpec:
    """One ``kind@cell[.attempt][:param]`` entry, validated."""
    kind, sep, where = entry.partition("@")
    kind = kind.strip()
    if not sep or kind not in KINDS:
        raise FaultPlanError(
            f"bad fault entry {entry!r}: expected kind@cell[.attempt]"
            f"[:param] with kind in {sorted(KINDS)}")
    where, _, param_text = where.partition(":")
    cell_text, _, attempt_text = where.partition(".")
    try:
        cell = int(cell_text)
        attempt = int(attempt_text) if attempt_text else 0
        param = float(param_text) if param_text else None
    except ValueError:
        raise FaultPlanError(f"bad fault entry {entry!r}: cell/attempt "
                             f"must be integers, param a number") from None
    if cell < 0 or attempt < 0:
        raise FaultPlanError(
            f"bad fault entry {entry!r}: cell and attempt must be >= 0")
    return FaultSpec(kind=kind, cell=cell, attempt=attempt, param=param)


class FaultPlan:
    """An immutable set of :class:`FaultSpec` entries, queryable per cell.

    The canonical text form (:meth:`__str__`) round-trips through
    :meth:`parse`, which is how the executor ships a plan into worker
    processes (a short string instead of a pickled object).
    """

    def __init__(self, specs: Iterator[FaultSpec] | tuple | list = ()):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse the grammar above; ``None``/blank parses to an empty plan."""
        if not text or not text.strip():
            return cls()
        entries = [part.strip()
                   for chunk in text.replace(";", ",").split(",")
                   for part in (chunk,) if part.strip()]
        return cls(_parse_entry(entry) for entry in entries)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __str__(self) -> str:
        return ",".join(str(spec) for spec in self.specs)

    def at(self, kind: str, cell: int, attempt: int) -> FaultSpec | None:
        """The matching entry for ``(kind, cell, attempt)``, if any."""
        for spec in self.specs:
            if (spec.kind == kind and spec.cell == cell
                    and spec.attempt == attempt):
                return spec
        return None


# ---------------------------------------------------------------------------
# Process-global activation context
# ---------------------------------------------------------------------------

#: The active (plan, cell, attempt) of the thread's current task, if any.
#: Thread-local so a multi-threaded parent never leaks a context across
#: concurrently executing cells.
_context = threading.local()


def _active() -> tuple[FaultPlan, int, int] | None:
    """The (plan, cell, attempt) triple of the executing task, if set."""
    return getattr(_context, "triple", None)


class cell_context:
    """Context manager marking *this thread* as executing one cell.

    On entry it fires the task-level faults (``slow``, ``exc``,
    ``crash``) configured for the cell; for the duration of the body the
    store-side hooks see the cell's store faults.  ``in_worker`` selects
    whether a ``crash`` really kills the process (pool worker) or
    degrades to :class:`SimulatedCrashError` (serial execution).
    """

    def __init__(self, plan: FaultPlan, cell: int, attempt: int, *,
                 in_worker: bool) -> None:
        self.plan = plan
        self.cell = cell
        self.attempt = attempt
        self.in_worker = in_worker

    def __enter__(self) -> "cell_context":
        _context.triple = (self.plan, self.cell, self.attempt)
        slow = self.plan.at("slow", self.cell, self.attempt)
        if slow is not None:
            time.sleep(slow.param if slow.param is not None
                       else DEFAULT_SLOW_SECONDS)
        if self.plan.at("crash", self.cell, self.attempt) is not None:
            if self.in_worker:
                os._exit(CRASH_EXIT_CODE)
            _context.triple = None
            raise SimulatedCrashError(
                f"injected crash at cell {self.cell} "
                f"attempt {self.attempt} (serial execution)")
        if self.plan.at("exc", self.cell, self.attempt) is not None:
            _context.triple = None
            raise FaultInjectedError(
                f"injected task fault at cell {self.cell} "
                f"attempt {self.attempt}")
        return self

    def __exit__(self, *exc_info) -> None:
        _context.triple = None


class request_context:
    """Context manager marking *this thread* as serving one request.

    The admission server's counterpart of :class:`cell_context`: the
    cell index is the request's sequence number.  On entry it fires the
    request-level faults — ``req-slow`` sleeps ``param`` seconds
    (default :data:`DEFAULT_SLOW_SECONDS`) so the request exhausts its
    deadline budget, ``req-exc`` raises :class:`FaultInjectedError`
    which the server answers with a deterministic 500 — and for the
    duration of the body the journal and store hooks see the request's
    faults.
    """

    def __init__(self, plan: FaultPlan, sequence: int,
                 attempt: int = 0) -> None:
        self.plan = plan
        self.sequence = sequence
        self.attempt = attempt

    def __enter__(self) -> "request_context":
        _context.triple = (self.plan, self.sequence, self.attempt)
        slow = self.plan.at("req-slow", self.sequence, self.attempt)
        if slow is not None:
            time.sleep(slow.param if slow.param is not None
                       else DEFAULT_SLOW_SECONDS)
        if self.plan.at("req-exc", self.sequence, self.attempt) is not None:
            _context.triple = None
            raise FaultInjectedError(
                f"injected request fault at request {self.sequence}")
        return self

    def __exit__(self, *exc_info) -> None:
        _context.triple = None


def plan_from_env() -> FaultPlan:
    """The plan configured via ``$REPRO_FAULTS`` (empty when unset)."""
    return FaultPlan.parse(os.environ.get(FAULTS_ENV))


# ---------------------------------------------------------------------------
# Store-side hooks (called by repro.store with no knowledge of cells)
# ---------------------------------------------------------------------------

_STORE_ERRNOS = {"store-eio": errno.EIO, "store-enospc": errno.ENOSPC}


def store_fault(operation: str) -> None:
    """Raise the injected ``OSError`` for the active cell, if configured.

    ``operation`` is ``"write"`` (serialising the record) or
    ``"replace"`` (the atomic publish).  Outside an active cell context
    this is a no-op, so the store behaves identically in normal runs.
    """
    active = _active()
    if active is None:
        return
    plan, cell, attempt = active
    if operation == "replace":
        if plan.at("store-replace", cell, attempt) is not None:
            raise OSError(errno.EIO, f"injected os.replace failure at "
                                     f"cell {cell} attempt {attempt}")
        return
    for kind, code in _STORE_ERRNOS.items():
        if plan.at(kind, cell, attempt) is not None:
            raise OSError(code, f"injected {kind} at cell {cell} "
                                f"attempt {attempt}")


def corrupt_record(data: str) -> str:
    """Truncate ``data`` when a ``store-corrupt`` fault targets the cell.

    The store writes the returned bytes, simulating a torn record write;
    tolerant readers treat the truncated JSON as a miss and recompute.
    """
    active = _active()
    if active is None:
        return data
    plan, cell, attempt = active
    if plan.at("store-corrupt", cell, attempt) is not None:
        return data[:_TRUNCATE_AT]
    return data


def corrupt_index_line(line: str) -> str:
    """Truncate one ``index.jsonl`` line under a ``store-index`` fault."""
    active = _active()
    if active is None:
        return line
    plan, cell, attempt = active
    if plan.at("store-index", cell, attempt) is not None:
        return line[:_TRUNCATE_AT]
    return line


def journal_fault() -> None:
    """Raise the injected ``OSError(EIO)`` for the active request's
    journal append, if configured.

    Outside an active request context this is a no-op, so the journal
    behaves identically in normal runs.  The server rolls the engine
    mutation back and answers 500, keeping acknowledged state and
    journaled state in lock step.
    """
    active = _active()
    if active is None:
        return
    plan, cell, attempt = active
    if plan.at("journal-eio", cell, attempt) is not None:
        raise OSError(errno.EIO, f"injected journal append failure at "
                                 f"request {cell}")


def corrupt_journal_line(line: str) -> str:
    """Truncate one journal line under a ``journal-torn`` fault.

    The journal writes the returned bytes, simulating a torn append
    (power loss mid-write); recovery skips and counts the line.
    """
    active = _active()
    if active is None:
        return line
    plan, cell, attempt = active
    if plan.at("journal-torn", cell, attempt) is not None:
        return line[:_TRUNCATE_AT]
    return line


def halt_requested(plan: FaultPlan, cell: int, attempt: int) -> bool:
    """Parent-side check: should the run stop before dispatching ``cell``?"""
    return plan.at("halt", cell, attempt) is not None
