"""Fault-tolerant parallel execution and deterministic fault injection.

The :class:`~repro.exec.executor.ParallelExecutor` is the single
substrate behind every ``--jobs N`` fan-out in the repository (analytic
campaigns, Monte-Carlo simulation, fuzzing, report building); the
:class:`~repro.exec.faults.FaultPlan` harness injects worker crashes,
task exceptions, slow tasks and store I/O faults at chosen cell indices
so the chaos test-suite can prove the executor recovers to byte-identical
artifacts.  See ``DESIGN.md`` §12.
"""

from repro.exec.executor import (
    CellFailure,
    ExecPolicy,
    ExecutionReport,
    ParallelExecutor,
    backoff_delay,
)
from repro.exec.faults import (
    FAULTS_ENV,
    FaultInjectedError,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RunHalted,
    SimulatedCrashError,
    plan_from_env,
    request_context,
)

__all__ = [
    "CellFailure",
    "ExecPolicy",
    "ExecutionReport",
    "ParallelExecutor",
    "backoff_delay",
    "FAULTS_ENV",
    "FaultInjectedError",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "RunHalted",
    "SimulatedCrashError",
    "plan_from_env",
    "request_context",
]
