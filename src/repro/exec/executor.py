"""The fault-tolerant parallel executor behind every ``--jobs N`` fan-out.

Before this layer, the four fan-out subsystems (analytic campaigns,
Monte-Carlo simulation, fuzzing, report building) each drove a bare
``ProcessPoolExecutor`` where a single worker crash, hang or transient
I/O error killed the whole run with a traceback.  :class:`ParallelExecutor`
gives them one shared substrate with worst-case behaviour by design:

* **per-task watchdog timeouts** — a hung cell is detected, charged a
  retry, its (presumed stuck) pool replaced, and every other in-flight
  cell re-dispatched;
* **bounded retries with deterministic backoff** — a failed cell is
  retried up to ``retries`` times; the backoff delay is a pure function
  of ``(seed, cell, attempt)`` (:func:`backoff_delay`), never wall-clock
  or ``random``, so two runs of the same campaign behave identically;
* **broken-pool recovery** — a worker death (``kill -9``, segfault, an
  injected ``crash`` fault) breaks the pool; the executor rebuilds it
  and re-dispatches only the cells that had not completed;
* **graceful degradation to serial execution** — when a pool cannot be
  started at all (fork/spawn failure), the remaining cells run in-process
  and the run still completes;
* **structured failures instead of tracebacks** — a cell that exhausts
  its retries becomes a :class:`CellFailure` in the
  :class:`ExecutionReport`; the campaign completes, summarises the
  failures, and the ``--fail-fast`` / ``--max-failures N`` policies
  decide when to abort early;
* **clean interruption** — ``KeyboardInterrupt`` / ``SIGTERM`` (and the
  injected ``halt`` fault) terminate every worker process before the
  exception propagates, so an interrupted ``--jobs N`` run leaves no
  orphans and can be finished later with ``--resume``.

Results are unchanged by any of this: cells are deterministic, completed
cells are persisted by their subsystem's result store exactly as before,
and the chaos test-suite asserts byte-identical final artifacts with and
without injected faults.

This module imports nothing from the rest of ``repro`` except its
sibling :mod:`repro.exec.faults`, so every subsystem can depend on it
without cycles.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.exec import faults
from repro.exec.faults import FaultPlan, RunHalted

__all__ = [
    "ExecPolicy",
    "CellFailure",
    "ExecutionReport",
    "ParallelExecutor",
    "backoff_delay",
]

#: Watchdog poll interval while a per-task timeout is armed (seconds).
_WATCHDOG_TICK = 0.05

#: How long to wait for a terminated worker before killing it (seconds).
_TERMINATE_GRACE = 5.0


@dataclass(frozen=True)
class ExecPolicy:
    """The failure policy of one run (immutable, value-level).

    ``retries`` counts *additional* executions after the first: the
    default 2 allows three attempts per cell before it becomes a
    :class:`CellFailure`.  ``timeout`` arms the per-task watchdog (off by
    default — campaigns have no natural per-cell deadline).  ``fail_fast``
    aborts on the first cell failure; ``max_failures`` tolerates up to N
    failed cells before aborting (``None`` = never abort, the default:
    the run completes and reports every failure).
    """

    retries: int = 2
    timeout: float | None = None
    fail_fast: bool = False
    max_failures: int | None = None
    #: First-retry backoff in seconds; doubles per attempt, deterministic
    #: jitter included (see :func:`backoff_delay`).
    backoff_base: float = 0.05
    #: Upper bound of any single backoff delay in seconds.
    backoff_cap: float = 2.0
    #: Seed of the deterministic backoff stream.
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, "
                             f"got {self.timeout!r}")
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError(f"max_failures must be >= 0, "
                             f"got {self.max_failures!r}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")


def backoff_delay(seed: int, cell: int, attempt: int, *,
                  base: float = 0.05, cap: float = 2.0) -> float:
    """The deterministic backoff before retry ``attempt`` of ``cell``.

    Exponential in the attempt number with a multiplicative jitter in
    ``[0.5, 1.0)`` derived from ``sha256(seed:cell:attempt)`` — seeded
    and reproducible, with no wall-clock or global-PRNG dependence, so a
    re-run of the same failing campaign sleeps the same milliseconds.
    """
    if attempt < 1 or base <= 0:
        return 0.0
    digest = hashlib.sha256(
        f"repro-backoff:{seed}:{cell}:{attempt}".encode("ascii")).digest()
    jitter = 0.5 + (int.from_bytes(digest[:8], "big") / 2**64) * 0.5
    return min(cap, base * (2.0 ** (attempt - 1)) * jitter)


@dataclass(frozen=True)
class CellFailure:
    """One cell that exhausted its retries (or could never run)."""

    #: Position of the cell in the campaign's deterministic task order.
    index: int
    #: Human label of the cell (scenario name, cell spec, ...).
    label: str
    #: Number of executions attempted before giving up.
    attempts: int
    #: The last error observed, as one line of text.
    error: str
    #: Failure category: ``exception`` / ``timeout`` / ``worker-crash``.
    kind: str


@dataclass
class ExecutionReport:
    """Everything one :meth:`ParallelExecutor.map` run observed."""

    #: Completed results by cell index (insertion order = completion
    #: order; iterate ``sorted(results)`` for task order).
    results: dict[int, Any] = field(default_factory=dict)
    #: Cells that exhausted their retries.
    failures: list[CellFailure] = field(default_factory=list)
    #: Cells neither completed nor failed (the run aborted early).
    incomplete: list[int] = field(default_factory=list)
    #: Total task executions started (== tasks when nothing failed).
    executions: int = 0
    #: Number of retry re-dispatches.
    retried: int = 0
    #: Watchdog timeouts observed.
    timeouts: int = 0
    #: Broken-pool events survived (worker crashes).
    worker_crashes: int = 0
    #: Process pools built after the first (recovery rebuilds).
    pool_rebuilds: int = 0
    #: True when the pool could not start and the run went serial.
    serial_fallback: bool = False
    #: True when ``fail_fast``/``max_failures`` aborted the run early.
    aborted: bool = False

    @property
    def ok(self) -> bool:
        """True when every cell completed."""
        return not self.failures and not self.incomplete

    def ordered_results(self) -> list[Any]:
        """Completed results in task order (failed cells are absent)."""
        return [self.results[index] for index in sorted(self.results)]

    def failure_rows(self) -> list[tuple]:
        """``(cell, label, attempts, kind, last error)`` rows for tables."""
        return [(failure.index, failure.label, failure.attempts,
                 failure.kind, failure.error)
                for failure in sorted(self.failures,
                                      key=lambda f: f.index)]

    def describe(self) -> str:
        """One status line, e.g. ``'2 failed cells, 1 retried, ...'``."""
        parts = [f"{len(self.failures)} failed"]
        if self.incomplete:
            parts.append(f"{len(self.incomplete)} not run")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.worker_crashes:
            parts.append(f"{self.worker_crashes} worker crashes")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.serial_fallback:
            parts.append("serial fallback")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# Worker-side trampoline
# ---------------------------------------------------------------------------

#: Parsed plans by canonical text — workers parse each plan string once.
_PLAN_CACHE: dict[str, FaultPlan] = {}


def _cached_plan(text: str) -> FaultPlan:
    plan = _PLAN_CACHE.get(text)
    if plan is None:
        plan = FaultPlan.parse(text)
        _PLAN_CACHE[text] = plan
    return plan


def _invoke_in_worker(worker_fn: Callable[[Any], Any], plan_text: str,
                      index: int, attempt: int, task: Any) -> Any:
    """Run one task inside a pool worker, under its fault context."""
    with faults.cell_context(_cached_plan(plan_text), index, attempt,
                             in_worker=True):
        return worker_fn(task)


def _worker_init(initializer: Callable[..., None] | None,
                 initargs: tuple) -> None:
    """Pool-worker bootstrap: restore SIGTERM, then run the subsystem init.

    Forked workers inherit the parent's SIGTERM→``KeyboardInterrupt``
    handler; without resetting it, terminating the pool would make every
    worker die with a traceback instead of exiting silently.
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - no signal support
        pass
    if initializer is not None:
        initializer(*initargs)


#: Swappable pool factory (tests monkeypatch it to simulate fork failure).
_POOL_FACTORY: Callable[..., ProcessPoolExecutor] = ProcessPoolExecutor


def _terminate_pool(pool: ProcessPoolExecutor | None) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``shutdown(cancel_futures=True)`` alone would block on a worker stuck
    in a long task; terminating the processes first guarantees the
    shutdown returns and no orphan survives the parent.
    """
    if pool is None:
        return
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
    deadline = time.monotonic() + _TERMINATE_GRACE
    for process in processes:
        try:
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - refuses SIGTERM
                process.kill()
                process.join(_TERMINATE_GRACE)
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass


class _sigterm_raises_interrupt:
    """Scope converting SIGTERM into ``KeyboardInterrupt`` (parent only).

    A plain SIGTERM would kill the parent without unwinding, leaving pool
    workers orphaned; raising ``KeyboardInterrupt`` instead routes the
    signal through the executor's ``finally`` teardown.  Installing a
    handler is only legal in the main thread of the main interpreter —
    anywhere else this scope is a no-op.
    """

    @staticmethod
    def _handler(signum, frame) -> None:
        raise KeyboardInterrupt()

    def __enter__(self) -> "_sigterm_raises_interrupt":
        self._previous = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(signal.SIGTERM,
                                               self._handler)
            except (ValueError, OSError):  # pragma: no cover - no signals
                self._previous = None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is not None:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except (ValueError, OSError):  # pragma: no cover - no signals
                pass


class ParallelExecutor:
    """Map tasks over worker processes with retries, recovery and policy.

    Parameters
    ----------
    jobs:
        Worker processes; 1 executes in-process (same retry/failure
        policy, no pool).
    policy:
        The :class:`ExecPolicy`; defaults are retry-twice, no timeout,
        never abort.
    fault_spec:
        Fault-plan text (see :mod:`repro.exec.faults`); defaults to
        ``$REPRO_FAULTS`` so chaos runs need no code changes.  Parsed
        eagerly — a malformed plan fails fast, before any work runs.
    label:
        Unit name used in failure records (``"scenario"``, ``"cell"``).
    """

    def __init__(self, *, jobs: int = 1, policy: ExecPolicy | None = None,
                 fault_spec: str | None = None, label: str = "cell") -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs!r}")
        self.jobs = int(jobs)
        self.policy = policy if policy is not None else ExecPolicy()
        if fault_spec is None:
            fault_spec = os.environ.get(faults.FAULTS_ENV) or ""
        self.plan = FaultPlan.parse(fault_spec)
        self.label = label
        #: Injectable sleep (tests replace it to observe backoff delays).
        self.sleep: Callable[[float], None] = time.sleep

    # -- public API ----------------------------------------------------------

    def map(self, worker_fn: Callable[[Any], Any], tasks: Sequence[Any], *,
            initializer: Callable[..., None] | None = None,
            initargs: tuple = (),
            serial_fn: Callable[[Any], Any] | None = None,
            serial_setup: Callable[[], None] | None = None,
            labels: Sequence[str] | None = None) -> ExecutionReport:
        """Run ``worker_fn`` over ``tasks``; never raises for cell failures.

        ``worker_fn`` must be picklable (module-level) for ``jobs > 1``;
        ``initializer(*initargs)`` primes each worker process.  In serial
        execution (``jobs == 1``, a single task, or pool-start fallback)
        ``serial_setup`` runs once and ``serial_fn`` (default
        ``worker_fn``) evaluates the cells in-process — call sites pass a
        bound method here to keep their live caches and store handles.

        Raises :class:`RunHalted` for an injected ``halt`` fault and lets
        ``KeyboardInterrupt`` propagate — in both cases every worker
        process is terminated first.
        """
        tasks = list(tasks)
        report = ExecutionReport()
        if labels is None:
            labels = [str(task) for task in tasks]
        labels = [str(text) for text in labels]
        if len(labels) != len(tasks):
            raise ValueError(f"{len(tasks)} tasks but {len(labels)} labels")
        if not tasks:
            return report
        if serial_fn is None:
            serial_fn = worker_fn
        if self.jobs == 1 or len(tasks) == 1:
            self._run_serial(report, tasks, labels,
                             serial_fn=serial_fn, serial_setup=serial_setup,
                             initializer=initializer, initargs=initargs)
            return report
        self._run_parallel(report, worker_fn, tasks, labels,
                           initializer=initializer, initargs=initargs,
                           serial_fn=serial_fn, serial_setup=serial_setup)
        return report

    # -- shared bookkeeping --------------------------------------------------

    def _attempt_failed(self, report: ExecutionReport,
                        attempts: dict[int, int], index: int, label: str,
                        error: str, kind: str) -> bool:
        """Charge one failed execution; True when the cell may retry."""
        attempts[index] += 1
        if attempts[index] > self.policy.retries:
            report.failures.append(CellFailure(
                index=index, label=label, attempts=attempts[index],
                error=error, kind=kind))
            return False
        report.retried += 1
        return True

    def _should_abort(self, report: ExecutionReport) -> bool:
        """True when the failure policy says to stop dispatching."""
        if self.policy.fail_fast and report.failures:
            return True
        if (self.policy.max_failures is not None
                and len(report.failures) > self.policy.max_failures):
            return True
        return False

    def _backoff(self, index: int, attempt: int) -> float:
        return backoff_delay(self.policy.backoff_seed, index, attempt,
                             base=self.policy.backoff_base,
                             cap=self.policy.backoff_cap)

    # -- serial execution ----------------------------------------------------

    def _run_serial(self, report: ExecutionReport, tasks: list[Any],
                    labels: list[str], *,
                    serial_fn: Callable[[Any], Any] | None,
                    serial_setup: Callable[[], None] | None,
                    initializer: Callable[..., None] | None,
                    initargs: tuple,
                    only: Sequence[int] | None = None) -> None:
        """Evaluate cells in-process under the same retry/fault policy."""
        if serial_setup is not None:
            serial_setup()
        elif initializer is not None:
            initializer(*initargs)
        if serial_fn is None:
            raise ValueError("serial execution needs serial_fn")
        indices = list(only) if only is not None else range(len(tasks))
        attempts = {index: 0 for index in indices}
        for index in indices:
            if self._should_abort(report):
                report.aborted = True
                report.incomplete.append(index)
                continue
            while True:
                if faults.halt_requested(self.plan, index, attempts[index]):
                    raise RunHalted(
                        f"injected halt before {self.label} {index}")
                report.executions += 1
                try:
                    with faults.cell_context(self.plan, index,
                                             attempts[index],
                                             in_worker=False):
                        report.results[index] = serial_fn(tasks[index])
                    break
                except Exception as error:
                    if not self._attempt_failed(
                            report, attempts, index, labels[index],
                            f"{type(error).__name__}: {error}",
                            "exception"):
                        break
                    self.sleep(self._backoff(index, attempts[index]))

    # -- parallel execution --------------------------------------------------

    def _run_parallel(self, report: ExecutionReport,
                      worker_fn: Callable[[Any], Any], tasks: list[Any],
                      labels: list[str], *,
                      initializer: Callable[..., None] | None,
                      initargs: tuple,
                      serial_fn: Callable[[Any], Any] | None,
                      serial_setup: Callable[[], None] | None) -> None:
        """The dispatch loop: sliding window, watchdog, pool recovery."""
        plan_text = str(self.plan)
        workers = min(self.jobs, len(tasks))
        attempts = {index: 0 for index in range(len(tasks))}
        #: Cells awaiting (re-)dispatch, in task order.
        queue: deque[int] = deque(range(len(tasks)))
        #: Deterministic earliest re-dispatch times (monotonic seconds).
        not_before: dict[int, float] = {}
        pool: ProcessPoolExecutor | None = None
        inflight: dict[Any, int] = {}
        started: dict[Any, float] = {}

        def build_pool() -> ProcessPoolExecutor | None:
            """A fresh pool, or ``None`` when one cannot be started."""
            try:
                return _POOL_FACTORY(max_workers=workers,
                                     initializer=_worker_init,
                                     initargs=(initializer, initargs))
            except (OSError, ValueError, RuntimeError):
                return None

        def requeue_inflight(*, charge: bool, error: str,
                             kind: str) -> None:
            """Return every in-flight cell to the queue after a pool loss."""
            for future, index in list(inflight.items()):
                if charge:
                    if self._attempt_failed(report, attempts, index,
                                            labels[index], error, kind):
                        queue.append(index)
                        not_before[index] = (
                            time.monotonic()
                            + self._backoff(index, attempts[index]))
                else:
                    queue.append(index)
            inflight.clear()
            started.clear()

        with _sigterm_raises_interrupt():
            try:
                pool = build_pool()
                if pool is None:
                    report.serial_fallback = True
                    self._run_serial(report, tasks, labels,
                                     serial_fn=serial_fn,
                                     serial_setup=serial_setup,
                                     initializer=initializer,
                                     initargs=initargs)
                    return
                while queue or inflight:
                    if self._should_abort(report):
                        report.aborted = True
                        report.incomplete.extend(
                            sorted(set(queue) | set(inflight.values())))
                        return
                    broke = self._fill_window(pool, worker_fn, plan_text,
                                              tasks, attempts, queue,
                                              not_before, inflight, started,
                                              workers, report)
                    if not broke and inflight:
                        broke = self._collect(report, labels, attempts,
                                              queue, not_before, inflight,
                                              started)
                    if broke:
                        report.worker_crashes += 1
                        requeue_inflight(
                            charge=True,
                            error="worker process died (broken pool)",
                            kind="worker-crash")
                        _terminate_pool(pool)
                        pool = build_pool()
                        if pool is None:
                            report.serial_fallback = True
                            remaining = sorted(set(queue))
                            queue.clear()
                            self._run_serial(report, tasks, labels,
                                             serial_fn=serial_fn,
                                             serial_setup=serial_setup,
                                             initializer=initializer,
                                             initargs=initargs,
                                             only=remaining)
                            return
                        report.pool_rebuilds += 1
                    elif self._timed_out(report, labels, attempts, queue,
                                         not_before, inflight, started):
                        # The hung worker owns a slot forever: replace
                        # the pool, innocents re-dispatch uncharged.
                        requeue_inflight(charge=False, error="", kind="")
                        _terminate_pool(pool)
                        pool = build_pool()
                        if pool is None:  # pragma: no cover - rare double
                            report.serial_fallback = True
                            remaining = sorted(set(queue))
                            queue.clear()
                            self._run_serial(report, tasks, labels,
                                             serial_fn=serial_fn,
                                             serial_setup=serial_setup,
                                             initializer=initializer,
                                             initargs=initargs,
                                             only=remaining)
                            return
                        report.pool_rebuilds += 1
            finally:
                _terminate_pool(pool)

    def _fill_window(self, pool, worker_fn, plan_text: str,
                     tasks: list[Any], attempts: dict[int, int],
                     queue: deque, not_before: dict[int, float],
                     inflight: dict, started: dict, workers: int,
                     report: ExecutionReport) -> bool:
        """Submit eligible cells up to the window; True when pool broke.

        The window never exceeds the worker count, so a submitted cell
        starts (almost) immediately and the watchdog can measure task
        time from the submit timestamp.
        """
        now = time.monotonic()
        deferred: list[int] = []
        while queue and len(inflight) < workers:
            index = queue.popleft()
            if not_before.get(index, 0.0) > now:
                deferred.append(index)
                continue
            if faults.halt_requested(self.plan, index, attempts[index]):
                raise RunHalted(f"injected halt before {self.label} "
                                f"{index}")
            report.executions += 1
            try:
                future = pool.submit(_invoke_in_worker, worker_fn,
                                     plan_text, index, attempts[index],
                                     tasks[index])
            except BrokenProcessPool:
                queue.appendleft(index)
                report.executions -= 1
                queue.extend(deferred)
                return True
            inflight[future] = index
            started[future] = time.monotonic()
        queue.extend(deferred)
        if not inflight and queue:
            # Everything eligible is backing off: honour the earliest
            # deterministic delay instead of busy-waiting.
            earliest = min(not_before.get(index, 0.0) for index in queue)
            self.sleep(max(0.0, earliest - time.monotonic()))
        return False

    def _collect(self, report: ExecutionReport, labels: list[str],
                 attempts: dict[int, int], queue: deque,
                 not_before: dict[int, float], inflight: dict,
                 started: dict) -> bool:
        """Harvest finished futures; True when the pool broke."""
        tick = None if self.policy.timeout is None else _WATCHDOG_TICK
        done, _ = wait(set(inflight), timeout=tick,
                       return_when=FIRST_COMPLETED)
        broke = False
        for future in done:
            index = inflight.pop(future)
            started.pop(future, None)
            try:
                report.results[index] = future.result()
            except BrokenProcessPool:
                # Leave the cell in flight: the caller's requeue pass
                # charges the attempt and re-dispatches it.
                inflight[future] = index
                broke = True
            except Exception as error:
                if self._attempt_failed(report, attempts, index,
                                        labels[index],
                                        f"{type(error).__name__}: {error}",
                                        "exception"):
                    queue.append(index)
                    not_before[index] = (
                        time.monotonic()
                        + self._backoff(index, attempts[index]))
        return broke

    def _timed_out(self, report: ExecutionReport, labels: list[str],
                   attempts: dict[int, int], queue: deque,
                   not_before: dict[int, float], inflight: dict,
                   started: dict) -> bool:
        """Fail cells past the watchdog deadline; True when any tripped."""
        if self.policy.timeout is None or not inflight:
            return False
        now = time.monotonic()
        tripped = False
        for future, index in list(inflight.items()):
            if now - started[future] <= self.policy.timeout:
                continue
            tripped = True
            report.timeouts += 1
            inflight.pop(future)
            started.pop(future)
            if self._attempt_failed(
                    report, attempts, index, labels[index],
                    f"timed out after {self.policy.timeout:g}s",
                    "timeout"):
                queue.append(index)
                not_before[index] = (
                    time.monotonic()
                    + self._backoff(index, attempts[index]))
        return tripped
