"""Batched execution of scenarios with shared-intermediate memoization.

:class:`CampaignRunner` evaluates every scenario's per-class worst-case
delay and backlog bounds in one pass.  In the default *memoized* mode all
scenarios share one :class:`~repro.campaigns.cache.AnalysisCache`, so the
base message set is generated and aggregated once per distinct workload and
the scalability ladder's replicated sets are never materialised.  With
``memoize=False`` the runner does what a user would do by hand — rebuild the
full message set and recompute every aggregate for each scenario — which is
the baseline the campaign benchmark compares against.

Multi-hop scenarios use the paper's composition without burst propagation:
the single-point bound pays the burst terms once, and every additional
multiplexing point adds the latency of its per-class residual service curve
(pay-bursts-only-once, as in
:class:`repro.core.endtoend.EndToEndAnalysis` with
``burst_propagation=False``).

Large campaigns can opt into process-level fan-out with ``jobs=N`` (the CLI
flag ``repro campaign --jobs N``): scenarios are distributed over worker
processes with :mod:`concurrent.futures`, each worker memoizing within its
own :class:`AnalysisCache`.  The single-process memoized path stays the
default and the naive path stays the correctness oracle.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable

from repro.analysis.engines import (DEFAULT_ENGINES, EngineSpec, get_engine,
                                    resolve_engines)
from repro.campaigns.cache import (
    AnalysisCache,
    CacheStats,
    compute_arrival_curve,
    compute_class_bounds,
    compute_class_deadlines,
    compute_service_curve,
)
from repro.campaigns.scenario import Scenario
from repro.core.multiplexer import aggregate_flows
from repro.exec import ExecPolicy, ExecutionReport, ParallelExecutor
from repro.core.netcalc.arrival import TokenBucketArrivalCurve
from repro.core.netcalc.bounds import backlog_bound
from repro.core.netcalc.service import RateLatencyServiceCurve
from repro.errors import UnstableSystemError
from repro.flows.priorities import PriorityClass
from repro.reporting import (
    format_bound,
    format_bytes,
    format_ms,
    render_markdown_table,
    render_table,
    write_csv,
    yes_no,
)
from repro.store import ResultStore, StoreStats

__all__ = ["CampaignRow", "CampaignEngineRow", "ScenarioResult",
           "CampaignResult", "CampaignRunner"]

#: Short policy labels used in the result tables.
POLICY_LABELS = {"fcfs": "FCFS", "strict-priority": "priority"}


@dataclass(frozen=True)
class CampaignRow:
    """Per-(scenario, policy, class) worst-case bounds."""

    scenario: str
    policy: str
    priority: PriorityClass
    #: Number of messages of the class (replication included).
    message_count: int
    #: Binding deadline of the class, or ``None``.
    deadline: float | None
    #: End-to-end worst-case delay bound in seconds; ``inf`` when the
    #: class is unstable under this scenario.
    bound: float
    #: Per-point backlog bound in bits (buffer dimensioning); ``inf`` when
    #: the class aggregate overruns its residual service rate.
    backlog_bits: float
    #: False when the bound is not a valid worst case (overload).
    stable: bool
    #: Multiplexing points on the worst-case route.
    hops: int

    @property
    def meets_deadline(self) -> bool:
        """True when the bound respects the class constraint."""
        return self.deadline is None or self.bound <= self.deadline


@dataclass(frozen=True)
class CampaignEngineRow:
    """One bound engine's verdict on one (scenario, policy, class) cell.

    Produced only when the runner is asked for a non-default engine
    selection (``repro campaign --engine ...``); the canonical
    :class:`CampaignRow` bounds stay the calculus results either way.
    """

    scenario: str
    engine: str
    policy: str
    priority: PriorityClass
    #: The engine's end-to-end delay bound in seconds (``inf`` when the
    #: engine flags the class unstable under this scenario).
    bound: float
    stable: bool


@dataclass
class ScenarioResult:
    """Every row produced by one scenario, plus its wall-clock cost."""

    scenario: Scenario
    rows: list[CampaignRow]
    elapsed: float
    #: True when the rows were served by the result store (``--resume``)
    #: instead of being recomputed; ``elapsed`` is then the *original*
    #: computation's cost, as stored.
    resumed: bool = False
    #: Cross-engine bounds of the scenario; empty under the default
    #: (calculus-only) engine selection.
    engine_rows: list[CampaignEngineRow] = field(default_factory=list)

    def rows_for(self, policy: str) -> list[CampaignRow]:
        """The rows of one multiplexing policy."""
        return [row for row in self.rows if row.policy == policy]

    def feasible(self, policy: str) -> bool:
        """True when every class is stable and meets its constraint."""
        rows = self.rows_for(policy)
        return bool(rows) and all(row.stable and row.meets_deadline
                                  for row in rows)


@dataclass
class CampaignResult:
    """The combined outcome of a campaign run."""

    results: list[ScenarioResult] = field(default_factory=list)
    elapsed: float = 0.0
    #: Cache statistics of the run (empty in naive mode).
    stats: dict[str, CacheStats] = field(default_factory=dict)
    #: Result-store counters of the run; ``None`` without a store or when
    #: the workers kept their own stores (``jobs > 1``).
    store_stats: StoreStats | None = None
    #: What the fault-tolerant executor observed (retries, recoveries,
    #: structured failures); ``None`` only for hand-built results.
    exec_report: ExecutionReport | None = None

    @property
    def failures(self) -> list:
        """Scenarios that exhausted their retries (empty when all ran)."""
        return [] if self.exec_report is None else self.exec_report.failures

    @property
    def resumed(self) -> int:
        """Number of scenarios served from the result store."""
        return sum(1 for result in self.results if result.resumed)

    SUMMARY_HEADERS = ("scenario", "configuration", "policy", "classes",
                      "feasible")
    DETAIL_HEADERS = ("scenario", "policy", "class", "messages",
                      "constraint", "bound", "ok", "backlog", "stable")
    ENGINE_HEADERS = ("scenario", "engine", "policy", "class", "bound",
                      "stable")

    def rows(self) -> list[CampaignRow]:
        """Every row of every scenario, in campaign order."""
        return [row for result in self.results for row in result.rows]

    def engine_rows(self) -> list[CampaignEngineRow]:
        """Every cross-engine row (empty under the default selection)."""
        return [row for result in self.results
                for row in result.engine_rows]

    def summary_cells(self) -> list[tuple]:
        """One summary line per (scenario, policy)."""
        cells = []
        for result in self.results:
            for policy in result.scenario.policies:
                cells.append((
                    result.scenario.name,
                    result.scenario.describe(),
                    POLICY_LABELS[policy],
                    len(result.rows_for(policy)),
                    yes_no(result.feasible(policy))))
        return cells

    def detail_cells(self) -> list[tuple]:
        """One formatted line per result row."""
        return [(row.scenario, POLICY_LABELS[row.policy],
                 row.priority.label, row.message_count,
                 format_ms(row.deadline), format_bound(row.bound),
                 yes_no(row.meets_deadline),
                 format_bytes(row.backlog_bits), yes_no(row.stable))
                for row in self.rows()]

    def engine_cells(self) -> list[tuple]:
        """One formatted line per cross-engine row."""
        return [(row.scenario, row.engine, POLICY_LABELS[row.policy],
                 row.priority.label, format_bound(row.bound),
                 yes_no(row.stable))
                for row in self.engine_rows()]

    def to_table(self) -> str:
        """Summary plus per-class detail as aligned ASCII tables.

        Runs with a non-default engine selection append a third table
        comparing every selected engine's bound per cell; default runs
        render exactly the pre-engine layout.
        """
        summary = render_table(self.SUMMARY_HEADERS, self.summary_cells(),
                               title="Campaign summary")
        detail = render_table(self.DETAIL_HEADERS, self.detail_cells(),
                              title="Per-class worst-case bounds")
        tables = summary + "\n" + detail
        if self.engine_rows():
            tables += "\n" + render_table(
                self.ENGINE_HEADERS, self.engine_cells(),
                title="Cross-engine bounds")
        return tables

    def to_markdown(self) -> str:
        """The same tables in GitHub-flavoured markdown."""
        summary = render_markdown_table(
            self.SUMMARY_HEADERS, self.summary_cells(),
            title="Campaign summary")
        detail = render_markdown_table(
            self.DETAIL_HEADERS, self.detail_cells(),
            title="Per-class worst-case bounds")
        tables = summary + "\n" + detail
        if self.engine_rows():
            tables += "\n" + render_markdown_table(
                self.ENGINE_HEADERS, self.engine_cells(),
                title="Cross-engine bounds")
        return tables

    def write_csv(self, path: str | Path) -> None:
        """Dump the raw (unformatted) rows to ``path``."""
        write_csv(path,
                  ["scenario", "policy", "priority", "messages",
                   "deadline_s", "bound_s", "backlog_bits", "meets_deadline",
                   "stable", "hops"],
                  [(row.scenario, row.policy, row.priority.name,
                    row.message_count,
                    "" if row.deadline is None else repr(row.deadline),
                    repr(row.bound), repr(row.backlog_bits),
                    row.meets_deadline, row.stable, row.hops)
                   for row in self.rows()])


class CampaignRunner:
    """Run scenarios in one batch, sharing intermediates when allowed.

    Parameters
    ----------
    cache:
        The shared :class:`AnalysisCache`; a fresh one is created when
        omitted.  Passing a warm cache lets successive campaigns reuse each
        other's intermediates.  Single-process only: with ``jobs > 1`` the
        workers build their own caches and this one is not consulted.
    memoize:
        ``True`` (default) shares intermediates across scenarios and scales
        replicated aggregates arithmetically.  ``False`` rebuilds and
        re-aggregates every scenario's full message set from scratch — the
        naive baseline used by the campaign benchmark.
    jobs:
        Number of worker processes to spread the scenarios over
        (default 1: evaluate in-process).  With ``jobs > 1`` every worker
        keeps its own memoization cache, so cross-scenario sharing happens
        per worker and the combined result carries no cache statistics;
        the rows are identical to a single-process run.
    store:
        An optional :class:`~repro.store.ResultStore`.  Finished
        scenarios are always *written* to it (fingerprinted by the
        scenario spec plus the ``campaigns`` code-version token); they
        are only *read back* with ``resume=True``, so a plain run still
        reports honest wall-clock numbers.
    resume:
        Reuse scenarios already present in the store — the
        ``repro campaign --resume`` mode that skips everything a previous
        (possibly interrupted) run completed.  Rows are identical either
        way because scenario evaluation is deterministic.
    exec_policy:
        The failure policy of the run (retries, per-scenario timeout,
        ``fail_fast`` / ``max_failures``); defaults to
        :class:`~repro.exec.ExecPolicy`'s retry-twice-never-abort.
    faults:
        Fault-plan text for chaos runs (see :mod:`repro.exec.faults`);
        defaults to ``$REPRO_FAULTS``.
    engines:
        Bound-engine selection (``repro campaign --engine ...``), as
        accepted by :func:`repro.analysis.engines.resolve_engines`.
        The canonical :class:`CampaignRow` bounds are always the
        calculus results; any non-default selection additionally
        populates ``engine_rows`` with every selected engine's bound
        per cell, and stored scenarios are keyed by the selection so
        cross-engine runs never collide with default runs.
    """

    def __init__(self, cache: AnalysisCache | None = None, *,
                 memoize: bool = True, jobs: int = 1,
                 store: ResultStore | None = None,
                 resume: bool = False,
                 exec_policy: ExecPolicy | None = None,
                 faults: str | None = None,
                 engines: "str | Iterable[str] | None" = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs!r}")
        self.memoize = memoize
        self.jobs = int(jobs)
        self.cache = cache if cache is not None else AnalysisCache()
        self.store = store
        self.resume = bool(resume)
        self.exec_policy = exec_policy
        self.faults = faults
        self.engines = resolve_engines(engines)

    # -- public API ----------------------------------------------------------

    def run(self, scenarios: Iterable[Scenario]) -> CampaignResult:
        """Evaluate every scenario and return the combined result.

        Scenarios that exhaust their retries become structured
        :class:`~repro.exec.CellFailure` records on
        ``result.exec_report`` instead of aborting the run; scenarios are
        value-level (frozen, picklable) specs, so with ``jobs > 1`` they
        ship to worker processes as-is and each worker builds one runner
        (and one cache) on initialization.
        """
        started = time.perf_counter()
        scenarios = list(scenarios)
        result = CampaignResult()
        executor = ParallelExecutor(jobs=self.jobs,
                                    policy=self.exec_policy,
                                    fault_spec=self.faults,
                                    label="scenario")
        store_root = None if self.store is None else str(self.store.root)
        report = executor.map(
            _evaluate_scenario, scenarios,
            initializer=_init_worker,
            initargs=(self.memoize, store_root, self.resume, self.engines),
            serial_fn=self._run_scenario,
            serial_setup=_serial_noop,
            labels=[scenario.name for scenario in scenarios])
        result.results = report.ordered_results()
        result.exec_report = report
        result.elapsed = time.perf_counter() - started
        ran_in_process = (self.jobs == 1 or len(scenarios) <= 1
                          or report.serial_fallback)
        if ran_in_process and self.memoize:
            # Snapshot the counters: the cache keeps mutating across runs.
            result.stats = {level: CacheStats(stats.hits, stats.misses)
                            for level, stats in self.cache.stats.items()}
        if ran_in_process and self.store is not None:
            result.store_stats = replace(self.store.stats)
        return result

    # -- internals -----------------------------------------------------------

    def _scenario_inputs(self, scenario: Scenario):
        """(aggregates, deadlines) — shared in memoized mode, fresh otherwise."""
        spec = scenario.workload
        if self.memoize:
            return self.cache.aggregates(spec), self.cache.class_deadlines(spec)
        message_set = spec.build()
        return (aggregate_flows(message_set.messages),
                compute_class_deadlines(message_set))

    def _run_scenario(self, scenario: Scenario) -> ScenarioResult:
        """Evaluate one scenario, consulting the result store if present."""
        if self.store is None:
            return self._compute_scenario(scenario)
        if self.engines == DEFAULT_ENGINES:
            key: object = scenario  # pre-engine key: bit-identical store
        else:
            key = {"scenario": scenario,
                   "engines": [EngineSpec(name) for name in self.engines]}
        result, _ = self.store.cached(
            "campaign-scenario", key,
            lambda: self._compute_scenario(scenario),
            subsystem="campaigns",
            encode=_scenario_result_to_payload,
            decode=lambda payload: _scenario_result_from_payload(scenario,
                                                                 payload),
            reuse=self.resume)
        return result

    def _compute_scenario(self, scenario: Scenario) -> ScenarioResult:
        if scenario.topology.kind == "graph":
            return self._compute_graph_scenario(scenario)
        started = time.perf_counter()
        aggregates, deadlines = self._scenario_inputs(scenario)
        rows: list[CampaignRow] = []
        for policy in scenario.policies:
            if self.memoize:
                bounds = self.cache.class_bounds(
                    scenario.workload, scenario.capacity,
                    scenario.technology_delay, policy)
            else:
                bounds = compute_class_bounds(
                    aggregates, scenario.capacity,
                    scenario.technology_delay, policy)
            for cls in sorted(bounds):
                rows.append(self._row(scenario, policy, cls, bounds[cls],
                                      aggregates, deadlines))
        engine_rows = self._engine_rows(scenario)
        return ScenarioResult(scenario=scenario, rows=rows,
                              elapsed=time.perf_counter() - started,
                              engine_rows=engine_rows)

    def _compute_graph_scenario(self, scenario: Scenario) -> ScenarioResult:
        """Per-flow multi-hop bounds, aggregated back to per-class rows.

        Graph scenarios route every flow along its deterministic shortest
        path and bound it with
        :class:`~repro.analysis.multihop.GraphPathAnalysis`; the row's
        ``bound``/``backlog`` are the worst per-class values, so the
        result shape matches the single-multiplexer scenarios.  The
        analysis itself is not memoized (routes depend on the full
        message set), so memoized and naive runs are identical by
        construction.
        """
        from repro.analysis.multihop import GraphPathAnalysis
        from repro.errors import EmptyAggregateError

        started = time.perf_counter()
        aggregates, deadlines = self._scenario_inputs(scenario)
        if self.memoize:
            message_set = self.cache.message_set(scenario.workload)
        else:
            message_set = scenario.workload.build()
        graph_spec = scenario.topology.build_graph(
            scenario.workload.total_stations, scenario.capacity,
            scenario.technology_delay)
        rows: list[CampaignRow] = []
        for policy in scenario.policies:
            analysis = GraphPathAnalysis(graph_spec, policy=policy)
            outcome = analysis.analyze(message_set.messages)
            for cls in sorted(aggregates):
                try:
                    bound = outcome.class_delay(cls)
                    backlog = outcome.class_backlog(cls)
                except EmptyAggregateError:
                    continue
                rows.append(CampaignRow(
                    scenario=scenario.name,
                    policy=policy,
                    priority=cls,
                    message_count=aggregates[cls].count,
                    deadline=deadlines.get(cls),
                    bound=bound,
                    backlog_bits=backlog,
                    stable=math.isfinite(bound),
                    hops=scenario.hops))
        engine_rows = self._engine_rows(scenario)
        return ScenarioResult(scenario=scenario, rows=rows,
                              elapsed=time.perf_counter() - started,
                              engine_rows=engine_rows)

    def _engine_rows(self, scenario: Scenario) -> list[CampaignEngineRow]:
        """Every selected engine's per-class bounds for one scenario.

        Empty under the default selection (the canonical rows *are* the
        calculus bounds); a non-default selection evaluates each engine
        — including ``calculus``, so the comparison table is complete —
        through the :class:`~repro.analysis.engines.base.BoundEngine`
        scenario interface.
        """
        if self.engines == DEFAULT_ENGINES:
            return []
        rows: list[CampaignEngineRow] = []
        for name in self.engines:
            engine = get_engine(name)
            if not engine.supports(scenario):
                continue
            for policy in scenario.policies:
                result = engine.class_bounds(scenario, policy)
                for bound in result.bounds:
                    rows.append(CampaignEngineRow(
                        scenario=scenario.name,
                        engine=name,
                        policy=policy,
                        priority=bound.priority,
                        bound=bound.bound,
                        stable=bound.stable))
        return rows

    def _curves(self, scenario: Scenario, policy: str, cls: PriorityClass,
                aggregates) -> tuple[TokenBucketArrivalCurve,
                                     RateLatencyServiceCurve]:
        """(arrival, per-point service) curves for one class."""
        up_to = None if policy == "fcfs" else cls
        if self.memoize:
            return (self.cache.arrival_curve(scenario.workload, up_to),
                    self.cache.service_curve(
                        scenario.workload, scenario.capacity,
                        scenario.technology_delay, policy, up_to))
        return (compute_arrival_curve(aggregates, up_to),
                compute_service_curve(aggregates, scenario.capacity,
                                      scenario.technology_delay, policy,
                                      up_to))

    def _row(self, scenario: Scenario, policy: str, cls: PriorityClass,
             mux_bound, aggregates, deadlines) -> CampaignRow:
        """Compose one result row from the single-point bound."""
        stable = (mux_bound is not None
                  and not mux_bound.details.get("unstable"))
        if not stable:
            bound = backlog = math.inf
        else:
            arrival, service = self._curves(scenario, policy, cls,
                                            aggregates)
            # Pay the bursts once; every extra point adds its latency.
            bound = mux_bound.delay + (scenario.hops - 1) * service.latency
            try:
                backlog = backlog_bound(arrival, service, strict=False)
            except UnstableSystemError:  # pragma: no cover - strict=False
                backlog = math.inf
        return CampaignRow(
            scenario=scenario.name,
            policy=policy,
            priority=cls,
            message_count=aggregates[cls].count,
            deadline=deadlines.get(cls),
            bound=bound,
            backlog_bits=backlog,
            stable=stable,
            hops=scenario.hops)


# ---------------------------------------------------------------------------
# Result-store (de)serialisation
# ---------------------------------------------------------------------------

def _scenario_result_to_payload(result: ScenarioResult) -> dict:
    """One scenario's rows as a JSON payload for the result store.

    The ``engine_rows`` key appears only for cross-engine runs, so the
    stored payload of every default run stays byte-identical to the
    pre-engine format.
    """
    payload = {
        "elapsed": result.elapsed,
        "rows": [{
            "scenario": row.scenario,
            "policy": row.policy,
            "priority": row.priority.name,
            "message_count": row.message_count,
            "deadline": row.deadline,
            "bound": row.bound,
            "backlog_bits": row.backlog_bits,
            "stable": row.stable,
            "hops": row.hops,
        } for row in result.rows],
    }
    if result.engine_rows:
        payload["engine_rows"] = [{
            "scenario": row.scenario,
            "engine": row.engine,
            "policy": row.policy,
            "priority": row.priority.name,
            "bound": row.bound,
            "stable": row.stable,
        } for row in result.engine_rows]
    return payload


def _scenario_result_from_payload(scenario: Scenario,
                                  payload: dict) -> ScenarioResult:
    """Rebuild a stored scenario result (marked ``resumed``)."""
    rows = [CampaignRow(
        scenario=row["scenario"],
        policy=row["policy"],
        priority=PriorityClass[row["priority"]],
        message_count=int(row["message_count"]),
        deadline=row["deadline"],
        bound=float(row["bound"]),
        backlog_bits=float(row["backlog_bits"]),
        stable=bool(row["stable"]),
        hops=int(row["hops"]),
    ) for row in payload["rows"]]
    engine_rows = [CampaignEngineRow(
        scenario=row["scenario"],
        engine=row["engine"],
        policy=row["policy"],
        priority=PriorityClass[row["priority"]],
        bound=float(row["bound"]),
        stable=bool(row["stable"]),
    ) for row in payload.get("engine_rows", [])]
    return ScenarioResult(scenario=scenario, rows=rows,
                          elapsed=float(payload["elapsed"]), resumed=True,
                          engine_rows=engine_rows)


# ---------------------------------------------------------------------------
# Worker-process plumbing for CampaignRunner(jobs=N)
# ---------------------------------------------------------------------------

#: The per-process runner of the fan-out mode, built by :func:`_init_worker`.
_WORKER_RUNNER: CampaignRunner | None = None


def _serial_noop() -> None:
    """Serial-execution setup: the live runner already has cache/store."""


def _init_worker(memoize: bool, store_root: str | None = None,
                 resume: bool = False,
                 engines: tuple[str, ...] = DEFAULT_ENGINES) -> None:
    """Process-pool initializer: one runner (and cache/store) per worker."""
    global _WORKER_RUNNER
    store = None if store_root is None else ResultStore(store_root)
    _WORKER_RUNNER = CampaignRunner(memoize=memoize, store=store,
                                    resume=resume, engines=engines)


def _evaluate_scenario(scenario: Scenario) -> ScenarioResult:
    """Evaluate one scenario inside a worker process."""
    assert _WORKER_RUNNER is not None, "worker used before initialization"
    return _WORKER_RUNNER._run_scenario(scenario)
