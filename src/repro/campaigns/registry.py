"""The named scenario registry and its builtin catalogue.

Scenarios are registered by unique name; ``repro campaign --list`` prints
the catalogue and ``--run name,name`` (or ``--run all``) selects from it.
The builtin catalogue covers the paper's case study and the natural
extensions called out by the roadmap: the Figure-1 capacity sweep, the
multi-switch topologies, overload, inflated-burst (jitter-tolerant)
shaping, a MIL-STD-1553B-rate migration check and the scalability ladder.
"""

from __future__ import annotations

from repro import units
from repro.campaigns.scenario import Scenario, TopologySpec, WorkloadSpec
from repro.errors import DuplicateScenarioError, UnknownScenarioError

__all__ = ["register", "get", "names", "select", "builtin_scenarios"]

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry; rejects duplicate names by default."""
    if not replace and scenario.name in _REGISTRY:
        raise DuplicateScenarioError(
            f"scenario {scenario.name!r} is already registered "
            f"(pass replace=True to overwrite)")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises
    ------
    UnknownScenarioError
        If no scenario of that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{names()}") from None


def names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def builtin_scenarios() -> list[Scenario]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


def select(selection: str) -> list[Scenario]:
    """Resolve a CLI selection string to scenarios.

    ``"all"`` selects the whole catalogue; otherwise the string is a
    comma-separated list where each item is a scenario name or, when no
    scenario has that name, a tag (``ladder`` selects every scenario
    tagged ``ladder``).  An exact name always wins over a tag of the same
    spelling.
    """
    if selection.strip() == "all":
        return builtin_scenarios()
    chosen: list[Scenario] = []
    for item in (part.strip() for part in selection.split(",")):
        if not item:
            continue
        if item in _REGISTRY:
            scenario = _REGISTRY[item]
            if scenario not in chosen:
                chosen.append(scenario)
            continue
        tagged = [s for s in _REGISTRY.values() if item in s.tags]
        if not tagged:
            raise UnknownScenarioError(
                f"unknown scenario {item!r}; known scenarios: {names()}")
        chosen.extend(s for s in tagged if s not in chosen)
    if not chosen:
        raise UnknownScenarioError(
            f"selection {selection!r} matched no scenario; known scenarios: "
            f"{names()}")
    return chosen


# ---------------------------------------------------------------------------
# Builtin catalogue
# ---------------------------------------------------------------------------

register(Scenario(
    name="paper-real-case",
    description="The paper's case study: 16 stations, one switch, 10 Mbps "
                "(Figure 1).",
    tags=("paper",)))

register(Scenario(
    name="figure1-fast-ethernet",
    description="Figure-1 sweep companion: the same traffic on a 100 Mbps "
                "Fast-Ethernet link.",
    capacity=units.mbps(100),
    tags=("paper", "sweep")))

register(Scenario(
    name="dual-switch",
    description="Federated architecture: two switches joined by a "
                "backbone, traffic crossing both equipment bays.",
    topology=TopologySpec(kind="dual-switch"),
    tags=("topology",)))

register(Scenario(
    name="tree-federated",
    description="Two-level tree: leaf access switches under a core, "
                "worst-case route crossing three multiplexing points.",
    topology=TopologySpec(kind="tree", leaf_count=2),
    tags=("topology",)))

register(Scenario(
    name="overload",
    description="Deliberate overload: the case study replicated 32x "
                "saturates the 10 Mbps link — unstable classes must be "
                "reported gracefully, not crash the batch.",
    workload=WorkloadSpec(replication=32),
    tags=("stress",)))

register(Scenario(
    name="high-jitter",
    description="Jitter-tolerant shaping: every token bucket doubled to "
                "absorb release jitter, inflating all burst terms.",
    workload=WorkloadSpec(size_factor=2.0),
    tags=("shaping",)))

register(Scenario(
    name="milstd1553-migration",
    description="Migration sanity check: the Ethernet analysis on a "
                "1553B-rate 1 Mbps link (no relaying delay), showing why "
                "raw 1553B bandwidth cannot carry the shaped traffic.",
    capacity=units.mbps(1),
    technology_delay=0.0,
    tags=("migration",)))

register(Scenario(
    name="graph-diamond",
    description="Diamond multi-hop graph: two equal-cost two-switch "
                "branches between entry and exit, deterministic ECMP "
                "tie-break.",
    workload=WorkloadSpec(station_count=8),
    topology=TopologySpec(kind="graph", graph_family="diamond"),
    tags=("graph", "multi-hop")))

register(Scenario(
    name="graph-ring",
    description="Four-switch ring: cyclic backbone stressing the "
                "burst-propagation fixed point of the multi-hop analysis.",
    workload=WorkloadSpec(station_count=8),
    topology=TopologySpec(kind="graph", graph_family="ring",
                          graph_switches=4),
    tags=("graph", "multi-hop")))

register(Scenario(
    name="graph-star",
    description="The paper's star expressed as a graph spec — must "
                "reproduce the legacy single-switch results.",
    workload=WorkloadSpec(station_count=8),
    topology=TopologySpec(kind="graph", graph_family="star"),
    tags=("graph",)))

register(Scenario(
    name="graph-random",
    description="Seeded random multi-hop graph: spanning tree over four "
                "switches plus redundant links, routed lexicographically.",
    workload=WorkloadSpec(station_count=8),
    topology=TopologySpec(kind="graph", graph_family="random",
                          graph_switches=4, graph_seed=11),
    tags=("graph", "multi-hop")))

for _scale in (2, 4, 6, 8):
    register(Scenario(
        name=f"scalability-x{_scale}",
        description=f"Scalability ladder rung: the case-study traffic "
                    f"replicated {_scale}x through the shared link.",
        workload=WorkloadSpec(replication=_scale),
        tags=("ladder",)))
