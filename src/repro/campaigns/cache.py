"""Memoization of the intermediate results scenarios share.

A campaign evaluates N scenarios that differ in capacity, technology delay,
replication factor or topology but frequently share the *same* underlying
traffic.  The expensive intermediates form a small dependency chain::

    WorkloadSpec --(generate, O(stations))--> base MessageSet
                 --(one pass, O(messages))--> per-class ClassAggregate
                 --(arithmetic, O(classes))--> replicated aggregates
                 --(closed form, O(classes))--> arrival/service curves, bounds

:class:`AnalysisCache` memoizes every level of that chain, keyed by the
value-level specs, so an N-scenario sweep touches each message set once
instead of N times — and never materialises the replicated sets of the
scalability ladder at all (replicating every flow ``k`` times multiplies the
per-class sums by ``k`` and leaves the max burst unchanged, so the scaled
aggregates are exact).  Hit/miss counters are kept per level; the campaign
benchmark asserts the memoized runner beats naive per-scenario
recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.core.multiplexer import (
    ClassAggregate,
    aggregate_flows,
    compute_arrival_curve,
    compute_class_bounds,
    compute_service_curve,
)
from repro.core.netcalc.arrival import TokenBucketArrivalCurve
from repro.core.netcalc.service import RateLatencyServiceCurve
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass

from repro.campaigns.scenario import WorkloadSpec

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "compute_class_bounds",
    "compute_arrival_curve",
    "compute_service_curve",
    "compute_class_deadlines",
]

T = TypeVar("T")


# The closed forms themselves (compute_class_bounds & friends) live in
# :mod:`repro.core.multiplexer` next to the formulas, shared with the
# paper-model case study; they are re-exported here because both the
# memoized cache below and the runner's naive baseline call them, so the
# two modes can never drift apart formula-wise.

def compute_class_deadlines(message_set: MessageSet
                            ) -> dict[PriorityClass, float | None]:
    """Binding (smallest) deadline of every class present in the set."""
    return message_set.class_deadlines()


@dataclass
class CacheStats:
    """Hit/miss counters of one memoization level."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses


class AnalysisCache:
    """Shared intermediate results of a campaign run.

    Every public method is a memoized pure function of its value-level
    arguments; ``stats`` maps a level name (``base_sets``, ``aggregates``,
    ``bounds``, ...) to its :class:`CacheStats`.
    """

    def __init__(self) -> None:
        self._stores: dict[str, dict] = {}
        self.stats: dict[str, CacheStats] = {}

    def _memo(self, level: str, key, factory: Callable[[], T]) -> T:
        store = self._stores.setdefault(level, {})
        stats = self.stats.setdefault(level, CacheStats())
        try:
            value = store[key]
        except KeyError:
            stats.misses += 1
            value = store[key] = factory()
            return value
        stats.hits += 1
        return value

    # -- message sets --------------------------------------------------------

    def base_message_set(self, spec: WorkloadSpec) -> MessageSet:
        """The base (un-replicated) message set of ``spec``."""
        return self._memo("base_sets", spec.base_key, spec.build_base)

    def message_set(self, spec: WorkloadSpec) -> MessageSet:
        """The fully materialised message set, replication included.

        Only needed by consumers that want the individual messages (e.g. a
        simulation); the analytic pipeline goes through :meth:`aggregates`
        and never materialises replicated sets.
        """
        return self._memo("message_sets", spec, spec.build)

    # -- aggregates ----------------------------------------------------------

    def aggregates(self, spec: WorkloadSpec
                   ) -> dict[PriorityClass, ClassAggregate]:
        """Per-class aggregates of ``spec``, replication applied arithmetically."""

        def compute() -> dict[PriorityClass, ClassAggregate]:
            base = self._memo(
                "base_aggregates", spec.base_key,
                lambda: aggregate_flows(self.base_message_set(spec)))
            if spec.replication == 1:
                return base
            return {cls: aggregate.scaled(spec.replication)
                    for cls, aggregate in base.items()}

        return self._memo("aggregates", spec, compute)

    def class_deadlines(self, spec: WorkloadSpec
                        ) -> dict[PriorityClass, float | None]:
        """Binding (smallest) deadline per class; replication-invariant."""
        return self._memo(
            "deadlines", spec.base_key,
            lambda: compute_class_deadlines(self.base_message_set(spec)))

    # -- curves --------------------------------------------------------------

    def arrival_curve(self, spec: WorkloadSpec,
                      up_to: PriorityClass | None = None
                      ) -> TokenBucketArrivalCurve:
        """Token-bucket curve of the aggregate of classes ``<= up_to``.

        ``up_to=None`` aggregates every class (the FCFS view); passing a
        class gives the arrival curve whose delay through the residual
        service curve reproduces the strict-priority bound ``D_p``.
        """
        return self._memo(
            "arrival_curves", (spec, up_to),
            lambda: compute_arrival_curve(self.aggregates(spec), up_to))

    def service_curve(self, spec: WorkloadSpec, capacity: float,
                      technology_delay: float, policy: str,
                      priority: PriorityClass | None = None
                      ) -> RateLatencyServiceCurve:
        """Per-hop service curve seen by ``priority`` under ``policy``.

        FCFS serves the whole aggregate at the link rate after ``t_techno``;
        strict priority serves class ``priority`` at the residual rate after
        the lower-priority blocking latency.
        """
        return self._memo(
            "service_curves",
            (spec, capacity, technology_delay, policy, priority),
            lambda: compute_service_curve(self.aggregates(spec), capacity,
                                          technology_delay, policy,
                                          priority))

    # -- bounds --------------------------------------------------------------

    def class_bounds(self, spec: WorkloadSpec, capacity: float,
                     technology_delay: float, policy: str
                     ) -> dict[PriorityClass, object | None]:
        """Single-point per-class bounds; ``None`` marks an unstable class.

        The values are :class:`repro.core.multiplexer.MultiplexerBound`
        objects computed from the memoized aggregates with ``strict=False``
        (a campaign must report overloaded scenarios, not crash on them);
        classes whose residual capacity is exhausted map to ``None``.
        """
        return self._memo(
            "bounds", (spec, capacity, technology_delay, policy),
            lambda: compute_class_bounds(self.aggregates(spec), capacity,
                                         technology_delay, policy))
