"""Declarative scenario specifications.

A :class:`Scenario` is a frozen, hashable description of one campaign
experiment: *which* traffic (a :class:`WorkloadSpec` deriving a message set
from the seeded case-study generator), *where* it flows (a
:class:`TopologySpec` naming one of the canonical topology builders), and
*under what conditions* (link capacity, ``t_techno``, multiplexing
policies).  Because every field is a value — no live objects — scenarios can
be registered by name, compared, deduplicated, and used as memoization keys
by :class:`repro.campaigns.cache.AnalysisCache`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import units
from repro.errors import InvalidTopologyError, InvalidWorkloadError
from repro.flows.message_set import MessageSet
from repro.topology.builders import (
    dual_switch_topology,
    single_switch_star,
    tree_topology,
)
from repro.topology.network import Network
from repro.workloads.realcase import RealCaseParameters, generate_real_case
from repro.workloads.sweeps import scale_message_sizes, scale_station_count

__all__ = ["WorkloadSpec", "TopologySpec", "Scenario", "POLICIES"]

#: The two multiplexing policies a scenario can evaluate.
POLICIES = ("fcfs", "strict-priority")


@dataclass(frozen=True)
class WorkloadSpec:
    """A value-level recipe for a case-study message set.

    The spec separates the *base* workload (station count, seed, burst
    sizing) from the *replication* factor, because replication is the one
    transformation whose per-class aggregates can be derived arithmetically
    — the cache builds the base set once and scales the aggregates instead
    of materialising ``replication`` copies of every message.
    """

    #: Number of stations of the base synthetic case study.
    station_count: int = 16
    #: Seed of the workload generator.
    seed: int = 7
    #: Factor applied to every message size (token-bucket depth); values
    #: above 1 model buckets inflated to tolerate release jitter.
    size_factor: float = 1.0
    #: Station-replication factor (the scalability ladder's knob).
    replication: int = 1

    def __post_init__(self) -> None:
        if self.station_count < 4:
            raise InvalidWorkloadError(
                f"the case study needs at least 4 stations, "
                f"got {self.station_count}")
        if self.size_factor <= 0:
            raise InvalidWorkloadError(
                f"size factor must be positive, got {self.size_factor!r}")
        if self.replication < 1:
            raise InvalidWorkloadError(
                f"replication must be at least 1, got {self.replication!r}")

    @property
    def base_key(self) -> tuple[int, int, float]:
        """Cache key of the base (un-replicated) message set."""
        return (self.station_count, self.seed, self.size_factor)

    @property
    def total_stations(self) -> int:
        """Stations after replication."""
        return self.station_count * self.replication

    def build_base(self) -> MessageSet:
        """Materialise the base message set (no replication applied)."""
        message_set = generate_real_case(
            RealCaseParameters(station_count=self.station_count),
            seed=self.seed)
        if self.size_factor != 1.0:
            message_set = scale_message_sizes(message_set, self.size_factor)
        return message_set

    def build(self) -> MessageSet:
        """Materialise the full message set, replication included."""
        return scale_station_count(self.build_base(), self.replication)

    def describe(self) -> str:
        """Compact human-readable summary, e.g. ``16 stations x4``."""
        parts = [f"{self.station_count} stations"]
        if self.replication != 1:
            parts.append(f"x{self.replication}")
        if self.size_factor != 1.0:
            parts.append(f"bursts x{self.size_factor:g}")
        return " ".join(parts)


@dataclass(frozen=True)
class TopologySpec:
    """A value-level reference to one of the canonical topology builders.

    ``multiplexing_points`` follows the paper's accounting: the station's
    egress multiplexer and the first switch's relaying delay are folded into
    a single analysis point (that is what ``t_techno`` covers), and every
    additional switch on the worst-case route adds one multiplexing point.

    The ``"graph"`` kind selects one of the arbitrary multi-hop families
    of :mod:`repro.topology.graph` (``graph_family`` = ``"diamond"``,
    ``"ring"``, ``"star"`` or ``"random"``); those scenarios are analysed
    per flow along their routed paths by
    :class:`repro.analysis.multihop.GraphPathAnalysis` instead of the
    single-multiplexer composition.
    """

    #: ``"single-switch-star"``, ``"dual-switch"``, ``"tree"`` or
    #: ``"graph"``.
    kind: str = "single-switch-star"
    #: Number of leaf switches (``"tree"`` only).
    leaf_count: int = 2
    #: Multi-hop family (``"graph"`` only).
    graph_family: str = "diamond"
    #: Switch count of the ring/random families (``"graph"`` only).
    graph_switches: int = 4
    #: Seed of the random family (``"graph"`` only).
    graph_seed: int = 0
    #: Redundant links added to the random family's spanning tree.
    graph_extra_links: int = 2

    _KINDS = ("single-switch-star", "dual-switch", "tree", "graph")
    _FAMILIES = ("diamond", "ring", "star", "random")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise InvalidTopologyError(
                f"unknown topology kind {self.kind!r}; "
                f"known kinds: {list(self._KINDS)}")
        if self.leaf_count < 1:
            raise InvalidTopologyError(
                f"need at least one leaf switch, got {self.leaf_count}")
        if self.graph_family not in self._FAMILIES:
            raise InvalidTopologyError(
                f"unknown graph family {self.graph_family!r}; "
                f"known families: {list(self._FAMILIES)}")
        minimum = 3 if self.graph_family == "ring" else 1
        if self.graph_switches < minimum:
            raise InvalidTopologyError(
                f"the {self.graph_family} family needs at least {minimum} "
                f"switches, got {self.graph_switches}")
        if self.graph_extra_links < 0:
            raise InvalidTopologyError(
                f"extra links must be non-negative, "
                f"got {self.graph_extra_links}")

    @property
    def multiplexing_points(self) -> int:
        """Analysis points on the worst-case route (paper accounting)."""
        if self.kind == "single-switch-star":
            return 1
        if self.kind == "dual-switch":
            return 2
        if self.kind == "tree":
            return 3  # leaf uplink, core, leaf downlink
        if self.graph_family == "star":
            return 1
        if self.graph_family == "diamond":
            return 3  # entry switch, one branch switch, exit switch
        if self.graph_family == "ring":
            # Longest shortest route: half-way around, plus the entry.
            return self.graph_switches // 2 + 1
        return self.graph_switches  # random: conservative ceiling

    def build_graph(self, station_count: int,
                    capacity: float = units.mbps(10),
                    technology_delay: float = units.us(16)):
        """The :class:`~repro.topology.graph.GraphTopologySpec` of a
        ``"graph"`` topology (the declarative form the multi-hop analysis,
        the simulator and the result store all fingerprint)."""
        from repro.topology.graph import (
            diamond_graph_spec,
            random_graph_spec,
            ring_graph_spec,
            star_graph_spec,
        )

        if self.kind != "graph":
            raise InvalidTopologyError(
                f"topology kind {self.kind!r} has no graph spec; "
                f"use build()")
        if self.graph_family == "star":
            return star_graph_spec(station_count, capacity=capacity,
                                   technology_delay=technology_delay)
        if self.graph_family == "diamond":
            return diamond_graph_spec(station_count, capacity=capacity,
                                      technology_delay=technology_delay)
        if self.graph_family == "ring":
            return ring_graph_spec(station_count,
                                   switch_count=self.graph_switches,
                                   capacity=capacity,
                                   technology_delay=technology_delay)
        return random_graph_spec(station_count,
                                 switch_count=self.graph_switches,
                                 extra_links=self.graph_extra_links,
                                 seed=self.graph_seed,
                                 capacity=capacity,
                                 technology_delay=technology_delay)

    def build(self, station_count: int,
              capacity: float = units.mbps(10),
              technology_delay: float = units.us(16)) -> Network:
        """Instantiate the topology for ``station_count`` stations."""
        if self.kind == "graph":
            return self.build_graph(
                station_count, capacity=capacity,
                technology_delay=technology_delay).to_network()
        if self.kind == "single-switch-star":
            return single_switch_star(station_count, capacity=capacity,
                                      technology_delay=technology_delay)
        if self.kind == "dual-switch":
            return dual_switch_topology(
                max(1, math.ceil(station_count / 2)), capacity=capacity,
                technology_delay=technology_delay)
        return tree_topology(
            self.leaf_count,
            max(1, math.ceil(station_count / self.leaf_count)),
            capacity=capacity, technology_delay=technology_delay)

    def describe(self) -> str:
        """Compact human-readable summary, e.g. ``tree (3 hops)``."""
        if self.kind == "graph":
            return (f"graph/{self.graph_family} "
                    f"({self.multiplexing_points} pt)")
        return f"{self.kind} ({self.multiplexing_points} pt)"


@dataclass(frozen=True)
class Scenario:
    """One named campaign experiment.

    A scenario is fully declarative: workload recipe, topology reference,
    link capacity, technology delay and the multiplexing policies to
    evaluate.  The runner turns it into per-class worst-case delay and
    backlog bounds.
    """

    #: Unique registry name (``repro campaign --run <name>``).
    name: str
    #: One-line human description shown by ``repro campaign --list``.
    description: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    #: Link capacity ``C`` in bits per second.
    capacity: float = units.mbps(10)
    #: Relaying-delay bound ``t_techno`` in seconds.
    technology_delay: float = units.us(16)
    #: Multiplexing policies to evaluate (subset of :data:`POLICIES`).
    policies: tuple[str, ...] = POLICIES
    #: Free-form labels used to select scenario families (e.g. ``ladder``).
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidWorkloadError("a scenario needs a non-empty name")
        if self.capacity <= 0:
            raise InvalidWorkloadError(
                f"capacity must be positive, got {self.capacity!r}")
        if self.technology_delay < 0:
            raise InvalidWorkloadError(
                f"technology delay must be non-negative, "
                f"got {self.technology_delay!r}")
        unknown = [p for p in self.policies if p not in POLICIES]
        if unknown or not self.policies:
            raise InvalidWorkloadError(
                f"policies must be a non-empty subset of {POLICIES}, "
                f"got {self.policies!r}")
        if self.topology.kind == "graph" and self.workload.replication != 1:
            # Replicated aggregates are an arithmetic shortcut of the
            # single-multiplexer composition; graph scenarios route every
            # flow individually, so the stations must really exist.
            raise InvalidWorkloadError(
                f"graph topologies route per flow and do not support "
                f"workload replication (got replication="
                f"{self.workload.replication})")

    @property
    def hops(self) -> int:
        """Multiplexing points on the worst-case route."""
        return self.topology.multiplexing_points

    def describe(self) -> str:
        """One-line configuration summary for listings."""
        return (f"{self.workload.describe()}, {self.topology.describe()}, "
                f"{self.capacity / 1e6:g} Mbps, "
                f"t_techno {self.technology_delay * 1e6:g} us")
