"""Scenario campaigns: declarative, batched, memoized what-if analysis.

The paper evaluates one hand-built configuration; this package turns that
into a first-class *campaign* layer so "as many scenarios as you can
imagine" run in one pass:

* :mod:`~repro.campaigns.scenario` — :class:`Scenario`,
  :class:`WorkloadSpec` and :class:`TopologySpec`: frozen, hashable specs
  describing one experiment (traffic recipe, topology, capacity,
  ``t_techno``, multiplexing policies),
* :mod:`~repro.campaigns.registry` — the named catalogue
  (:func:`register`, :func:`get`, :func:`select`,
  :func:`builtin_scenarios`) seeded with the paper's case study, the
  Figure-1 capacity sweep, multi-switch topologies, overload, inflated
  bursts, a 1553B-rate migration check and the scalability ladder,
* :mod:`~repro.campaigns.cache` — :class:`AnalysisCache`: memoizes the
  intermediates scenarios share (base message sets, per-class
  :class:`~repro.core.multiplexer.ClassAggregate` statistics, arrival and
  residual service curves, closed-form bounds) with per-level hit/miss
  counters,
* :mod:`~repro.campaigns.runner` — :class:`CampaignRunner` /
  :class:`CampaignResult`: batch execution producing structured
  :class:`CampaignRow` results renderable as ASCII, markdown or CSV.

The ``repro campaign`` CLI subcommand is the front end of this package.
"""

from repro.campaigns.cache import AnalysisCache, CacheStats
from repro.campaigns.registry import (
    builtin_scenarios,
    get,
    names,
    register,
    select,
)
from repro.campaigns.runner import (
    CampaignResult,
    CampaignRow,
    CampaignRunner,
    ScenarioResult,
)
from repro.campaigns.scenario import (
    POLICIES,
    Scenario,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "Scenario",
    "WorkloadSpec",
    "TopologySpec",
    "POLICIES",
    "AnalysisCache",
    "CacheStats",
    "CampaignRunner",
    "CampaignResult",
    "CampaignRow",
    "ScenarioResult",
    "register",
    "get",
    "select",
    "names",
    "builtin_scenarios",
]
