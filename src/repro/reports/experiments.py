"""The builtin experiment catalogue of the reproduction report.

One :class:`~repro.reports.spec.ExperimentSpec` per exhibit: the paper's
tables/figures (E1–E6) and the beyond-paper studies the roadmap added
(sensitivity, scalability, buffer dimensioning, the campaign catalogue).
Every build callable regenerates its exhibit from the same seeded
case-study workload the CLI and benchmarks use, so the committed artifacts
under ``artifacts/`` are the code's current output — never hand-typed.

The three headline claims of the paper are flagged ``headline=True`` and
badge the top of the generated ``REPORT.md``:

1. the case-study traffic fits on the MIL-STD-1553B bus (E3),
2. FCFS switched Ethernet at 10 Mbps violates the urgent class's 3 ms
   constraint despite the 10× raw-speed advantage (E1),
3. the four-queue strict-priority scheme meets every constraint (E1).
"""

from __future__ import annotations

from functools import lru_cache

from repro import units
from repro.analysis import (
    baseline_1553_report,
    burst_scaling_sweep,
    fcfs_violation_table,
    jitter_comparison,
    preemption_ablation,
    technology_comparison,
    technology_delay_sweep,
    validate_bounds,
)
from repro.analysis.buffers import validate_buffer_requirements
from repro.analysis.paper_model import PaperCaseStudy
from repro.analysis.scalability import max_feasible_scale, scalability_sweep
from repro.campaigns import CampaignRunner, builtin_scenarios
from repro.campaigns import get as get_scenario
from repro.flows.message_set import MessageSet
from repro.flows.priorities import PriorityClass, assign_priority
from repro.fuzz.campaign import FuzzCampaign
from repro.fuzz.corpus import load_entries
from repro.reporting import format_bound, format_bytes, format_ms, yes_no
from repro.reports.spec import (
    ClaimCheck,
    ExperimentResult,
    ExperimentSpec,
    FigureArtifact,
    TableArtifact,
    register_experiment,
)
from repro.serve import AdmissionEngine, message_from_payload
from repro.simulation.campaign import SimulationCampaign
from repro.workloads import RealCaseParameters, generate_real_case

__all__ = ["case_study_message_set", "register_builtin_experiments"]

#: The report always reproduces the paper's configuration: 16 stations,
#: seed 7, 10 Mbps, t_techno = 16 µs (the CLI defaults).
REPORT_STATIONS = 16
REPORT_SEED = 7


@lru_cache(maxsize=1)
def case_study_message_set() -> MessageSet:
    """The seeded case-study workload shared by every report experiment."""
    return generate_real_case(
        RealCaseParameters(station_count=REPORT_STATIONS), seed=REPORT_SEED)


def _ms(seconds: float) -> float:
    """Seconds to milliseconds for raw CSV columns."""
    return units.to_ms(seconds)


# ---------------------------------------------------------------------------
# E1 — Figure 1
# ---------------------------------------------------------------------------

def _build_figure1() -> ExperimentResult:
    study = PaperCaseStudy(case_study_message_set())
    rows = study.figure1_rows()
    table = TableArtifact(
        name="bounds",
        title="Per-class delay bounds, FCFS vs strict priority",
        headers=("class", "messages", "constraint", "FCFS", "ok",
                 "priority", "ok"),
        display_rows=tuple(
            (row.priority.label, row.message_count, format_ms(row.deadline),
             format_bound(row.fcfs_bound), yes_no(row.fcfs_feasible),
             format_bound(row.priority_bound),
             yes_no(row.priority_feasible))
            for row in rows),
        raw_headers=("priority", "messages", "deadline_ms", "fcfs_bound_ms",
                     "fcfs_ok", "priority_bound_ms", "priority_ok"),
        raw_rows=tuple(
            (row.priority.name, row.message_count,
             "" if row.deadline is None else _ms(row.deadline),
             _ms(row.fcfs_bound), row.fcfs_feasible,
             _ms(row.priority_bound), row.priority_feasible)
            for row in rows))
    labels, values, markers = [], [], []
    for row in rows:
        for policy, bound in (("FCFS", row.fcfs_bound),
                              ("priority", row.priority_bound)):
            if row.deadline is not None:
                markers.append((len(labels), _ms(row.deadline)))
            labels.append(f"{row.priority.label} — {policy}")
            values.append(_ms(bound))
    figure = FigureArtifact(
        name="bounds", title="Figure 1 — delay bounds vs constraints (ms)",
        labels=tuple(labels), values=tuple(values), unit="ms",
        markers=tuple(markers))
    urgent = {row.priority: row for row in rows}[PriorityClass.URGENT]
    return ExperimentResult(
        tables=[table],
        figures=[figure],
        claims=[
            ClaimCheck(
                claim="FCFS on the 10 Mbps link violates at least one "
                      "real-time constraint (the urgent 3 ms class)",
                passed=study.fcfs_violates_constraints(),
                detail=f"urgent FCFS bound "
                       f"{format_bound(urgent.fcfs_bound)} vs deadline "
                       f"{format_ms(urgent.deadline)}",
                headline=True),
            ClaimCheck(
                claim="Strict 802.1p priorities meet every real-time "
                      "constraint",
                passed=study.priority_meets_all_constraints(),
                detail=f"urgent priority bound "
                       f"{format_bound(urgent.priority_bound)}",
                headline=True),
            ClaimCheck(
                claim="The urgent class's priority bound is below 3 ms",
                passed=study.urgent_priority_bound_below_3ms(),
                detail=format_bound(urgent.priority_bound)),
            ClaimCheck(
                claim="The periodic class's priority bound improves on "
                      "its FCFS bound",
                passed=study.periodic_priority_bound_below_fcfs()),
        ],
        values={
            "fcfs-bound": format_bound(study.fcfs_bound()),
            "urgent-priority-bound": format_bound(urgent.priority_bound),
            "urgent-deadline": format_ms(urgent.deadline),
        },
        notes="The paper's central exhibit: per-class worst-case delay "
              "bounds on the 10 Mbps link against each class's real-time "
              "constraint (markers in the figure).")


# ---------------------------------------------------------------------------
# E2 — FCFS violations vs capacity
# ---------------------------------------------------------------------------

def _build_violations() -> ExperimentResult:
    rows = fcfs_violation_table(case_study_message_set())
    table = TableArtifact(
        name="violations",
        title="Constraint violations vs link capacity",
        headers=("capacity", "class", "FCFS bound", "FCFS violations",
                 "priority bound", "priority violations"),
        display_rows=tuple(
            (f"{row.capacity / 1e6:.0f} Mbps", row.priority.name,
             format_bound(row.fcfs_bound), row.fcfs_violated_messages,
             format_bound(row.priority_bound),
             row.priority_violated_messages)
            for row in rows),
        raw_headers=("capacity_mbps", "priority", "fcfs_bound_ms",
                     "fcfs_violated", "priority_bound_ms",
                     "priority_violated", "messages"),
        raw_rows=tuple(
            (row.capacity / 1e6, row.priority.name, _ms(row.fcfs_bound),
             row.fcfs_violated_messages, _ms(row.priority_bound),
             row.priority_violated_messages, row.message_count)
            for row in rows))
    at_10 = [row for row in rows if row.capacity == units.mbps(10)]
    fcfs_violated_10 = sum(row.fcfs_violated_messages for row in at_10)
    at_100 = [row for row in rows if row.capacity == units.mbps(100)]
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="Raw bandwidth alone does not buy determinism: FCFS "
                      "violates messages at 10 Mbps",
                passed=fcfs_violated_10 > 0,
                detail=f"{fcfs_violated_10} messages violated at 10 Mbps"),
            ClaimCheck(
                claim="The Fast-Ethernet (100 Mbps) upgrade path clears "
                      "the FCFS violations on this case study",
                passed=bool(at_100) and all(row.fcfs_ok for row in at_100)),
        ],
        values={"fcfs-violated-at-10mbps": str(fcfs_violated_10)},
        notes="Per-capacity, per-class accounting of individually violated "
              "messages under each multiplexing policy.")


# ---------------------------------------------------------------------------
# E3 — the MIL-STD-1553B baseline
# ---------------------------------------------------------------------------

def _build_baseline_1553() -> ExperimentResult:
    report = baseline_1553_report(case_study_message_set())
    frames = TableArtifact(
        name="minor-frames",
        title="MIL-STD-1553B minor frames",
        headers=("minor frame", "busy time", "utilisation"),
        display_rows=tuple(
            (index, format_ms(duration), f"{utilization * 100:.1f} %")
            for index, (duration, utilization)
            in enumerate(zip(report.minor_frame_durations,
                             report.minor_frame_utilizations))),
        raw_headers=("minor_frame", "busy_ms", "utilization"),
        raw_rows=tuple(
            (index, _ms(duration), utilization)
            for index, (duration, utilization)
            in enumerate(zip(report.minor_frame_durations,
                             report.minor_frame_utilizations))))
    classes = tuple(cls for cls in PriorityClass
                    if cls in report.analytic_worst_per_class)
    response = TableArtifact(
        name="response-times",
        title="1553B response times per class",
        headers=("class", "analytic worst", "simulated worst"),
        display_rows=tuple(
            (cls.label, format_ms(report.analytic_worst_per_class.get(cls)),
             format_ms(report.simulated_worst_per_class.get(cls)))
            for cls in classes),
        raw_headers=("priority", "analytic_worst_ms", "simulated_worst_ms"),
        raw_rows=tuple(
            (cls.name, _ms(report.analytic_worst_per_class[cls]),
             _ms(report.simulated_worst_per_class.get(cls, float("nan"))))
            for cls in classes))
    figure = FigureArtifact(
        name="utilization",
        title="1553B minor-frame utilisation (%), marker at 100 %",
        labels=tuple(f"minor frame {index}" for index
                     in range(len(report.minor_frame_utilizations))),
        values=tuple(round(u * 100, 1)
                     for u in report.minor_frame_utilizations),
        unit="%",
        markers=tuple((index, 100.0) for index
                      in range(len(report.minor_frame_utilizations))))
    return ExperimentResult(
        tables=[frames, response],
        figures=[figure],
        claims=[
            ClaimCheck(
                claim="The 160 ms / 20 ms cyclic 1553B schedule is "
                      "feasible for the case-study traffic",
                passed=report.feasible,
                detail=f"busiest minor frame at "
                       f"{report.max_utilization * 100:.1f} %",
                headline=True),
            ClaimCheck(
                claim="The bus simulation completes the schedule without "
                      "minor-frame overruns",
                passed=report.simulated_overruns == 0,
                detail=f"{report.simulated_overruns} overruns observed"),
        ],
        values={
            "max-utilization": f"{report.max_utilization * 100:.1f} %",
            "feasible": yes_no(report.feasible),
        },
        notes="The baseline the migration is judged against: schedule "
              "feasibility, per-minor-frame utilisation and simulated "
              "response times on the 1 Mbps bus.")


# ---------------------------------------------------------------------------
# E4 — technology comparison
# ---------------------------------------------------------------------------

def _build_comparison() -> ExperimentResult:
    rows = technology_comparison(case_study_message_set())
    table = TableArtifact(
        name="comparison",
        title="1553B vs switched Ethernet",
        headers=("class", "constraint", "1553B", "ok", "FCFS", "ok",
                 "priority", "ok"),
        display_rows=tuple(
            (row.priority.label, format_ms(row.deadline),
             format_ms(row.milstd1553_bound), yes_no(row.milstd1553_ok),
             format_bound(row.ethernet_fcfs_bound), yes_no(row.fcfs_ok),
             format_bound(row.ethernet_priority_bound),
             yes_no(row.priority_ok))
            for row in rows),
        raw_headers=("priority", "deadline_ms", "milstd1553_ms",
                     "ethernet_fcfs_ms", "ethernet_priority_ms"),
        raw_rows=tuple(
            (row.priority.name,
             "" if row.deadline is None else _ms(row.deadline),
             _ms(row.milstd1553_bound), _ms(row.ethernet_fcfs_bound),
             _ms(row.ethernet_priority_bound))
            for row in rows))
    urgent = next((row for row in rows
                   if row.priority is PriorityClass.URGENT), None)
    values = {}
    if urgent is not None:
        values["urgent-speedup"] = f"{urgent.speedup_over_1553:.1f}x"
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="Prioritised Ethernet beats the 1553B worst-case "
                      "response time for every class",
                passed=all(row.ethernet_priority_bound
                           < row.milstd1553_bound for row in rows)),
        ],
        values=values,
        notes="Worst-case response times of the three technologies side by "
              "side, per priority class, against the binding deadline.")


# ---------------------------------------------------------------------------
# E5 — analytic bounds vs simulation
# ---------------------------------------------------------------------------

def _build_bound_vs_sim() -> ExperimentResult:
    rows = validate_bounds(case_study_message_set())
    table = TableArtifact(
        name="validation",
        title="Analytic bounds vs simulated worst delays",
        headers=("policy", "class", "bound", "simulated worst", "holds"),
        display_rows=tuple(
            (row.policy, row.priority.name, format_bound(row.analytic_bound),
             format_ms(row.simulated_worst), yes_no(row.bound_holds))
            for row in rows),
        raw_headers=("policy", "priority", "bound_ms", "simulated_worst_ms",
                     "simulated_mean_ms", "samples", "tightness"),
        raw_rows=tuple(
            (row.policy, row.priority.name, _ms(row.analytic_bound),
             _ms(row.simulated_worst), _ms(row.simulated_mean),
             row.samples, round(row.tightness, 6))
            for row in rows))
    tightest = max((row.tightness for row in rows), default=float("nan"))
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="Every analytic bound dominates the simulated worst "
                      "case (the bounds are safe)",
                passed=bool(rows) and all(row.bound_holds for row in rows),
                detail=f"{len(rows)} (policy, class) pairs checked; "
                       f"tightest ratio {tightest:.2f}"),
        ],
        values={"pairs": str(len(rows)),
                "max-tightness": f"{tightest:.2f}"},
        notes="The paper only reports analytic bounds; this check runs the "
              "adversarial synchronised-release simulation on the same "
              "network and verifies the bounds are never exceeded.")


# ---------------------------------------------------------------------------
# Monte-Carlo bound validation
# ---------------------------------------------------------------------------

#: The Monte-Carlo grid of the report: 5 seeds × 3 scenarios × 2 policies.
MONTE_CARLO_SEEDS = (1, 2, 3, 4, 5)


def _build_monte_carlo() -> ExperimentResult:
    campaign = SimulationCampaign(
        station_count=REPORT_STATIONS, workload_seed=REPORT_SEED,
        seeds=MONTE_CARLO_SEEDS)
    result = campaign.run()
    table = TableArtifact(
        name="monte-carlo",
        title="Monte-Carlo bound validation "
              f"({len(MONTE_CARLO_SEEDS)} seeds × scenarios × policies)",
        headers=("scale", "scenario", "policy", "class", "seeds", "bound",
                 "worst sim", "tightness", "holds"),
        display_rows=tuple(result.row_cells()),
        raw_headers=("size_factor", "scenario", "policy", "priority",
                     "seeds", "bound_ms", "worst_simulated_ms",
                     "mean_simulated_ms", "samples", "tightness",
                     "bound_holds"),
        raw_rows=tuple(
            (row.size_factor, row.scenario, row.policy, row.priority.name,
             row.seeds, _ms(row.analytic_bound), _ms(row.worst_simulated),
             _ms(row.mean_simulated), row.samples,
             round(row.tightness, 6), row.bound_holds)
            for row in result.rows))
    figure = FigureArtifact(
        name="tightness",
        title="Worst observed / bound per configuration (1.0 = bound hit)",
        labels=tuple(f"{row.scenario[:4]} {row.policy} {row.priority.name}"
                     for row in result.rows),
        values=tuple(round(row.tightness, 3) for row in result.rows),
        unit="ratio",
        markers=tuple((index, 1.0) for index in range(len(result.rows))))
    synchronized_tightest = all(
        max((r.tightness for r in result.rows
             if r.scenario == "synchronized" and r.policy == policy),
            default=0.0)
        >= max((r.tightness for r in result.rows
                if r.scenario != "synchronized" and r.policy == policy),
               default=0.0)
        for policy in ("fcfs", "strict-priority"))
    return ExperimentResult(
        tables=[table],
        figures=[figure],
        claims=[
            ClaimCheck(
                claim="Every analytic bound dominates every simulated "
                      "latency across the whole Monte-Carlo grid "
                      "(seeds × scenarios × policies)",
                passed=result.all_bounds_hold,
                detail=f"{result.cells} cells, {len(result.rows)} "
                       f"(scenario, policy, class) rows, worst tightness "
                       f"{result.max_tightness:.2f}"),
            ClaimCheck(
                claim="The adversarial synchronized release is the "
                      "tightest scenario (it drives the worst case)",
                passed=synchronized_tightest),
            ClaimCheck(
                claim="Shaped traffic is loss-free in every cell",
                passed=result.frames_dropped == 0,
                detail=f"{result.frames_dropped} frames dropped"),
        ],
        values={
            "cells": str(result.cells),
            "seeds": str(len(MONTE_CARLO_SEEDS)),
            "all-hold": yes_no(result.all_bounds_hold),
            "max-tightness": f"{result.max_tightness:.2f}",
        },
        notes="The bound-vs-simulation check run as a statistical campaign "
              "instead of a single seed: every cell of the seeds × release "
              "scenarios × multiplexing policies grid is fully simulated "
              "and its per-class worst latencies are compared against the "
              "analytic bounds of the same configuration.")


# ---------------------------------------------------------------------------
# Fuzzing & soundness
# ---------------------------------------------------------------------------

#: The report's fuzz slice: a deterministic prefix of the seed-0 generator
#: stream (the full campaign — ``repro fuzz --count 500`` — runs in CI).
FUZZ_COUNT = 32
FUZZ_SEED = 0


def _build_fuzz() -> ExperimentResult:
    campaign = FuzzCampaign(count=FUZZ_COUNT, seed=FUZZ_SEED)
    result = campaign.run()
    table = TableArtifact(
        name="fuzz",
        title=f"Randomized soundness fuzzing "
              f"({FUZZ_COUNT} generated scenarios, seed {FUZZ_SEED})",
        headers=result.ROW_HEADERS,
        display_rows=tuple(result.row_cells()),
        raw_headers=("index", "scenario", "policy", "priority", "bound_ms",
                     "worst_simulated_ms", "samples", "tightness",
                     "bound_holds", "violations"),
        raw_rows=tuple(
            (outcome.cell.index, outcome.cell.scenario.name, row.policy,
             row.priority.name, _ms(row.analytic_bound),
             _ms(row.worst_simulated), row.samples,
             round(row.tightness, 6), row.bound_holds,
             len(outcome.violations))
            for outcome in result.outcomes for row in outcome.bound_rows))
    corpus = load_entries()
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="Every invariant (soundness, stability consistency, "
                      "byte-determinism, store round-trip) holds on the "
                      "fuzzed slice",
                passed=result.all_invariants_hold,
                detail=f"{result.cells} scenarios, "
                       f"{result.violation_count} violations, max "
                       f"tightness {result.max_tightness:.2f}"),
            ClaimCheck(
                claim="The committed regression corpus holds at least 5 "
                      "minimized edge-case scenarios",
                passed=len(corpus) >= 5,
                detail=f"{len(corpus)} entries under tests/fuzz/corpus/"),
        ],
        values={
            "scenarios": str(result.cells),
            "violations": str(result.violation_count),
            "corpus-size": str(len(corpus)),
            "max-tightness": f"{result.max_tightness:.2f}",
        },
        notes="Seeded random scenarios pushed through the analytic and "
              "simulation paths; every cell checks the four invariants the "
              "soundness claim rests on.  Violating or near-tight scenarios "
              "are minimized into the committed corpus and replay as "
              "ordinary regression tests.")


# ---------------------------------------------------------------------------
# E6 — jitter
# ---------------------------------------------------------------------------

def _build_jitter() -> ExperimentResult:
    rows = jitter_comparison(case_study_message_set())
    table = TableArtifact(
        name="jitter",
        title="Per-stream delivery jitter",
        headers=("technology", "class", "worst jitter", "mean jitter",
                 "streams"),
        display_rows=tuple(
            (row.technology, row.priority.name, format_ms(row.worst_jitter),
             format_ms(row.mean_jitter), row.streams)
            for row in rows),
        raw_headers=("technology", "priority", "worst_jitter_ms",
                     "mean_jitter_ms", "worst_latency_ms", "streams"),
        raw_rows=tuple(
            (row.technology, row.priority.name, _ms(row.worst_jitter),
             _ms(row.mean_jitter), _ms(row.worst_latency), row.streams)
            for row in rows))
    worst = {technology: max((row.worst_jitter for row in rows
                              if row.technology == technology),
                             default=float("nan"))
             for technology in ("mil-std-1553b", "ethernet-fcfs",
                                "ethernet-priority")}
    return ExperimentResult(
        tables=[table],
        values={"milstd-worst": format_ms(worst["mil-std-1553b"]),
                "priority-worst": format_ms(worst["ethernet-priority"])},
        notes="The paper's announced future-work item: peak-to-peak "
              "delivery jitter per message stream under the rigid 1553B "
              "schedule and both Ethernet policies.")


# ---------------------------------------------------------------------------
# E7 — sensitivity
# ---------------------------------------------------------------------------

def _build_sensitivity() -> ExperimentResult:
    message_set = case_study_message_set()
    delay_rows = technology_delay_sweep(message_set)
    burst_rows = burst_scaling_sweep(message_set)
    preemption_rows = preemption_ablation(message_set)
    ttechno = TableArtifact(
        name="ttechno",
        title="Sensitivity to the relaying-delay bound t_techno",
        headers=("t_techno", "FCFS bound", "urgent priority bound",
                 "urgent ok"),
        display_rows=tuple(
            (f"{row.technology_delay * 1e6:g} us",
             format_bound(row.fcfs_bound),
             format_bound(row.urgent_priority_bound),
             yes_no(row.urgent_meets_deadline))
            for row in delay_rows),
        raw_headers=("t_techno_us", "fcfs_bound_ms",
                     "urgent_priority_bound_ms", "urgent_ok"),
        raw_rows=tuple(
            (row.technology_delay * 1e6, _ms(row.fcfs_bound),
             _ms(row.urgent_priority_bound), row.urgent_meets_deadline)
            for row in delay_rows))
    bursts = TableArtifact(
        name="bursts",
        title="Sensitivity to token-bucket burst inflation",
        headers=("size factor", "FCFS bound", "urgent priority bound",
                 "all constraints met"),
        display_rows=tuple(
            (f"x{row.factor:g}", format_bound(row.fcfs_bound),
             format_bound(row.priority_bounds.get(PriorityClass.URGENT,
                                                  float("nan"))),
             yes_no(row.all_constraints_met))
            for row in burst_rows),
        raw_headers=("factor", "fcfs_bound_ms", "urgent_priority_bound_ms",
                     "all_constraints_met"),
        raw_rows=tuple(
            (row.factor, _ms(row.fcfs_bound),
             _ms(row.priority_bounds.get(PriorityClass.URGENT,
                                         float("nan"))),
             row.all_constraints_met)
            for row in burst_rows))
    preemption = TableArtifact(
        name="preemption",
        title="Non-preemptive blocking cost per class",
        headers=("class", "non-preemptive", "preemptive", "blocking cost"),
        display_rows=tuple(
            (row.priority.label, format_bound(row.non_preemptive_bound),
             format_bound(row.preemptive_bound),
             format_ms(row.blocking_cost))
            for row in preemption_rows),
        raw_headers=("priority", "non_preemptive_ms", "preemptive_ms",
                     "blocking_cost_ms"),
        raw_rows=tuple(
            (row.priority.name, _ms(row.non_preemptive_bound),
             _ms(row.preemptive_bound), _ms(row.blocking_cost))
            for row in preemption_rows))
    worst_blocking = max((row.blocking_cost for row in preemption_rows),
                         default=float("nan"))
    return ExperimentResult(
        tables=[ttechno, bursts, preemption],
        claims=[
            ClaimCheck(
                claim="The urgent class keeps its 3 ms guarantee across "
                      "the whole t_techno sweep (0–100 µs)",
                passed=all(row.urgent_meets_deadline
                           for row in delay_rows)),
        ],
        values={"worst-blocking": format_ms(worst_blocking)},
        notes="Ablations on the three design parameters the paper leaves "
              "implicit: the switch relaying-delay bound, the token-bucket "
              "depth, and the non-preemptive blocking term.")


# ---------------------------------------------------------------------------
# E8 — scalability
# ---------------------------------------------------------------------------

def _build_scalability() -> ExperimentResult:
    message_set = case_study_message_set()
    rows = scalability_sweep(message_set)
    table = TableArtifact(
        name="scalability",
        title="Feasibility as the case-study traffic is replicated",
        headers=("scale", "messages", "1553B util", "1553B ok",
                 "Ethernet util", "FCFS ok", "priority ok"),
        display_rows=tuple(
            (f"x{row.scale}", row.message_count,
             f"{row.milstd1553_utilization * 100:.1f} %",
             yes_no(row.milstd1553_feasible),
             f"{row.ethernet_utilization * 100:.1f} %",
             yes_no(row.fcfs_feasible), yes_no(row.priority_feasible))
            for row in rows),
        raw_headers=("scale", "messages", "milstd1553_utilization",
                     "milstd1553_feasible", "ethernet_utilization",
                     "fcfs_feasible", "priority_feasible"),
        raw_rows=tuple(
            (row.scale, row.message_count, row.milstd1553_utilization,
             row.milstd1553_feasible, row.ethernet_utilization,
             row.fcfs_feasible, row.priority_feasible)
            for row in rows))
    figure = FigureArtifact(
        name="utilization",
        title="Link utilisation per scale factor (%), marker at 100 %",
        labels=tuple(f"x{row.scale} Ethernet" for row in rows)
        + tuple(f"x{row.scale} 1553B" for row in rows),
        values=tuple(round(row.ethernet_utilization * 100, 1)
                     for row in rows)
        + tuple(round(row.milstd1553_utilization * 100, 1) for row in rows),
        unit="%",
        markers=tuple((index, 100.0) for index in range(2 * len(rows))))
    max_1553 = max_feasible_scale(message_set, "mil-std-1553b")
    max_priority = max_feasible_scale(message_set, "ethernet-priority")
    return ExperimentResult(
        tables=[table],
        figures=[figure],
        claims=[
            ClaimCheck(
                claim="Prioritised Ethernet absorbs more replicated "
                      "traffic than the 1553B bus (expandability)",
                passed=max_priority > max_1553,
                detail=f"max feasible scale: priority x{max_priority} vs "
                       f"1553B x{max_1553}"),
        ],
        values={"max-priority-scale": f"x{max_priority}",
                "max-1553-scale": f"x{max_1553}"},
        notes="The paper motivates the migration by expandability; this "
              "sweep replicates the traffic until each approach breaks.")


# ---------------------------------------------------------------------------
# Buffer dimensioning
# ---------------------------------------------------------------------------

def _build_buffers() -> ExperimentResult:
    rows = validate_buffer_requirements(case_study_message_set())
    table = TableArtifact(
        name="buffers",
        title="Buffer dimensioning per egress port",
        headers=("egress port", "flows", "backlog bound",
                 "observed max", "within bound"),
        display_rows=tuple(
            (f"{row.node}->{row.toward}", row.flow_count,
             format_bytes(row.backlog_bits), format_bytes(row.observed_bits),
             yes_no(row.observed_within_bound))
            for row in rows),
        raw_headers=("node", "toward", "flows", "backlog_bits",
                     "observed_bits"),
        raw_rows=tuple(
            (row.node, row.toward, row.flow_count, row.backlog_bits,
             row.observed_bits)
            for row in rows))
    largest = max((row.backlog_bits for row in rows), default=float("nan"))
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="No simulated queue ever exceeds its analytic "
                      "backlog bound (loss-free by construction)",
                passed=bool(rows) and all(row.observed_within_bound
                                          for row in rows),
                detail=f"{len(rows)} egress ports checked"),
        ],
        values={"max-backlog": format_bytes(largest),
                "ports": str(len(rows))},
        notes="Backlog bounds per egress port — the buffer sizes that make "
              "overflow loss impossible — validated against the largest "
              "simulated queue occupancy.")


# ---------------------------------------------------------------------------
# Multi-hop graph topologies
# ---------------------------------------------------------------------------

#: The graph families of the multi-hop exhibit, with their builders'
#: deterministic parameters (the registry's graph scenarios use the same).
MULTIHOP_FAMILIES = ("diamond", "ring", "random")
MULTIHOP_SIM_SEED = 1


def _multihop_spec(family: str):
    from repro.topology.graph import (
        diamond_graph_spec,
        random_graph_spec,
        ring_graph_spec,
    )

    if family == "diamond":
        return diamond_graph_spec(REPORT_STATIONS)
    if family == "ring":
        return ring_graph_spec(REPORT_STATIONS, switch_count=4)
    return random_graph_spec(REPORT_STATIONS, switch_count=4, seed=11)


def _build_multihop() -> ExperimentResult:
    from repro.analysis.multihop import GraphPathAnalysis
    from repro.analysis.validation import wire_level_messages
    from repro.ethernet.network_sim import EthernetNetworkSimulator

    message_set = case_study_message_set()
    wire = wire_level_messages(message_set)
    rows = []
    ports_checked = ports_ok = 0
    for family in MULTIHOP_FAMILIES:
        spec = _multihop_spec(family)
        network = spec.to_network()
        for policy in ("fcfs", "strict-priority"):
            outcome = GraphPathAnalysis(spec, policy=policy).analyze(wire)
            simulator = EthernetNetworkSimulator(
                network, message_set.messages, policy=policy,
                scenario="synchronized", seed=MULTIHOP_SIM_SEED)
            results = simulator.run(duration=units.ms(320))
            per_class = outcome.worst_per_class()
            for cls in sorted(per_class):
                summary = results.class_summary(cls)
                if summary.count == 0:
                    continue
                bound = per_class[cls]
                rows.append((family, policy, cls, bound.delay,
                             summary.maximum, summary.count,
                             len(bound.hops)))
            for port in outcome.ports:
                observed = results.max_queue_bits.get(
                    f"{port.node}->{port.toward}", 0.0)
                ports_checked += 1
                ports_ok += observed <= port.backlog_bits + 1e-9
    table = TableArtifact(
        name="multihop",
        title="Multi-hop graph topologies: end-to-end bounds vs simulation",
        headers=("family", "policy", "class", "bound", "simulated worst",
                 "tightness", "hops"),
        display_rows=tuple(
            (family, policy, cls.label, format_bound(bound),
             format_ms(worst), f"{worst / bound:.2f}", hops)
            for family, policy, cls, bound, worst, _samples, hops in rows),
        raw_headers=("family", "policy", "priority", "bound_ms",
                     "worst_simulated_ms", "samples", "tightness",
                     "switch_hops"),
        raw_rows=tuple(
            (family, policy, cls.name, _ms(bound), _ms(worst), samples,
             round(worst / bound, 6), hops)
            for family, policy, cls, bound, worst, samples, hops in rows))
    all_hold = bool(rows) and all(worst <= bound + 1e-12 for
                                  _f, _p, _c, bound, worst, _s, _h in rows)
    max_tightness = max((worst / bound
                         for _f, _p, _c, bound, worst, _s, _h in rows),
                        default=float("nan"))
    multi_hop_rows = [row for row in rows if row[6] > 1]
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="Concatenated per-hop bounds dominate the simulated "
                      "worst case on every multi-hop graph family",
                passed=all_hold,
                detail=f"{len(rows)} (family, policy, class) rows, max "
                       f"tightness {max_tightness:.2f}"),
            ClaimCheck(
                claim="Per-port backlog bounds hold at every egress of "
                      "every routed fabric",
                passed=ports_checked > 0 and ports_ok == ports_checked,
                detail=f"{ports_ok}/{ports_checked} ports within bound"),
            ClaimCheck(
                claim="The fabrics genuinely exercise multi-switch routes "
                      "(not a disguised star)",
                passed=bool(multi_hop_rows),
                detail=f"{len(multi_hop_rows)} rows cross 2+ switches"),
        ],
        values={
            "families": str(len(MULTIHOP_FAMILIES)),
            "rows": str(len(rows)),
            "ports": str(ports_checked),
            "max-tightness": f"{max_tightness:.2f}",
        },
        notes="The paper's single-multiplexer analysis generalised to "
              "arbitrary graphs: flows are routed by the deterministic "
              "shortest-path engine and their end-to-end bounds are the "
              "concatenation of per-hop blind-multiplexing left-over "
              "curves, validated against the discrete-event simulation of "
              "the same routed network.")


# ---------------------------------------------------------------------------
# Competing bound engines
# ---------------------------------------------------------------------------

#: Scenario families of the cross-engine exhibit: the paper's case study,
#: the replication ladder, and the routed graph fabrics.  Every registered
#: engine bounds every cell; simulated floors are computed where a single
#: 320 ms trace is affordable inside the report build (the ladder's upper
#: rungs stay analytic — the fuzz invariant covers them at scale).
ENGINE_FAMILIES = (
    ("paper-case", ("paper-real-case",)),
    ("scaled-ladder", ("scalability-x2", "scalability-x4",
                       "scalability-x8")),
    ("graph-diamond", ("graph-diamond",)),
    ("graph-ring", ("graph-ring",)),
    ("graph-random", ("graph-random",)),
)
ENGINE_SIM_SCENARIOS = frozenset({
    "paper-real-case", "scalability-x2",
    "graph-diamond", "graph-ring", "graph-random",
})
ENGINE_SIM_SEED = 1
#: Star families where the per-hop dominance argument pins the orderings.
ENGINE_STAR_FAMILIES = frozenset({"paper-case", "scaled-ladder"})


def _build_engines() -> ExperimentResult:
    import math

    from repro.analysis.engines import engine_names, get_engine
    from repro.analysis.engines.base import scenario_inputs
    from repro.ethernet.network_sim import EthernetNetworkSimulator

    names = engine_names()
    engines = {name: get_engine(name) for name in names}
    cells = []
    for family, scenario_names in ENGINE_FAMILIES:
        for scenario_name in scenario_names:
            scenario = get_scenario(scenario_name)
            wire, network, graph_spec = scenario_inputs(scenario)
            for policy in scenario.policies:
                per_engine = {
                    name: engines[name].network_class_bounds(
                        wire, policy, network=network,
                        graph_spec=graph_spec)
                    for name in names}
                sim_results = None
                if scenario_name in ENGINE_SIM_SCENARIOS:
                    message_set = scenario.workload.build()
                    simulator = EthernetNetworkSimulator(
                        network, message_set.messages, policy=policy,
                        scenario="synchronized", seed=ENGINE_SIM_SEED)
                    sim_results = simulator.run(duration=units.ms(320))
                classes = sorted(
                    set().union(*(mapping for mapping
                                  in per_engine.values())))
                for cls in classes:
                    worst = samples = None
                    if sim_results is not None:
                        summary = sim_results.class_summary(cls)
                        if summary.count:
                            worst, samples = summary.maximum, summary.count
                    cells.append({
                        "family": family, "scenario": scenario_name,
                        "policy": policy, "cls": cls, "worst": worst,
                        "samples": samples,
                        "bounds": {name: per_engine[name].get(cls, math.inf)
                                   for name in names}})

    # -- per-family tightness ranking ------------------------------------
    ratios: dict[tuple[str, str], list[float]] = {}
    unstable: dict[tuple[str, str], int] = {}
    for cell in cells:
        finite = [bound for bound in cell["bounds"].values()
                  if math.isfinite(bound)]
        best = min(finite) if finite else None
        for name, bound in cell["bounds"].items():
            key = (cell["family"], name)
            if math.isfinite(bound):
                if best:
                    ratios.setdefault(key, []).append(bound / best)
            else:
                unstable[key] = unstable.get(key, 0) + 1

    sim_checked = sim_ok = 0
    star_checked = star_ok = 0
    for cell in cells:
        if cell["worst"] is not None:
            for bound in cell["bounds"].values():
                sim_checked += 1
                sim_ok += cell["worst"] <= bound + 1e-9
        if cell["family"] in ENGINE_STAR_FAMILIES:
            calculus = cell["bounds"]["calculus"]
            for name, bound in cell["bounds"].items():
                if name == "calculus":
                    continue
                star_checked += 1
                star_ok += bound >= calculus - 1e-12
    family_cells = {family: sum(c["family"] == family for c in cells)
                    for family, _scenarios in ENGINE_FAMILIES}
    ranking_rows = []
    for family, _scenarios in ENGINE_FAMILIES:
        scored = []
        for name in names:
            key = (family, name)
            family_ratios = ratios.get(key, [])
            mean_ratio = (sum(family_ratios) / len(family_ratios)
                          if family_ratios else math.inf)
            scored.append((unstable.get(key, 0), mean_ratio, name))
        scored.sort()
        for rank, (diverged, mean_ratio, name) in enumerate(scored, 1):
            family_sim = [c for c in cells if c["family"] == family
                          and c["worst"] is not None]
            sound = all(c["worst"] <= c["bounds"][name] + 1e-9
                        for c in family_sim)
            ranking_rows.append((family, name, rank, mean_ratio,
                                 family_cells[family], diverged, sound))

    detail = TableArtifact(
        name="bounds",
        title="Per-class bounds of every engine, per scenario cell",
        headers=("family", "scenario", "policy", "class",
                 *names, "sim worst"),
        display_rows=tuple(
            (cell["family"], cell["scenario"], cell["policy"],
             cell["cls"].label,
             *(format_bound(cell["bounds"][name]) for name in names),
             format_ms(cell["worst"]))
            for cell in cells),
        raw_headers=("family", "scenario", "policy", "priority",
                     *(f"{name}_bound_ms" for name in names),
                     "worst_simulated_ms", "samples"),
        raw_rows=tuple(
            (cell["family"], cell["scenario"], cell["policy"],
             cell["cls"].name,
             *(_ms(cell["bounds"][name])
               if math.isfinite(cell["bounds"][name]) else ""
               for name in names),
             "" if cell["worst"] is None else _ms(cell["worst"]),
             "" if cell["samples"] is None else cell["samples"])
            for cell in cells))
    ranking = TableArtifact(
        name="ranking",
        title="Engine tightness ranking per scenario family",
        headers=("family", "engine", "rank", "mean ratio vs best",
                 "cells", "diverged", "sound vs sim"),
        display_rows=tuple(
            (family, name, rank,
             "-" if math.isinf(mean_ratio) else f"{mean_ratio:.3f}",
             count, diverged, yes_no(sound))
            for family, name, rank, mean_ratio, count, diverged, sound
            in ranking_rows),
        raw_headers=("family", "engine", "rank", "mean_ratio", "cells",
                     "diverged_cells", "sound_vs_sim"),
        raw_rows=tuple(
            (family, name, rank,
             "" if math.isinf(mean_ratio) else round(mean_ratio, 6),
             count, diverged, sound)
            for family, name, rank, mean_ratio, count, diverged, sound
            in ranking_rows))
    figure = FigureArtifact(
        name="tightness",
        title="Mean bound inflation vs the tightest engine, per family",
        labels=tuple(f"{family} — {name}"
                     for family, name, _rank, ratio, *_rest in ranking_rows
                     if math.isfinite(ratio)),
        values=tuple(round(ratio, 3)
                     for _family, _name, _rank, ratio, *_rest
                     in ranking_rows if math.isfinite(ratio)),
        unit="x")
    paper_ranking = {name: rank for family, name, rank, *_rest
                     in ranking_rows if family == "paper-case"}
    paper_tightest = min(paper_ranking, key=paper_ranking.get)
    finite_means = [ratio for _family, _name, _rank, ratio, *_rest
                    in ranking_rows if math.isfinite(ratio)]
    return ExperimentResult(
        tables=[detail, ranking],
        figures=[figure],
        claims=[
            ClaimCheck(
                claim="Every engine's bound dominates the simulated worst "
                      "case on every simulated cell",
                passed=sim_checked > 0 and sim_ok == sim_checked,
                detail=f"{sim_ok}/{sim_checked} (cell, engine) soundness "
                       f"checks hold"),
            ClaimCheck(
                claim="The network-calculus engine is the tightest on the "
                      "paper's case study",
                passed=paper_tightest == "calculus",
                detail=f"paper-case rank 1: {paper_tightest}"),
            ClaimCheck(
                claim="Holistic and trajectory bounds never undercut the "
                      "calculus bound on single-switch scenarios",
                passed=star_checked > 0 and star_ok == star_checked,
                detail=f"{star_ok}/{star_checked} star cells respect the "
                       f"per-hop dominance ordering"),
        ],
        values={
            "engines": str(len(names)),
            "families": str(len(ENGINE_FAMILIES)),
            "cells": str(len(cells)),
            "sim-checks": str(sim_checked),
            "paper-tightest": paper_tightest,
            "max-mean-ratio": f"{max(finite_means):.2f}"
            if finite_means else "-",
        },
        notes="Three independent WCRT bound engines — the paper's network "
              "calculus, a holistic busy-period iteration, and a "
              "trajectory-style pay-bursts-only-once composition — run "
              "behind one `BoundEngine` API over the paper case, the "
              "replication ladder and the routed graph fabrics.  Each "
              "family ranks the engines by mean inflation over the "
              "tightest finite bound; simulated floors pin every engine's "
              "soundness where a trace is affordable.")


# ---------------------------------------------------------------------------
# The campaign catalogue
# ---------------------------------------------------------------------------

def _build_campaign() -> ExperimentResult:
    result = CampaignRunner().run(builtin_scenarios())
    summary = TableArtifact(
        name="summary",
        title="Campaign summary",
        headers=result.SUMMARY_HEADERS,
        display_rows=tuple(result.summary_cells()))
    detail = TableArtifact(
        name="detail",
        title="Per-class worst-case bounds",
        headers=result.DETAIL_HEADERS,
        display_rows=tuple(result.detail_cells()),
        raw_headers=("scenario", "policy", "priority", "messages",
                     "deadline_s", "bound_s", "backlog_bits",
                     "meets_deadline", "stable", "hops"),
        raw_rows=tuple(
            (row.scenario, row.policy, row.priority.name, row.message_count,
             "" if row.deadline is None else repr(row.deadline),
             repr(row.bound), repr(row.backlog_bits), row.meets_deadline,
             row.stable, row.hops)
            for row in result.rows()))
    overload = next((r for r in result.results
                     if r.scenario.name == "overload"), None)
    return ExperimentResult(
        tables=[summary, detail],
        claims=[
            ClaimCheck(
                claim="The deliberate 32x overload scenario is reported "
                      "gracefully (unbounded rows, not a crash)",
                passed=overload is not None
                and not overload.feasible("strict-priority")
                and all(row.bound == float("inf")
                        for row in overload.rows if not row.stable)),
        ],
        values={"scenario-count": str(len(result.results)),
                "row-count": str(len(result.rows()))},
        notes="The whole builtin scenario catalogue batch-run through the "
              "memoizing campaign engine; every future scenario registered "
              "in the catalogue lands in this table automatically.")


# ---------------------------------------------------------------------------
# The admission-control service
# ---------------------------------------------------------------------------

#: Deterministic probe flows for the what-if admission table:
#: (name, period_s, size_bits, deadline_s).
_SERVE_PROBES = (
    ("probe-light", 0.1, 800.0, None),
    ("probe-urgent", 0.005, 1000.0, 0.003),
    ("probe-heavy", 0.002, 8000.0, 0.002),
)


def _serve_probe_payload(name: str, period: float, size: float,
                         deadline: float | None) -> dict:
    return {"name": name, "kind": "sporadic", "period": period,
            "size": size, "source": "station-00",
            "destination": "station-01", "deadline": deadline}


def _build_serve() -> ExperimentResult:
    scenario = get_scenario("paper-real-case")
    rows = []
    identity_checked = identity_ok = 0
    verify_ok = True
    admitted_by = {}
    urgent_after = None
    for policy in scenario.policies:
        engine = AdmissionEngine(scenario, policy)
        state_before = engine.state_fingerprint()
        bounds_before = engine.snapshot().bounds_fingerprint()
        for name, period, size, deadline in _SERVE_PROBES:
            payload = _serve_probe_payload(name, period, size, deadline)
            cls = assign_priority(message_from_payload(payload))
            decision = engine.check(payload)
            admitted = not decision.reasons
            admitted_by[(policy, name)] = admitted
            after = {bound.priority: bound
                     for bound in decision.snapshot.classes}[cls]
            if policy == "strict-priority" and name == "probe-urgent":
                urgent_after = after
            rows.append((policy, name, cls, period, size, deadline,
                         admitted, after.bound,
                         decision.reasons[0] if decision.reasons else ""))
            # The metamorphic identity, exercised through the real
            # mutation path: forced admit + remove must be a byte-exact
            # no-op on both fingerprints.
            engine.admit(payload, force=True)
            engine.remove(name)
            identity_checked += 1
            identity_ok += (
                engine.state_fingerprint() == state_before
                and engine.snapshot().bounds_fingerprint() == bounds_before)
        verify_ok = verify_ok and engine.verify()
    table = TableArtifact(
        name="admission",
        title="What-if admission decisions on the paper case study",
        headers=("policy", "probe", "class", "period", "size",
                 "deadline", "admitted", "class bound after"),
        display_rows=tuple(
            (policy, name, cls.label, format_ms(period),
             format_bytes(size),
             "-" if deadline is None else format_ms(deadline),
             yes_no(admitted), format_bound(bound))
            for policy, name, cls, period, size, deadline, admitted,
            bound, _reason in rows),
        raw_headers=("policy", "probe", "priority", "period_s",
                     "size_bits", "deadline_s", "admitted",
                     "class_bound_ms", "rejection_reason"),
        raw_rows=tuple(
            (policy, name, cls.name, repr(period), repr(size),
             "" if deadline is None else repr(deadline), admitted,
             _ms(bound), reason)
            for policy, name, cls, period, size, deadline, admitted,
            bound, reason in rows))
    fcfs_rejects_all = all(
        not admitted_by[("fcfs", name)] for name, _p, _s, _d in _SERVE_PROBES)
    priority_admits_all = all(
        admitted_by[("strict-priority", name)]
        for name, _p, _s, _d in _SERVE_PROBES)
    headroom = None
    if urgent_after is not None and urgent_after.deadline is not None:
        headroom = urgent_after.deadline - urgent_after.bound
    return ExperimentResult(
        tables=[table],
        claims=[
            ClaimCheck(
                claim="Admit-then-remove is a byte-exact no-op on the "
                      "engine state and the committed bounds",
                passed=identity_checked > 0
                and identity_ok == identity_checked,
                detail=f"{identity_ok}/{identity_checked} probe round "
                       f"trips restored both fingerprints"),
            ClaimCheck(
                claim="Incremental aggregates stay bit-identical to a "
                      "from-scratch recompute",
                passed=verify_ok,
                detail="engine.verify() after every probe storm"),
            ClaimCheck(
                claim="FCFS admits nothing on the paper case (the URGENT "
                      "deadline is already violated) while strict "
                      "priority admits every probe",
                passed=fcfs_rejects_all and priority_admits_all,
                headline=True,
                detail="the paper's zero-headroom FCFS finding, restated "
                       "as admission control"),
        ],
        values={
            "probes": str(len(rows)),
            "identity-trips": str(identity_checked),
            "fcfs-admits": yes_no(not fcfs_rejects_all),
            "priority-admits": yes_no(priority_admits_all),
            "urgent-headroom": "n/a" if headroom is None
            else format_ms(headroom),
        },
        notes="The analysis re-posed as the question a network operator "
              "actually asks — *can this flow join?* — answered by the "
              "incremental admission engine behind `repro serve`.  Every "
              "what-if verdict is derived without mutating committed "
              "state, and the mutation path is pinned to be reversible "
              "and bit-identical to a from-scratch recompute.")


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

#: (name, title, exhibit, description, build) for every builtin experiment.
_BUILTINS = (
    ("figure1", "Delay bounds, FCFS vs strict priority", "E1 / Figure 1",
     "Per-class worst-case delay bounds on the 10 Mbps link against the "
     "real-time constraints.", _build_figure1),
    ("violations", "FCFS violations vs link capacity", "E2",
     "Individually violated messages per class across the 10 and 100 Mbps "
     "capacity points.", _build_violations),
    ("baseline-1553", "MIL-STD-1553B baseline", "E3",
     "Cyclic-schedule feasibility, minor-frame utilisation and simulated "
     "response times on the 1553B bus.", _build_baseline_1553),
    ("comparison", "1553B vs Ethernet side by side", "E4",
     "Worst-case response times of the three technologies per priority "
     "class.", _build_comparison),
    ("bound-vs-sim", "Analytic bounds vs simulation", "E5",
     "The bounds must dominate the adversarial synchronised-release "
     "simulation.", _build_bound_vs_sim),
    ("monte-carlo", "Monte-Carlo bound validation", "beyond paper",
     "Seeds x scenarios x policies simulation grid: every observed "
     "latency must stay below its analytic bound.", _build_monte_carlo),
    ("fuzz", "Randomized soundness fuzzing", "beyond paper",
     "Seeded random scenarios vs the soundness, stability, determinism "
     "and round-trip invariants.", _build_fuzz),
    ("jitter", "Delivery jitter comparison", "E6",
     "Peak-to-peak per-stream jitter under 1553B, Ethernet-FCFS and "
     "Ethernet-priority.", _build_jitter),
    ("sensitivity", "Sensitivity and ablations", "beyond paper",
     "t_techno sweep, burst inflation and the non-preemptive blocking "
     "term.", _build_sensitivity),
    ("scalability", "Scalability ladder", "beyond paper",
     "Feasibility of each approach as the case-study traffic is "
     "replicated.", _build_scalability),
    ("buffers", "Buffer dimensioning", "beyond paper",
     "Per-egress-port backlog bounds validated against simulated queue "
     "occupancy.", _build_buffers),
    ("multi-hop", "Multi-hop graph topologies", "beyond paper",
     "End-to-end bounds on diamond/ring/random switch fabrics via the "
     "routing engine, validated against simulation.", _build_multihop),
    ("engines", "Competing bound engines", "beyond paper",
     "Calculus vs holistic vs trajectory WCRT bounds behind one "
     "BoundEngine API, ranked by tightness per scenario family and "
     "validated against simulated floors.", _build_engines),
    ("campaign", "Scenario campaign catalogue", "beyond paper",
     "The builtin what-if scenario catalogue batch-run through the "
     "campaign engine.", _build_campaign),
    ("serve", "Admission-control service", "beyond paper",
     "What-if admission decisions on the paper case study via the "
     "incremental engine behind `repro serve`, pinned bit-identical to "
     "a from-scratch recompute.", _build_serve),
)


def register_builtin_experiments() -> None:
    """Idempotently (re-)register the builtin experiment catalogue."""
    for name, title, exhibit, description, build in _BUILTINS:
        register_experiment(
            ExperimentSpec(name=name, title=title, description=description,
                           build=build, exhibit=exhibit),
            replace=True)


register_builtin_experiments()
