"""Declarative experiment specifications and the report registry.

An :class:`ExperimentSpec` maps one exhibit — a paper table/figure or one of
the beyond-paper studies — to a ``build`` callable that recomputes it from
scratch and returns an :class:`ExperimentResult`: structured tables,
figures, headline values and claim checks.  The pipeline
(:mod:`repro.reports.pipeline`) turns those results into committed
artifacts; nothing in a result may depend on wall-clock time, machine or
iteration order, so the artifacts are byte-reproducible and CI can diff
them (``repro report --check``).

Experiments are registered by unique name, exactly like campaign scenarios
(:mod:`repro.campaigns.registry`); ``repro report --list`` prints the
catalogue and ``--experiment name,name`` selects from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import DuplicateExperimentError, UnknownExperimentError

__all__ = [
    "TableArtifact",
    "FigureArtifact",
    "ClaimCheck",
    "ExperimentResult",
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "all_experiments",
    "select_experiments",
    "result_to_payload",
    "result_from_payload",
]


@dataclass(frozen=True)
class TableArtifact:
    """One table of an experiment, in display and raw (CSV) form.

    ``display_rows`` carry formatted cells (units, yes/NO, unbounded) for
    the markdown rendering; ``raw_rows`` carry unformatted values for the
    CSV twin so external plotting never has to parse formatted strings.
    When ``raw_headers`` is ``None`` the display headers and rows are
    reused verbatim.
    """

    #: File stem inside the experiment's artifact directory.
    name: str
    title: str
    headers: tuple[str, ...]
    display_rows: tuple[tuple, ...]
    raw_headers: tuple[str, ...] | None = None
    raw_rows: tuple[tuple, ...] | None = None

    def csv_content(self) -> tuple[tuple[str, ...], tuple[tuple, ...]]:
        """(headers, rows) written to the CSV artifact."""
        if self.raw_headers is None:
            return self.headers, self.display_rows
        return self.raw_headers, self.raw_rows or ()


@dataclass(frozen=True)
class FigureArtifact:
    """One bar-chart figure, rendered both as SVG and as a text chart."""

    #: File stem inside the experiment's artifact directory.
    name: str
    title: str
    labels: tuple[str, ...]
    values: tuple[float, ...]
    unit: str = ""
    #: Optional per-row marker lines (e.g. the class deadline).
    markers: tuple[tuple[int, float], ...] = ()

    def marker_dict(self) -> dict[int, float]:
        """The markers as the dict the renderers expect."""
        return dict(self.markers)


@dataclass(frozen=True)
class ClaimCheck:
    """One falsifiable claim re-checked by an experiment.

    ``headline`` marks the paper's banner results (and their beyond-paper
    restatements); the top of ``REPORT.md`` badges exactly those.
    """

    claim: str
    passed: bool
    #: The measured evidence, e.g. ``"bound 5.432 ms > 3.000 ms"``.
    detail: str = ""
    headline: bool = False

    @property
    def badge(self) -> str:
        """The pass/fail badge used in the generated report."""
        return "✅ reproduced" if self.passed else "❌ NOT reproduced"


@dataclass
class ExperimentResult:
    """Everything one experiment contributes to the reproduction report."""

    tables: list[TableArtifact] = field(default_factory=list)
    figures: list[FigureArtifact] = field(default_factory=list)
    claims: list[ClaimCheck] = field(default_factory=list)
    #: Headline values for the docs substitution layer (``tools/docgen.py``),
    #: merged into ``artifacts/values.json`` as ``<experiment>.<key>``.
    values: dict[str, str] = field(default_factory=dict)
    #: Optional free-form paragraph printed under the experiment heading.
    notes: str = ""


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment of the reproduction report."""

    #: Unique registry name (``repro report --experiment <name>``).
    name: str
    #: Human heading used in ``REPORT.md``.
    title: str
    #: One-line description shown by ``repro report --list`` and the index.
    description: str
    #: Recompute the exhibit from scratch; must be deterministic.
    build: Callable[[], ExperimentResult]
    #: The exhibit the experiment reproduces (``"E1 / Figure 1"``), or
    #: ``"beyond paper"`` for the studies the paper only announces.
    exhibit: str = "beyond paper"

    def __post_init__(self) -> None:
        if not self.name:
            raise UnknownExperimentError(
                "an experiment needs a non-empty name")


# ---------------------------------------------------------------------------
# Result (de)serialisation for the result store
# ---------------------------------------------------------------------------

def result_to_payload(result: ExperimentResult) -> dict:
    """``result`` as a JSON-serialisable payload for the result store.

    Cell values are restricted to JSON scalars (strings, numbers,
    booleans, ``None``) by construction — experiment builds format
    everything through :mod:`repro.reporting` — so the payload round-trips
    exactly: :func:`result_from_payload` reconstructs a result whose
    rendered artifacts are byte-identical to the original's.
    """
    return {
        "tables": [{
            "name": table.name,
            "title": table.title,
            "headers": list(table.headers),
            "display_rows": [list(row) for row in table.display_rows],
            "raw_headers": (None if table.raw_headers is None
                            else list(table.raw_headers)),
            "raw_rows": (None if table.raw_rows is None
                         else [list(row) for row in table.raw_rows]),
        } for table in result.tables],
        "figures": [{
            "name": figure.name,
            "title": figure.title,
            "labels": list(figure.labels),
            "values": list(figure.values),
            "unit": figure.unit,
            "markers": [list(marker) for marker in figure.markers],
        } for figure in result.figures],
        "claims": [{
            "claim": claim.claim,
            "passed": claim.passed,
            "detail": claim.detail,
            "headline": claim.headline,
        } for claim in result.claims],
        "values": dict(result.values),
        "notes": result.notes,
    }


def result_from_payload(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its stored payload."""
    return ExperimentResult(
        tables=[TableArtifact(
            name=table["name"],
            title=table["title"],
            headers=tuple(table["headers"]),
            display_rows=tuple(tuple(row) for row in table["display_rows"]),
            raw_headers=(None if table["raw_headers"] is None
                         else tuple(table["raw_headers"])),
            raw_rows=(None if table["raw_rows"] is None
                      else tuple(tuple(row) for row in table["raw_rows"])),
        ) for table in payload["tables"]],
        figures=[FigureArtifact(
            name=figure["name"],
            title=figure["title"],
            labels=tuple(figure["labels"]),
            values=tuple(figure["values"]),
            unit=figure["unit"],
            markers=tuple((int(index), value)
                          for index, value in figure["markers"]),
        ) for figure in payload["figures"]],
        claims=[ClaimCheck(
            claim=claim["claim"],
            passed=bool(claim["passed"]),
            detail=claim["detail"],
            headline=bool(claim["headline"]),
        ) for claim in payload["claims"]],
        values=dict(payload["values"]),
        notes=payload["notes"],
    )


_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec, *,
                        replace: bool = False) -> ExperimentSpec:
    """Add an experiment to the registry; rejects duplicates by default."""
    if not replace and spec.name in _REGISTRY:
        raise DuplicateExperimentError(
            f"experiment {spec.name!r} is already registered "
            f"(pass replace=True to overwrite)")
    _REGISTRY[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name.

    Raises
    ------
    UnknownExperimentError
        If no experiment of that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; known experiments: "
            f"{experiment_names()}") from None


def experiment_names() -> list[str]:
    """Registered experiment names, in registration order."""
    return list(_REGISTRY)


def all_experiments() -> list[ExperimentSpec]:
    """Every registered experiment, in registration order."""
    return list(_REGISTRY.values())


def select_experiments(selection: str | Sequence[str] | None
                       ) -> list[ExperimentSpec]:
    """Resolve a CLI selection (comma list, ``"all"`` or ``None``) to specs."""
    if selection is None:
        return all_experiments()
    if isinstance(selection, str):
        selection = [part.strip() for part in selection.split(",")]
    names = [name for name in selection if name]
    if not names or names == ["all"]:
        return all_experiments()
    return [get_experiment(name) for name in names]
