"""The reproduction-report pipeline: experiments → versioned artifacts.

The publication layer of the repo.  Where :mod:`repro.analysis` computes
experiment rows and :mod:`repro.reporting` renders individual tables, this
package makes the full reproduction *reproducible as an artifact*:

* :mod:`~repro.reports.spec` — :class:`ExperimentSpec`: a declarative
  mapping from one paper exhibit (or beyond-paper study) to a build
  callable returning structured :class:`ExperimentResult` data (tables,
  figures, headline values, :class:`ClaimCheck` pass/fail badges), plus
  the named registry (:func:`register_experiment`,
  :func:`all_experiments`, :func:`select_experiments`),
* :mod:`~repro.reports.experiments` — the builtin catalogue: E1–E6 of the
  paper plus the sensitivity, scalability, buffer and campaign studies,
* :mod:`~repro.reports.pipeline` — :class:`ReportPipeline`: renders every
  experiment into ``artifacts/<experiment>/`` (markdown + CSV tables,
  SVG + text figures) and stitches ``artifacts/REPORT.md`` (the full
  reproduction report with the paper's headline claims badged) and
  ``artifacts/values.json`` (the value map ``tools/docgen.py`` uses to
  keep README.md/DESIGN.md numbers in sync with the code).

Everything is deterministic, so the artifact tree is committed and
``repro report --check`` — the CI drift gate — fails whenever the
committed artifacts stop matching the code's current output.
"""

from repro.reports.spec import (
    ClaimCheck,
    ExperimentResult,
    ExperimentSpec,
    FigureArtifact,
    TableArtifact,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
    select_experiments,
)
from repro.reports import experiments as _builtin_experiments  # noqa: F401
from repro.reports.experiments import (
    case_study_message_set,
    register_builtin_experiments,
)
from repro.reports.pipeline import (
    DEFAULT_ARTIFACTS_DIR,
    ReportPipeline,
    ReportRunResult,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "TableArtifact",
    "FigureArtifact",
    "ClaimCheck",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "all_experiments",
    "select_experiments",
    "case_study_message_set",
    "register_builtin_experiments",
    "ReportPipeline",
    "ReportRunResult",
    "DEFAULT_ARTIFACTS_DIR",
]
