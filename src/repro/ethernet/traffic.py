"""Traffic sources: periodic and sporadic message generators.

The paper's workload mixes two traffic types:

* **periodic** messages released every ``T_i`` seconds,
* **sporadic** messages with a *minimal* inter-arrival time ``T_j`` — the
  worst case for the network is the "greedy" sporadic source that releases a
  new instance exactly every ``T_j`` (at most one per 20 ms minor frame, as
  the paper assumes).

Both source types hand :class:`~repro.ethernet.frame.MessageInstance` objects
to their station's :meth:`~repro.ethernet.station.EndStation.submit`; the
station's shapers and multiplexer do the rest.

The *synchronised* scenario (every source releasing its first instance at
``t = 0``) is the adversarial situation the analytic bounds are built for;
*staggered* and *random* scenarios draw offsets and inter-arrival slack from
the experiment's random streams to exercise average behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ethernet.frame import MessageInstance
from repro.ethernet.station import EndStation
from repro.flows.messages import Message
from repro.simulation.engine import Simulator

__all__ = ["PeriodicSource", "SporadicSource"]


class _SourceBase:
    """State shared by the two source types."""

    def __init__(self, simulator: Simulator, station: EndStation,
                 message: Message, offset: float = 0.0) -> None:
        if offset < 0:
            raise ConfigurationError(
                f"offset must be non-negative, got {offset!r}")
        if message.source != station.name:
            raise ConfigurationError(
                f"message {message.name!r} is emitted by "
                f"{message.source!r}, not by station {station.name!r}")
        self.simulator = simulator
        self.station = station
        self.message = message
        self.offset = float(offset)
        self._sequence = 0
        self._until: float | None = None

    @property
    def instances_released(self) -> int:
        """Number of instances generated so far."""
        return self._sequence

    def start(self, until: float) -> None:
        """Begin generating instances; stop releasing after ``until`` seconds."""
        if until <= 0:
            raise ConfigurationError(f"'until' must be positive, got {until!r}")
        self._until = float(until)
        if self.offset < self._until:
            # offset >= 0 >= the clock at start, so the fast path is safe.
            self.simulator.post_at(self.offset, self._fire, None)

    def _fire(self, _arg: object = None) -> None:
        """Release one instance (the argument is the fast-path placeholder)."""
        instance = MessageInstance(self.message, self._sequence,
                                   self.simulator._now)  # direct slot read
        self._sequence += 1
        self.station.submit(instance)
        next_time = self._next_release_time()
        if self._until is not None and next_time < self._until:
            self.simulator.post_at(next_time, self._fire, None)

    def _next_release_time(self) -> float:
        raise NotImplementedError


class PeriodicSource(_SourceBase):
    """Releases one instance every period, starting at ``offset``.

    Without jitter the whole release ladder ``offset + k·T`` is known at
    :meth:`start`, so it is precomputed in one vectorized numpy batch for
    the full run horizon (a couple of message hyper-periods) instead of one
    float multiply-add per chained callback.  The chained *event* itself is
    kept — scheduling each release from the previous one is what preserves
    the engine's deterministic same-instant tie-breaking, which the golden
    equivalence tests pin down.  ``k·T`` in numpy is the same IEEE-754
    multiply as in pure Python, so the precomputed instants are
    bit-identical to the chained computation.

    Parameters
    ----------
    jitter:
        Maximal release jitter in seconds; each release is delayed by a
        uniform draw in ``[0, jitter]`` from ``rng`` (0 disables jitter).
    rng:
        Random generator used for the jitter draws.
    """

    def __init__(self, simulator: Simulator, station: EndStation,
                 message: Message, offset: float = 0.0, jitter: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(simulator, station, message, offset)
        if not message.is_periodic:
            raise ConfigurationError(
                f"message {message.name!r} is not periodic")
        if jitter < 0:
            raise ConfigurationError(
                f"jitter must be non-negative, got {jitter!r}")
        if jitter > 0 and rng is None:
            raise ConfigurationError("a random generator is needed for jitter")
        self.jitter = float(jitter)
        self.rng = rng
        #: Precomputed nominal release instants (jitter-free mode only).
        self._release_ladder: list[float] | None = None

    def start(self, until: float) -> None:
        """Begin generating instances; stop releasing after ``until`` seconds."""
        if self.jitter == 0 and until > 0:
            period = self.message.period
            count = int(np.ceil((until - self.offset) / period)) + 1
            if count > 0:
                self._release_ladder = (
                    self.offset
                    + np.arange(count, dtype=np.float64) * period).tolist()
        super().start(until)

    def _next_release_time(self) -> float:
        ladder = self._release_ladder
        if ladder is not None and self._sequence < len(ladder):
            nominal = ladder[self._sequence]
        else:
            nominal = self.offset + self._sequence * self.message.period
            if self.jitter > 0 and self.rng is not None:
                nominal += float(self.rng.uniform(0.0, self.jitter))
        # Never release in the past (a large jitter on the previous instance
        # must not reorder releases).
        now = self.simulator.now
        return nominal if nominal >= now else now


class SporadicSource(_SourceBase):
    """Releases instances separated by at least the minimal inter-arrival time.

    Parameters
    ----------
    greedy:
        When ``True`` (the worst case assumed by the analysis) instances are
        released exactly every ``T_j``; when ``False`` an extra random slack,
        exponentially distributed with mean ``mean_slack``, is added between
        consecutive releases.
    mean_slack:
        Mean of the extra spacing used in non-greedy mode (seconds).
    rng:
        Random generator used in non-greedy mode.
    """

    def __init__(self, simulator: Simulator, station: EndStation,
                 message: Message, offset: float = 0.0, *,
                 greedy: bool = True, mean_slack: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(simulator, station, message, offset)
        if not message.is_sporadic:
            raise ConfigurationError(
                f"message {message.name!r} is not sporadic")
        if mean_slack < 0:
            raise ConfigurationError(
                f"mean slack must be non-negative, got {mean_slack!r}")
        if not greedy and mean_slack > 0 and rng is None:
            raise ConfigurationError(
                "a random generator is needed for non-greedy sporadic sources")
        self.greedy = bool(greedy)
        self.mean_slack = float(mean_slack)
        self.rng = rng

    def _next_release_time(self) -> float:
        spacing = self.message.period
        if not self.greedy and self.mean_slack > 0 and self.rng is not None:
            spacing += float(self.rng.exponential(self.mean_slack))
        return self.simulator.now + spacing
