"""End stations: per-flow traffic shapers plus the egress multiplexer.

An :class:`EndStation` implements the paper's source-side mechanisms:

* every flow emitted by the station owns a **token-bucket shaper**
  ``(b_i, r_i = b_i / T_i)``; a message instance handed over by the
  application waits in the shaper until enough tokens are available,
* conforming frames are then handed to the station's **egress multiplexer**
  (a FIFO or the four-queue strict-priority structure) feeding the uplink to
  the access switch.

The station is also the traffic sink side: frames whose destination is this
station are reassembled into message instances and their end-to-end latency
(application release → complete reception of the last fragment) is recorded.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.ethernet.frame import (
    EthernetFrame,
    MessageInstance,
    frames_for_instance,
    wire_burst,
)
from repro.ethernet.link import LinkTransmitter
from repro.flows.flow import Flow
from repro.simulation.engine import Simulator
from repro.simulation.statistics import Counter
from repro.simulation.trace import TraceRecorder
from repro.shaping.token_bucket import FlowShaper, TokenBucket

__all__ = ["EndStation"]

#: Callback used to report a completely received message instance:
#: ``(instance, latency_seconds)``.
DeliveryListener = Callable[[MessageInstance, float], None]


class EndStation:
    """A station attached to the switched network by one full-duplex uplink.

    Parameters
    ----------
    simulator:
        The event loop.
    name:
        Station name (must match the topology node name).
    trace:
        Optional trace recorder shared with the rest of the network model.
    shaping_enabled:
        When ``False`` frames bypass the token buckets and go straight to the
        egress multiplexer — used by the ablation experiment that shows why
        uncontrolled traffic cannot be bounded.
    """

    def __init__(self, simulator: Simulator, name: str,
                 trace: TraceRecorder | None = None,
                 shaping_enabled: bool = True) -> None:
        self.simulator = simulator
        self.name = name
        self.trace = trace or TraceRecorder(enabled=False)
        self.shaping_enabled = shaping_enabled
        self._uplink: LinkTransmitter | None = None
        self._shapers: dict[str, FlowShaper] = {}
        self._flows: dict[str, Flow] = {}
        self._release_pending: set[str] = set()
        self._pending_fragments: dict[int, int] = {}
        self._delivery_listeners: list[DeliveryListener] = []
        self.instances_sent = Counter(f"{name}.instances_sent")
        self.instances_received = Counter(f"{name}.instances_received")
        self.frames_received = Counter(f"{name}.frames_received")

    # -- wiring ------------------------------------------------------------

    def attach_uplink(self, uplink: LinkTransmitter) -> None:
        """Connect the station's egress transmitter (towards its switch)."""
        self._uplink = uplink

    def register_flow(self, flow: Flow) -> None:
        """Declare a flow emitted by this station and create its shaper.

        The token bucket is sized on the **on-wire** burst of one message
        instance (framing overhead and padding included) with the matching
        rate ``wire_burst / T`` — the shaper must be able to emit a whole
        instance, and accounting for the overhead keeps the simulated
        traffic consistent with the wire-level analytic bounds.
        """
        if flow.source != self.name:
            raise ConfigurationError(
                f"flow {flow.name!r} is emitted by {flow.source!r}, "
                f"not by station {self.name!r}")
        if flow.name in self._flows:
            raise ConfigurationError(
                f"flow {flow.name!r} already registered on {self.name!r}")
        self._flows[flow.name] = flow
        burst = wire_burst(flow.message)
        self._shapers[flow.name] = FlowShaper(
            name=flow.name,
            bucket=TokenBucket(bucket_size=burst,
                               token_rate=burst / flow.message.period))

    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Register a callback invoked for every fully received instance."""
        self._delivery_listeners.append(listener)

    @property
    def flows(self) -> list[Flow]:
        """The flows emitted by this station."""
        return list(self._flows.values())

    def shaper(self, flow_name: str) -> FlowShaper:
        """The token-bucket shaper of ``flow_name``."""
        return self._shapers[flow_name]

    # -- emission ------------------------------------------------------------

    def submit(self, instance: MessageInstance) -> None:
        """Hand a message instance over from the application layer.

        The instance is fragmented into Ethernet frames, every fragment is
        pushed into the flow's shaper, and the shaper release is scheduled.
        """
        if self._uplink is None:
            raise ConfigurationError(
                f"station {self.name!r} has no uplink attached")
        flow = self._flows.get(instance.message.name)
        if flow is None:
            raise ConfigurationError(
                f"station {self.name!r} does not emit flow "
                f"{instance.message.name!r}")
        self.instances_sent.increment()
        frames = frames_for_instance(instance, flow.priority)
        self.trace.record(self.simulator.now, "instance.submit", self.name,
                          flow=flow.name, fragments=len(frames))
        if not self.shaping_enabled:
            for frame in frames:
                self._uplink.enqueue(frame)
            return
        shaper = self._shapers[flow.name]
        for frame in frames:
            shaper.submit(size=frame.size, time=self.simulator.now,
                          payload=frame)
        self._schedule_release(flow.name)

    def _schedule_release(self, flow_name: str) -> None:
        """Arm the next shaper release for ``flow_name`` if not already armed."""
        if flow_name in self._release_pending:
            return
        shaper = self._shapers[flow_name]
        release_time = shaper.next_release(self.simulator.now)
        if release_time is None:
            return
        self._release_pending.add(flow_name)
        self.simulator.schedule_at(release_time, self._release, flow_name)

    def _release(self, flow_name: str) -> None:
        """Release the head frame of a shaper into the egress multiplexer."""
        self._release_pending.discard(flow_name)
        shaper = self._shapers[flow_name]
        if shaper.backlog == 0:
            return
        pending = shaper.release(self.simulator.now)
        frame: EthernetFrame = pending.payload
        self.trace.record(self.simulator.now, "frame.shaped", self.name,
                          flow=flow_name, frame_id=frame.frame_id)
        self._uplink.enqueue(frame)
        self._schedule_release(flow_name)

    # -- reception -----------------------------------------------------------

    def receive(self, frame: EthernetFrame) -> None:
        """Handle a frame delivered by the downlink from the access switch."""
        if frame.destination != self.name:
            raise ConfigurationError(
                f"station {self.name!r} received a frame for "
                f"{frame.destination!r}")
        self.frames_received.increment()
        instance = frame.instance
        remaining = self._pending_fragments.get(
            instance.instance_id, frame.fragment_count)
        remaining -= 1
        if remaining > 0:
            self._pending_fragments[instance.instance_id] = remaining
            return
        self._pending_fragments.pop(instance.instance_id, None)
        self.instances_received.increment()
        latency = self.simulator.now - instance.release_time
        self.trace.record(self.simulator.now, "instance.delivered", self.name,
                          flow=instance.message.name, latency=latency)
        for listener in self._delivery_listeners:
            listener(instance, latency)
