"""End stations: per-flow traffic shapers plus the egress multiplexer.

An :class:`EndStation` implements the paper's source-side mechanisms:

* every flow emitted by the station owns a **token-bucket shaper**
  ``(b_i, r_i = b_i / T_i)``; a message instance handed over by the
  application waits in the shaper until enough tokens are available,
* conforming frames are then handed to the station's **egress multiplexer**
  (a FIFO or the four-queue strict-priority structure) feeding the uplink to
  the access switch.

The station is also the traffic sink side: frames whose destination is this
station are reassembled into message instances and their end-to-end latency
(application release → complete reception of the last fragment) is recorded.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.ethernet.frame import (
    EthernetFrame,
    MessageInstance,
    frame_plan,
    wire_burst,
)
from repro.ethernet.link import LinkTransmitter
from repro.flows.flow import Flow
from repro.simulation.engine import Simulator
from repro.simulation.statistics import Counter
from repro.simulation.trace import TraceRecorder
from repro.shaping.token_bucket import FlowShaper, TokenBucket

__all__ = ["EndStation"]

#: Callback used to report a completely received message instance:
#: ``(instance, latency_seconds)``.
DeliveryListener = Callable[[MessageInstance, float], None]


class EndStation:
    """A station attached to the switched network by one full-duplex uplink.

    Parameters
    ----------
    simulator:
        The event loop.
    name:
        Station name (must match the topology node name).
    trace:
        Optional trace recorder shared with the rest of the network model.
    shaping_enabled:
        When ``False`` frames bypass the token buckets and go straight to the
        egress multiplexer — used by the ablation experiment that shows why
        uncontrolled traffic cannot be bounded.
    """

    def __init__(self, simulator: Simulator, name: str,
                 trace: TraceRecorder | None = None,
                 shaping_enabled: bool = True) -> None:
        self.simulator = simulator
        self.name = name
        # `trace or ...` would discard an *empty* recorder
        # (TraceRecorder defines __len__), silently disabling tracing.
        self.trace = TraceRecorder(enabled=False) if trace is None else trace
        self.shaping_enabled = shaping_enabled
        self._uplink: LinkTransmitter | None = None
        self._shapers: dict[str, FlowShaper] = {}
        self._flows: dict[str, Flow] = {}
        #: Hot-path registration record per flow name:
        #: ``(shaper, frame_plan, priority)`` — one dict lookup per submit.
        self._flow_state: dict[str, tuple] = {}
        self._release_pending: set[str] = set()
        self._pending_fragments: dict[int, int] = {}
        self._delivery_listeners: list[DeliveryListener] = []
        self.instances_sent = Counter(f"{name}.instances_sent")
        self.instances_received = Counter(f"{name}.instances_received")
        self.frames_received = Counter(f"{name}.frames_received")

    # -- wiring ------------------------------------------------------------

    def attach_uplink(self, uplink: LinkTransmitter) -> None:
        """Connect the station's egress transmitter (towards its switch)."""
        self._uplink = uplink

    def register_flow(self, flow: Flow) -> None:
        """Declare a flow emitted by this station and create its shaper.

        The token bucket is sized on the **on-wire** burst of one message
        instance (framing overhead and padding included) with the matching
        rate ``wire_burst / T`` — the shaper must be able to emit a whole
        instance, and accounting for the overhead keeps the simulated
        traffic consistent with the wire-level analytic bounds.
        """
        if flow.source != self.name:
            raise ConfigurationError(
                f"flow {flow.name!r} is emitted by {flow.source!r}, "
                f"not by station {self.name!r}")
        if flow.name in self._flows:
            raise ConfigurationError(
                f"flow {flow.name!r} already registered on {self.name!r}")
        self._flows[flow.name] = flow
        burst = wire_burst(flow.message)
        shaper = FlowShaper(
            name=flow.name,
            bucket=TokenBucket(bucket_size=burst,
                               token_rate=burst / flow.message.period))
        self._shapers[flow.name] = shaper
        self._flow_state[flow.name] = (
            shaper, frame_plan(flow.message), flow.priority)

    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Register a callback invoked for every fully received instance."""
        self._delivery_listeners.append(listener)

    @property
    def flows(self) -> list[Flow]:
        """The flows emitted by this station."""
        return list(self._flows.values())

    def shaper(self, flow_name: str) -> FlowShaper:
        """The token-bucket shaper of ``flow_name``."""
        return self._shapers[flow_name]

    # -- emission ------------------------------------------------------------

    def submit(self, instance: MessageInstance) -> None:
        """Hand a message instance over from the application layer.

        The instance is fragmented into Ethernet frames (following the
        flow's precomputed frame plan), every fragment is pushed into the
        flow's shaper, and the shaper release is scheduled.
        """
        if self._uplink is None:
            raise ConfigurationError(
                f"station {self.name!r} has no uplink attached")
        name = instance.message.name
        state = self._flow_state.get(name)
        if state is None:
            raise ConfigurationError(
                f"station {self.name!r} does not emit flow {name!r}")
        shaper, plan, priority = state
        self.instances_sent._value += 1  # inlined Counter.increment
        now = self.simulator._now  # direct slot read
        if self.trace.enabled:
            self.trace.record(now, "instance.submit", self.name,
                              flow=name, fragments=len(plan))
        if not self.shaping_enabled:
            enqueue = self._uplink.enqueue
            for payload, index, count, size in plan:
                enqueue(EthernetFrame(instance, payload, index, count,
                                      priority, None, size))
            return
        if len(plan) == 1:
            # Single-fragment fast path (the overwhelmingly common case).
            payload, index, count, size = plan[0]
            shaper._backlog.append(  # inlined FlowShaper.submit
                (size, now, EthernetFrame(instance, payload, index, count,
                                          priority, None, size)))
        else:
            for payload, index, count, size in plan:
                shaper.submit(size, now,
                              EthernetFrame(instance, payload, index, count,
                                            priority, None, size))
        self._schedule_release(name, shaper, now)

    def _schedule_release(self, flow_name: str, shaper: FlowShaper,
                          now: float) -> None:
        """Arm the next shaper release for ``flow_name`` if not already armed."""
        if flow_name in self._release_pending:
            return
        release_time = shaper.next_release(now)
        if release_time is None:
            return
        self._release_pending.add(flow_name)
        # release_time >= now by construction (the shaper never returns a
        # past instant), so the fast uncancellable path is safe.
        self.simulator.post_at(release_time, self._release, flow_name)

    def _release(self, flow_name: str) -> None:
        """Release the head frame of a shaper into the egress multiplexer."""
        self._release_pending.discard(flow_name)
        shaper: FlowShaper = self._flow_state[flow_name][0]
        if not shaper._backlog:
            return
        now = self.simulator._now  # direct slot read
        frame: EthernetFrame = shaper.release_payload(now)
        if self.trace.enabled:
            self.trace.record(now, "frame.shaped", self.name,
                              flow=flow_name, frame_id=frame.frame_id)
        self._uplink.enqueue(frame)
        if shaper._backlog:
            self._schedule_release(flow_name, shaper, now)

    # -- reception -----------------------------------------------------------

    def receive(self, frame: EthernetFrame) -> None:
        """Handle a frame delivered by the downlink from the access switch."""
        if frame.destination != self.name:
            raise ConfigurationError(
                f"station {self.name!r} received a frame for "
                f"{frame.destination!r}")
        self.frames_received._value += 1  # inlined Counter.increment
        instance = frame.instance
        if frame.fragment_count > 1:
            # Reassembly bookkeeping only exists for fragmented messages.
            remaining = self._pending_fragments.get(
                instance.instance_id, frame.fragment_count) - 1
            if remaining > 0:
                self._pending_fragments[instance.instance_id] = remaining
                return
            self._pending_fragments.pop(instance.instance_id, None)
        self.instances_received._value += 1  # inlined Counter.increment
        latency = self.simulator._now - instance.release_time
        if self.trace.enabled:
            self.trace.record(self.simulator.now, "instance.delivered",
                              self.name, flow=instance.message.name,
                              latency=latency)
        for listener in self._delivery_listeners:
            listener(instance, latency)
