"""Ethernet frames and message instances.

The analytic model of the paper works directly with message sizes ``b_i``;
the simulator is more detailed and accounts for the IEEE 802.3 framing
overheads, including the 802.1Q tag that carries the 802.1p priority:

======================  ==========
Field                    Bytes
======================  ==========
Preamble + SFD           8
Destination MAC          6
Source MAC               6
802.1Q tag (priority)    4
EtherType                2
Payload                  46–1500
FCS                      4
Inter-frame gap          12
======================  ==========

Messages larger than the maximal payload are fragmented into several frames;
the latency of a message instance is measured up to the complete reception of
its **last** fragment.
"""

from __future__ import annotations

import itertools
import math

from repro import units
from repro.errors import ConfigurationError
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass

__all__ = [
    "MessageInstance",
    "EthernetFrame",
    "frame_plan",
    "frames_for_instance",
    "frame_overhead_bits",
    "on_wire_bits",
    "wire_burst",
    "MAX_PAYLOAD_BYTES",
    "MIN_PAYLOAD_BYTES",
]

#: Preamble (7 bytes) + start-of-frame delimiter (1 byte).
PREAMBLE_BYTES = 8
#: Destination MAC + source MAC + 802.1Q tag + EtherType.
HEADER_BYTES = 6 + 6 + 4 + 2
#: Frame check sequence.
FCS_BYTES = 4
#: Inter-frame gap (12 byte-times of silence, charged to the frame).
IFG_BYTES = 12
#: Minimal and maximal Ethernet payload sizes.
MIN_PAYLOAD_BYTES = 46
MAX_PAYLOAD_BYTES = 1500

_instance_counter = itertools.count()
_frame_counter = itertools.count()


def frame_overhead_bits() -> int:
    """Per-frame overhead in bits (everything except the payload)."""
    return units.BITS_PER_BYTE * (
        PREAMBLE_BYTES + HEADER_BYTES + FCS_BYTES + IFG_BYTES)


def on_wire_bits(payload_bits: float) -> float:
    """On-wire size (bits) of a frame carrying ``payload_bits`` of payload.

    The payload is padded to the 46-byte Ethernet minimum when needed.
    """
    if payload_bits <= 0:
        raise ConfigurationError(
            f"payload must be positive, got {payload_bits!r}")
    padded = max(payload_bits, MIN_PAYLOAD_BYTES * units.BITS_PER_BYTE)
    return padded + frame_overhead_bits()


class MessageInstance:
    """One occurrence of a message stream (one "transfer").

    A hand-written ``__slots__`` class rather than a dataclass: the
    simulator allocates one per released instance, so construction cost is
    on the hot path.  Treat instances as immutable.

    Attributes
    ----------
    message:
        The message stream this instance belongs to.
    sequence:
        Per-stream sequence number (0, 1, 2...).
    release_time:
        Simulation time at which the application produced the instance.
    instance_id:
        Globally unique identifier (used to correlate fragments).
    """

    __slots__ = ("message", "sequence", "release_time", "instance_id")

    def __init__(self, message: Message, sequence: int, release_time: float,
                 instance_id: int | None = None) -> None:
        self.message = message
        self.sequence = sequence
        self.release_time = release_time
        self.instance_id = (next(_instance_counter) if instance_id is None
                            else instance_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MessageInstance(message={self.message.name!r}, "
                f"sequence={self.sequence}, "
                f"release_time={self.release_time!r}, "
                f"instance_id={self.instance_id})")

    @property
    def deadline_time(self) -> float | None:
        """Absolute deadline of this instance, if the message has one."""
        if self.message.deadline is None:
            return None
        return self.release_time + self.message.deadline


class EthernetFrame:
    """A single Ethernet frame (possibly one fragment of a message instance).

    A hand-written ``__slots__`` class (one allocation per transmitted
    frame).  Treat frames as immutable.  Frames expose the ``size`` and
    ``priority`` attributes the queueing disciplines dispatch on, so they
    are queued directly, without a wrapper item, on every hop.

    Attributes
    ----------
    instance:
        The message instance the frame carries (or a fragment of).
    payload_bits:
        Application payload bits carried by this frame (before padding).
    fragment_index / fragment_count:
        Position of this frame among the fragments of the instance.
    priority:
        802.1p class carried in the 802.1Q tag.
    frame_id:
        Globally unique identifier.
    size:
        On-wire size in bits (padding, headers, preamble and IFG included).
        Computed once at construction — the simulator reads it on every
        hop, so it must not be recomputed per access.  Callers that know
        the on-wire size already (the per-flow frame plans) pass it in.
    destination:
        Destination station name, denormalised from the message (the
        switches and stations read it once per hop).
    """

    __slots__ = ("instance", "payload_bits", "fragment_index",
                 "fragment_count", "priority", "frame_id", "size",
                 "destination")

    def __init__(self, instance: MessageInstance, payload_bits: float,
                 fragment_index: int, fragment_count: int,
                 priority: PriorityClass, frame_id: int | None = None,
                 size: float | None = None) -> None:
        self.instance = instance
        self.payload_bits = payload_bits
        self.fragment_index = fragment_index
        self.fragment_count = fragment_count
        self.priority = priority
        self.frame_id = (next(_frame_counter) if frame_id is None
                         else frame_id)
        self.size = on_wire_bits(payload_bits) if size is None else size
        self.destination = instance.message.destination

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EthernetFrame(flow={self.flow_name!r}, "
                f"fragment={self.fragment_index}/{self.fragment_count}, "
                f"size={self.size!r}, frame_id={self.frame_id})")

    @property
    def source(self) -> str:
        """Source station name."""
        return self.instance.message.source

    @property
    def flow_name(self) -> str:
        """Name of the message stream."""
        return self.instance.message.name

    @property
    def is_last_fragment(self) -> bool:
        """True for the final fragment of the instance."""
        return self.fragment_index == self.fragment_count - 1

    def transmission_time(self, capacity: float) -> float:
        """Serialisation time of the frame on a link of ``capacity`` bps."""
        return self.size / capacity


def wire_burst(message: Message) -> float:
    """On-wire bits needed to carry one instance of ``message``.

    Sum of the on-wire sizes (padding, headers, preamble, IFG) of the frames
    one instance fragments into.  The simulator sizes its token buckets on
    this value — the shaper must be able to emit one full instance — and the
    bound-vs-simulation validation uses the same value on the analytic side
    so both sides account for the framing overhead consistently.
    """
    total_bits = message.size
    max_payload_bits = MAX_PAYLOAD_BYTES * units.BITS_PER_BYTE
    fragment_count = max(1, math.ceil(total_bits / max_payload_bits))
    total = 0.0
    remaining = total_bits
    for __ in range(fragment_count):
        payload = min(remaining, max_payload_bits)
        total += on_wire_bits(payload)
        remaining -= payload
    return total


def frame_plan(message: Message) -> tuple[tuple[float, int, int, float], ...]:
    """The static fragmentation plan of one instance of ``message``.

    Per fragment: ``(payload_bits, fragment_index, fragment_count,
    on_wire_size)``.  The plan only depends on the message size, so
    stations compute it once per flow at registration and stamp frames out
    of it without re-deriving the split (or the padded on-wire size) for
    every released instance.
    """
    total_bits = message.size
    max_payload_bits = MAX_PAYLOAD_BYTES * units.BITS_PER_BYTE
    fragment_count = max(1, math.ceil(total_bits / max_payload_bits))
    plan = []
    remaining = total_bits
    for index in range(fragment_count):
        payload = min(remaining, max_payload_bits)
        plan.append((payload, index, fragment_count, on_wire_bits(payload)))
        remaining -= payload
    return tuple(plan)


def frames_for_instance(instance: MessageInstance,
                        priority: PriorityClass) -> list[EthernetFrame]:
    """Split a message instance into the Ethernet frames that carry it.

    Messages that fit in one maximal payload yield a single frame; larger
    ones are fragmented into maximal-size frames plus a final partial
    frame (per :func:`frame_plan`).
    """
    return [EthernetFrame(instance, payload, index, count, priority,
                          size=size)
            for payload, index, count, size in frame_plan(instance.message)]
