"""Full-Duplex Switched Ethernet simulator.

A discrete-event model of the paper's target architecture:

* **end stations** (:mod:`~repro.ethernet.station`) hold one token-bucket
  shaper per emitted flow and multiplex the shaped frames into their egress
  link through a FIFO or a four-queue strict-priority (802.1p) multiplexer,
* **switches** (:mod:`~repro.ethernet.switch`) are store-and-forward: a frame
  fully received on an input port is relayed, after a bounded technology
  delay, to the output port leading to its destination, where it is queued
  under the same discipline,
* **links** (:mod:`~repro.ethernet.link`) are full-duplex and serialise
  frames at the link capacity — there is no CSMA/CD and no collision, the
  only contention is queueing at the multiplexers,
* **traffic sources** (:mod:`~repro.ethernet.traffic`) generate periodic and
  sporadic message instances, including the adversarial "synchronised
  release" scenario used to stress the analytic bounds,
* the **network simulator** (:mod:`~repro.ethernet.network_sim`) assembles
  all of the above from a :class:`repro.topology.Network` and a set of flows,
  runs the simulation and collects per-flow and per-class latency statistics.
"""

from repro.ethernet.frame import (
    EthernetFrame,
    MessageInstance,
    frames_for_instance,
)
from repro.ethernet.link import LinkTransmitter
from repro.ethernet.station import EndStation
from repro.ethernet.switch import EthernetSwitch
from repro.ethernet.traffic import PeriodicSource, SporadicSource
from repro.ethernet.network_sim import EthernetNetworkSimulator, SimulationResults

__all__ = [
    "EthernetFrame",
    "MessageInstance",
    "frames_for_instance",
    "LinkTransmitter",
    "EndStation",
    "EthernetSwitch",
    "PeriodicSource",
    "SporadicSource",
    "EthernetNetworkSimulator",
    "SimulationResults",
]
