"""Store-and-forward Ethernet switches.

An :class:`EthernetSwitch` relays frames between its ports:

1. a frame is considered received when its last bit has arrived on the input
   link (the :class:`~repro.ethernet.link.LinkTransmitter` of the upstream
   node delivers it at exactly that instant plus propagation),
2. the switch spends a bounded **relaying delay** (forwarding-table lookup,
   fabric crossing) — the paper's ``t_techno``,
3. the frame is queued on the output port leading to its destination, under
   the same discipline as the station multiplexers (FIFO or four-queue
   strict priority), and serialised on the output link when its turn comes.

The forwarding table maps destination station names to output ports; it is
filled by the network assembler from the topology routes, mimicking the
static configuration used in avionics switches (no address learning, no
flooding — unknown destinations are an error).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ethernet.frame import EthernetFrame
from repro.ethernet.link import LinkTransmitter
from repro.simulation.engine import Simulator
from repro.simulation.statistics import Counter
from repro.simulation.trace import TraceRecorder

__all__ = ["EthernetSwitch"]


class EthernetSwitch:
    """A store-and-forward switch with statically configured forwarding.

    Parameters
    ----------
    simulator:
        The event loop.
    name:
        Switch name (must match the topology node name).
    technology_delay:
        Bound on the relaying delay ``t_techno`` (seconds) applied to every
        frame between full reception and enqueueing on the output port.
    trace:
        Optional trace recorder.
    """

    def __init__(self, simulator: Simulator, name: str,
                 technology_delay: float = 0.0,
                 trace: TraceRecorder | None = None) -> None:
        if technology_delay < 0:
            raise ConfigurationError(
                f"technology delay must be non-negative, "
                f"got {technology_delay!r}")
        self.simulator = simulator
        self.name = name
        self.technology_delay = float(technology_delay)
        # `trace or ...` would discard an *empty* recorder
        # (TraceRecorder defines __len__), silently disabling tracing.
        self.trace = TraceRecorder(enabled=False) if trace is None else trace
        #: Output transmitters indexed by the neighbour they lead to.
        self._output_ports: dict[str, LinkTransmitter] = {}
        #: Forwarding table: destination station -> neighbour (output port).
        self._forwarding: dict[str, str] = {}
        #: Hot-path table: destination station -> output transmitter (the
        #: name-level table resolved once, saving a lookup per relayed
        #: frame).
        self._route: dict[str, LinkTransmitter] = {}
        self.frames_relayed = Counter(f"{name}.frames_relayed")

    # -- wiring ---------------------------------------------------------------

    def attach_output_port(self, neighbour: str,
                           transmitter: LinkTransmitter) -> None:
        """Register the transmitter of the port leading to ``neighbour``."""
        if neighbour in self._output_ports:
            raise ConfigurationError(
                f"switch {self.name!r} already has a port toward "
                f"{neighbour!r}")
        self._output_ports[neighbour] = transmitter

    def add_forwarding_entry(self, destination: str, next_hop: str) -> None:
        """Route frames for ``destination`` through the port to ``next_hop``."""
        if next_hop not in self._output_ports:
            raise ConfigurationError(
                f"switch {self.name!r} has no port toward {next_hop!r}")
        existing = self._forwarding.get(destination)
        if existing is not None and existing != next_hop:
            raise ConfigurationError(
                f"switch {self.name!r}: conflicting forwarding entries for "
                f"{destination!r} ({existing!r} vs {next_hop!r})")
        self._forwarding[destination] = next_hop
        self._route[destination] = self._output_ports[next_hop]

    def output_port(self, neighbour: str) -> LinkTransmitter:
        """The transmitter of the port leading to ``neighbour``."""
        return self._output_ports[neighbour]

    @property
    def output_ports(self) -> dict[str, LinkTransmitter]:
        """All output transmitters indexed by neighbour name."""
        return dict(self._output_ports)

    # -- relaying ----------------------------------------------------------------

    def receive(self, frame: EthernetFrame) -> None:
        """Handle a frame fully received on one of the input ports."""
        if self.trace.enabled:
            self.trace.record(self.simulator.now, "switch.receive", self.name,
                              frame_id=frame.frame_id, flow=frame.flow_name)
        self.simulator.post(self.technology_delay, self._forward, frame)

    def _forward(self, frame: EthernetFrame) -> None:
        transmitter = self._route.get(frame.destination)
        if transmitter is None:
            raise ConfigurationError(
                f"switch {self.name!r} has no forwarding entry for "
                f"destination {frame.destination!r}")
        self.frames_relayed._value += 1  # inlined Counter.increment
        if self.trace.enabled:
            self.trace.record(self.simulator.now, "switch.forward", self.name,
                              frame_id=frame.frame_id, flow=frame.flow_name,
                              next_hop=self._forwarding[frame.destination])
        transmitter.enqueue(frame)
