"""Assembly of the complete switched-Ethernet simulation.

:class:`EthernetNetworkSimulator` takes a :class:`repro.topology.Network`, a
set of flows and a multiplexing policy, builds every station, switch and link
transmitter, wires the forwarding tables from the routed flow paths, attaches
the traffic sources and runs the discrete-event simulation.  The outcome is a
:class:`SimulationResults` object with per-flow and per-priority-class
latency statistics, drop counters and link utilisations, which the
evaluation harness compares against the analytic bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

from repro import units
from repro.errors import ConfigurationError, SimulationNotRunError
from repro.ethernet.frame import MessageInstance
from repro.ethernet.link import LinkTransmitter
from repro.ethernet.station import EndStation
from repro.ethernet.switch import EthernetSwitch
from repro.ethernet.traffic import PeriodicSource, SporadicSource
from repro.flows.flow import Flow
from repro.flows.messages import Message
from repro.flows.priorities import PriorityClass
from repro.shaping.queues import FifoQueue, StrictPriorityQueues
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.simulation.statistics import LatencyRecorder, SummaryStatistics
from repro.simulation.trace import TraceRecorder
from repro.topology.network import Network

__all__ = ["EthernetNetworkSimulator", "SimulationResults"]

Policy = Literal["fcfs", "strict-priority"]
Scenario = Literal["synchronized", "staggered", "random"]


@dataclass
class SimulationResults:
    """Statistics collected by one simulation run."""

    duration: float
    policy: str
    scenario: str
    flow_latencies: dict[str, LatencyRecorder] = field(default_factory=dict)
    class_latencies: dict[PriorityClass, LatencyRecorder] = field(
        default_factory=dict)
    instances_sent: int = 0
    instances_delivered: int = 0
    frames_dropped: int = 0
    link_utilization: dict[str, float] = field(default_factory=dict)
    max_queue_bits: dict[str, float] = field(default_factory=dict)

    def flow_summary(self, flow_name: str) -> SummaryStatistics:
        """Latency summary of one flow."""
        return self.flow_latencies[flow_name].summary()

    def class_summary(self, priority: PriorityClass) -> SummaryStatistics:
        """Latency summary of one 802.1p class."""
        return self.class_latencies[PriorityClass(priority)].summary()

    def worst_latency(self, flow_name: str) -> float:
        """Largest observed latency of one flow (seconds)."""
        return self.flow_latencies[flow_name].maximum

    def worst_class_latency(self, priority: PriorityClass) -> float:
        """Largest observed latency of one class (seconds)."""
        return self.class_latencies[PriorityClass(priority)].maximum

    @property
    def delivery_ratio(self) -> float:
        """Delivered instances divided by sent instances."""
        if self.instances_sent == 0:
            return float("nan")
        return self.instances_delivered / self.instances_sent


class EthernetNetworkSimulator:
    """Build and run a full switched-Ethernet simulation.

    Parameters
    ----------
    network:
        The topology; it is validated on construction.
    flows:
        Flows (or bare messages, routed automatically) to simulate.
    policy:
        ``"fcfs"`` or ``"strict-priority"`` — the multiplexer used at station
        uplinks and at switch output ports.
    scenario:
        ``"synchronized"`` releases every source at ``t = 0`` (the
        adversarial case matching the analytic worst case), ``"staggered"``
        spreads first releases uniformly over one period, ``"random"`` also
        adds random slack to sporadic inter-arrivals.
    seed:
        Master seed of the experiment's random streams.
    queue_capacity:
        Optional per-queue capacity in bits (``None`` = unbounded).  With
        shaped traffic and a correctly dimensioned capacity no drop occurs,
        which the validation experiments assert.
    shaping_enabled:
        Disable to bypass the token buckets (ablation).
    trace_enabled:
        Record a full frame-level trace (slower; used by tests).
    """

    def __init__(self, network: Network, flows: Iterable[Flow | Message],
                 policy: Policy = "strict-priority",
                 scenario: Scenario = "synchronized", seed: int = 1,
                 queue_capacity: float | None = None,
                 shaping_enabled: bool = True,
                 trace_enabled: bool = False) -> None:
        if policy not in ("fcfs", "strict-priority"):
            raise ConfigurationError(
                f"policy must be 'fcfs' or 'strict-priority', got {policy!r}")
        if scenario not in ("synchronized", "staggered", "random"):
            raise ConfigurationError(
                f"unknown scenario {scenario!r}")
        network.validate()
        self.network = network
        self.policy = policy
        self.scenario = scenario
        self.seed = int(seed)
        self.queue_capacity = queue_capacity
        self.shaping_enabled = shaping_enabled
        self.trace = TraceRecorder(enabled=trace_enabled)
        self.streams = RandomStreams(seed)

        self.simulator = Simulator()
        self.flows: list[Flow] = [
            network.route_flow(flow) if isinstance(flow, Message)
            or not flow.path else flow
            for flow in flows]
        if not self.flows:
            raise ConfigurationError("at least one flow is required")

        self.stations: dict[str, EndStation] = {}
        self.switches: dict[str, EthernetSwitch] = {}
        self._transmitters: dict[tuple[str, str], LinkTransmitter] = {}
        self._sources: list[PeriodicSource | SporadicSource] = []
        self._results: SimulationResults | None = None

        self._build()

    # -- construction ----------------------------------------------------------

    def _make_queue(self):
        if self.policy == "fcfs":
            return FifoQueue(capacity=self.queue_capacity)
        return StrictPriorityQueues(capacity_per_class=self.queue_capacity)

    def _build(self) -> None:
        # Nodes.
        for name in self.network.stations:
            self.stations[name] = EndStation(
                self.simulator, name, trace=self.trace,
                shaping_enabled=self.shaping_enabled)
        for name in self.network.switches:
            self.switches[name] = EthernetSwitch(
                self.simulator, name,
                technology_delay=self.network.technology_delay(name),
                trace=self.trace)

        # One transmitter per direction of every link.
        for link in self.network.links():
            for upstream, downstream in ((link.node_a, link.node_b),
                                         (link.node_b, link.node_a)):
                receiver = self._receiver_for(downstream)
                transmitter = LinkTransmitter(
                    simulator=self.simulator,
                    name=f"{upstream}->{downstream}",
                    capacity=link.capacity,
                    propagation_delay=link.propagation_delay,
                    queue=self._make_queue(),
                    deliver=receiver,
                    trace=self.trace)
                self._transmitters[(upstream, downstream)] = transmitter
                if self.network.is_switch(upstream):
                    self.switches[upstream].attach_output_port(
                        downstream, transmitter)
                else:
                    self.stations[upstream].attach_uplink(transmitter)

        # Flows: register on their source station, fill forwarding tables.
        for flow in self.flows:
            self.stations[flow.source].register_flow(flow)
            for node, toward in flow.hops():
                if self.network.is_switch(node):
                    self.switches[node].add_forwarding_entry(
                        flow.destination, toward)

        # Traffic sources.
        offsets_rng = self.streams.stream("release-offsets")
        slack_rng = self.streams.stream("sporadic-slack")
        for flow in self.flows:
            station = self.stations[flow.source]
            message = flow.message
            if self.scenario == "synchronized":
                offset = 0.0
            else:
                offset = float(offsets_rng.uniform(0.0, message.period))
            if message.is_periodic:
                self._sources.append(PeriodicSource(
                    self.simulator, station, message, offset=offset))
            else:
                greedy = self.scenario != "random"
                self._sources.append(SporadicSource(
                    self.simulator, station, message, offset=offset,
                    greedy=greedy,
                    mean_slack=0.0 if greedy else message.period,
                    rng=slack_rng))

    def _receiver_for(self, node: str):
        """The bound ``receive`` method of the node's model object.

        Passing the bound method directly (instead of wrapping it in a
        lambda) removes one Python call frame from every frame delivery.
        """
        if self.network.is_switch(node):
            return self.switches[node].receive
        return self.stations[node].receive

    # -- execution -----------------------------------------------------------

    def run(self, duration: float = units.ms(320)) -> SimulationResults:
        """Generate traffic for ``duration`` seconds, drain it, collect stats.

        The default duration of 320 ms covers two 1553B major frames, i.e.
        at least two full hyper-periods of the paper's message periods.
        """
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration!r}")
        results = SimulationResults(duration=duration, policy=self.policy,
                                    scenario=self.scenario)
        for flow in self.flows:
            results.flow_latencies[flow.name] = LatencyRecorder(flow.name)
        for cls in PriorityClass:
            results.class_latencies[cls] = LatencyRecorder(cls.name)
        # One lookup per delivery: flow name -> (flow recorder, class
        # recorder) pair.
        recorders = {
            flow.name: (results.flow_latencies[flow.name],
                        results.class_latencies[flow.priority])
            for flow in self.flows}

        def on_delivery(instance: MessageInstance, latency: float) -> None:
            flow_recorder, class_recorder = recorders[instance.message.name]
            flow_recorder.record(latency)
            class_recorder.record(latency)

        for station in self.stations.values():
            station.add_delivery_listener(on_delivery)

        for source in self._sources:
            source.start(until=duration)
        # Run until every queued frame has drained (sources stop at
        # ``duration``, so the event queue empties by itself).
        self.simulator.run()

        results.instances_sent = sum(
            s.instances_sent.value for s in self.stations.values())
        results.instances_delivered = sum(
            s.instances_received.value for s in self.stations.values())
        results.frames_dropped = sum(
            t.drops for t in self._transmitters.values())
        horizon = max(self.simulator.now, duration)
        for (upstream, downstream), transmitter in self._transmitters.items():
            key = f"{upstream}->{downstream}"
            results.link_utilization[key] = transmitter.busy_time / horizon
            # FifoQueue and StrictPriorityQueues share the occupancy
            # interface (tests/shaping/test_queues.py pins it down).
            results.max_queue_bits[key] = transmitter.queue.max_occupancy
        self._results = results
        return results

    @property
    def results(self) -> SimulationResults:
        """Results of the last :meth:`run`.

        Raises
        ------
        SimulationNotRunError
            If :meth:`run` has not been called yet.
        """
        if self._results is None:
            raise SimulationNotRunError("call run() first")
        return self._results

    def transmitter(self, upstream: str, downstream: str) -> LinkTransmitter:
        """The transmitter serving the directed hop ``upstream -> downstream``."""
        return self._transmitters[(upstream, downstream)]
